//! GNMF "topic modelling" on a synthetic document-term matrix, run both on
//! Cumulon-RS and on the MapReduce/SystemML-style baseline, with real math
//! so the factorisation quality is checkable.
//!
//! ```sh
//! cargo run --release --example gnmf_topic_model
//! ```

use cumulon::prelude::*;
use cumulon::workloads::gnmf::Gnmf;

fn main() {
    // A small corpus so real execution stays instant: 240 "documents" ×
    // 180 "terms", 2% filled, factorised at rank 8.
    let gnmf = Gnmf {
        m: 240,
        n: 180,
        rank: 8,
        tile_size: 60,
        density: 0.02,
        seed: 3,
    };
    let optimizer = Optimizer::new(idealized_cost_model());
    let spec = ClusterSpec::named("m1.large", 4, 2).expect("spec");

    // ---------------- Cumulon ----------------
    let cluster = Cluster::provision(spec).expect("provision");
    gnmf.setup(cluster.store()).expect("setup");
    let iters = 5;
    let reports = gnmf
        .run(&optimizer, &cluster, iters, ExecMode::Real)
        .expect("gnmf");
    println!("GNMF on Cumulon-RS ({} iterations):", iters);
    let mut cumulon_total = 0.0;
    for (i, r) in reports.iter().enumerate() {
        let objective = gnmf.objective(cluster.store(), i + 1).expect("objective");
        println!(
            "  iter {:>2}: {:>7.1}s simulated, ‖V − WH‖ = {objective:.4}",
            i + 1,
            r.makespan_s
        );
        cumulon_total += r.makespan_s;
    }

    // ---------------- MapReduce baseline ----------------
    // One GNMF H-update on the baseline: every operator is its own MR job.
    let mr_store = TileStore::new(Dfs::new(spec.nodes, DfsConfig::default()));
    let engine = MrEngine::new(
        spec,
        mr_store.clone(),
        HardwareModel::default(),
        MrConfig::default(),
    );
    // Materialise the same V, W, H in the baseline's store.
    let src = cluster.store();
    for name in ["V", "W_0", "H_0"] {
        let local = src.get_local(name).expect("fetch");
        mr_store.put_local(name, &local).expect("upload");
    }
    // H' = H ⊙ (WᵀV) ⊘ ((WᵀW) H), spelled out operator-at-a-time.
    let prog = MrProgram::new()
        .push(MrOp::Transpose {
            a: "W_0".into(),
            out: "Wt".into(),
        })
        .push(MrOp::Mul {
            a: "Wt".into(),
            b: "V".into(),
            out: "WtV".into(),
            strategy: MulStrategy::Auto,
        })
        .push(MrOp::Mul {
            a: "Wt".into(),
            b: "W_0".into(),
            out: "WtW".into(),
            strategy: MulStrategy::Auto,
        })
        .push(MrOp::Mul {
            a: "WtW".into(),
            b: "H_0".into(),
            out: "WtWH".into(),
            strategy: MulStrategy::Auto,
        })
        .push(MrOp::Elementwise {
            a: "H_0".into(),
            b: "WtV".into(),
            out: "Hnum".into(),
            op: cumulon::matrix::tile::ElemOp::Mul,
        })
        .push(MrOp::Elementwise {
            a: "Hnum".into(),
            b: "WtWH".into(),
            out: "H_1".into(),
            op: cumulon::matrix::tile::ElemOp::Div,
        });
    let mr_report = prog.execute(&engine, ExecMode::Real).expect("baseline");
    // The baseline's H-update is roughly half an iteration; scale for a
    // fair per-iteration figure.
    let mr_per_iter = 2.0 * mr_report.makespan_s;
    let cumulon_per_iter = cumulon_total / iters as f64;
    println!("\nper-iteration comparison (simulated time):");
    println!("  Cumulon-RS          : {cumulon_per_iter:>8.1}s");
    println!("  MapReduce baseline  : {mr_per_iter:>8.1}s (H-update × 2)");
    println!(
        "  speedup             : {:>8.1}×",
        mr_per_iter / cumulon_per_iter
    );

    // Baseline computes the same numbers.
    let h1_mr = mr_store.get_local("H_1").expect("baseline H_1");
    let h1_cu = cluster.store().get_local("H_1").expect("cumulon H_1");
    let diff = h1_mr.max_abs_diff(&h1_cu).expect("compare");
    println!("\nbaseline vs Cumulon H_1 max diff: {diff:.3e} (same math ✓)");
    assert!(diff < 1e-9);
}
