//! Fault tolerance end to end: a node dies mid-run, lineage recovery
//! replays just the lost work, a checkpointed iterative job rewinds
//! instead of restarting, and the deployment optimizer prices the
//! failure rate into its choice.
//!
//! ```sh
//! cargo run --release --example fault_recovery
//! ```

use std::collections::BTreeMap;

use cumulon::cluster::{FailurePlan, SchedulerConfig};
use cumulon::core::estimate::FailureModel;
use cumulon::core::RecoveryConfig;
use cumulon::idealized_cost_model;
use cumulon::prelude::*;
use cumulon::workloads::{run_checkpointed, CheckpointPolicy};

fn provision_repl1(nodes: u32, meta: MatrixMeta, names: &[&str]) -> Cluster {
    let spec = ClusterSpec::named("m1.large", nodes, 2).unwrap();
    let cluster = Cluster::provision_with(
        spec,
        HardwareModel::default(),
        DfsConfig {
            replication: 1,
            ..Default::default()
        },
    )
    .unwrap();
    for (i, name) in names.iter().enumerate() {
        cluster
            .store()
            .register_generated(name, meta, Generator::DenseGaussian { seed: i as u64 + 1 })
            .unwrap();
    }
    cluster
}

fn main() {
    let optimizer = Optimizer::new(idealized_cost_model());

    // ------------------------------------------------------------------
    // 1. Lineage recovery: (A·B)·C at replication 1; kill a node late
    //    enough that finished intermediates die with it, and compare
    //    against the failure-free run.
    // ------------------------------------------------------------------
    let meta = MatrixMeta::new(24, 24, 6);
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let bm = b.input("B");
    let cm = b.input("C");
    let ab = b.mul(a, bm);
    let abc = b.mul(ab, cm);
    b.output("D", abc);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    for name in ["A", "B", "C"] {
        inputs.insert(name.to_string(), InputDesc::dense(meta).generated());
    }

    let baseline = provision_repl1(4, meta, &["A", "B", "C"]);
    let clean = optimizer
        .execute_on(&baseline, &program, &inputs, "t", ExecMode::Real)
        .expect("failure-free run");
    let expect = baseline.store().get_local("D").unwrap();
    println!("failure-free: {}", clean.summary());

    let cluster = provision_repl1(4, meta, &["A", "B", "C"]);
    let failures = FailurePlan {
        node_failures: vec![(clean.makespan_s * 0.75, 0)],
        ..Default::default()
    };
    let report = optimizer
        .execute_on_with(
            &cluster,
            &program,
            &inputs,
            "t",
            ExecMode::Real,
            SchedulerConfig::default(),
            &failures,
            RecoveryConfig::default(),
        )
        .expect("recovered run");
    let got = cluster.store().get_local("D").unwrap();
    println!("with node death at 75%: {}", report.summary());
    println!(
        "recovered result bitwise-equal: {}",
        got.max_abs_diff(&expect).unwrap() == 0.0
    );

    // ------------------------------------------------------------------
    // 2. Checkpointed GNMF: iteration 3 loses the un-replicated iterate;
    //    the driver rewinds to the iteration-2 checkpoint, not to zero.
    // ------------------------------------------------------------------
    let gnmf = cumulon::workloads::gnmf::Gnmf {
        m: 24,
        n: 18,
        rank: 4,
        tile_size: 6,
        density: 0.4,
        seed: 11,
    };
    let spec = ClusterSpec::named("m1.large", 4, 2).unwrap();
    let cluster = Cluster::provision_with(
        spec,
        HardwareModel::default(),
        DfsConfig {
            replication: 1,
            ..Default::default()
        },
    )
    .unwrap();
    cumulon::workloads::Workload::setup(&gnmf, cluster.store()).unwrap();
    let run = run_checkpointed(
        &gnmf,
        &optimizer,
        &cluster,
        4,
        ExecMode::Real,
        SchedulerConfig::default(),
        |iter| {
            if iter == 3 {
                FailurePlan {
                    node_failures: vec![(1e-3, 0)],
                    ..Default::default()
                }
            } else {
                FailurePlan::default()
            }
        },
        RecoveryConfig::default(),
        CheckpointPolicy {
            interval: 2,
            replication: 3,
            max_rewinds: 4,
        },
    )
    .expect("checkpointed run");
    println!(
        "gnmf: {} iterations kept, {} rewind(s), {:.1}s of work discarded, {} checkpoint bytes",
        run.reports.len(),
        run.rewinds,
        run.wasted_makespan_s,
        run.checkpoint_bytes
    );

    // ------------------------------------------------------------------
    // 3. Failure-aware provisioning: the same deadline, priced at a
    //    realistic node MTBF, shifts the estimates the search compares.
    // ------------------------------------------------------------------
    let reliable = optimizer
        .optimize(
            &program,
            &inputs,
            SearchSpace::default(),
            Constraint::Deadline(3_600.0),
        )
        .expect("reliable plan");
    let flaky_space = SearchSpace {
        failure: Some(FailureModel {
            node_mtbf_s: 200_000.0,
            task_failure_prob: 0.05,
        }),
        ..Default::default()
    };
    let flaky = optimizer
        .optimize(
            &program,
            &inputs,
            flaky_space,
            Constraint::Deadline(3_600.0),
        )
        .expect("failure-aware plan");
    println!("deadline 1h, no failures:   {}", reliable.summary());
    println!("deadline 1h, mtbf 200ks:    {}", flaky.summary());
}
