//! Deadline-constrained provisioning walkthrough: "finish the RSVD sketch
//! of a 20k×10k matrix within each deadline, as cheaply as possible."
//!
//! Shows the core of the paper's pitch — the optimizer picks not just the
//! plan but the *cluster*: instance type, node count and slot count change
//! as the deadline tightens, and hourly billing makes the cost curve a
//! step function.
//!
//! ```sh
//! cargo run --release --example deadline_provisioning
//! ```

use cumulon::prelude::*;
use cumulon::workloads::rsvd::Rsvd;

fn main() {
    let rsvd = Rsvd {
        m: 200_000,
        n: 100_000,
        k: 200,
        tile_size: 1_000,
        power_iters: 0,
        seed: 7,
    };
    // Deployment decisions are made per program; use the sketch step
    // (Y = AΩ), the dominant cost of the pipeline.
    let program = rsvd.program(0);
    let inputs = rsvd.inputs(0);

    let optimizer = Optimizer::new(idealized_cost_model());
    let space = SearchSpace {
        max_nodes: 40,
        ..Default::default()
    };

    println!("deadline  ->  chosen deployment (estimated)");
    println!("--------------------------------------------");
    for deadline_min in [240.0, 120.0, 60.0, 30.0, 15.0, 8.0] {
        match optimizer.optimize(
            &program,
            &inputs,
            space.clone(),
            Constraint::Deadline(deadline_min * 60.0),
        ) {
            Ok(plan) => println!("{deadline_min:>6.0}min   {}", plan.summary()),
            Err(e) => println!("{deadline_min:>6.0}min   infeasible ({e})"),
        }
    }

    // Validate one choice end-to-end in the simulator.
    let plan = optimizer
        .optimize(&program, &inputs, space, Constraint::Deadline(3_600.0))
        .expect("1h deadline feasible");
    println!("\nvalidating the 60min choice on the simulated cluster...");
    let cluster = optimizer.provision(&plan).expect("provision");
    rsvd.setup(cluster.store()).expect("setup inputs");
    let report = optimizer
        .execute_on(&cluster, &program, &inputs, "v0", ExecMode::Simulated)
        .expect("run");
    println!(
        "estimated {:.0}s -> simulated {:.0}s",
        plan.estimate.makespan_s, report.makespan_s
    );
    println!(
        "billed: {:.0}h, ${:.2}",
        report.billed_hours, report.cost_dollars
    );
    let met = report.makespan_s <= 3_600.0;
    println!("deadline {}", if met { "met ✓" } else { "MISSED ✗" });
}
