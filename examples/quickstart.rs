//! Quickstart: write a matrix program, optimize its deployment, run it on
//! the simulated cloud, and verify the numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::BTreeMap;

use cumulon::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A matrix program: the Gram matrix G = AᵀA plus an element-wise
    //    output S = A + A (to show fusion into a single job).
    // ------------------------------------------------------------------
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let at = b.transpose(a);
    let g = b.mul(at, a);
    let doubled = b.add(a, a);
    b.output("G", g);
    b.output("S", doubled);
    let program = b.build();

    // ------------------------------------------------------------------
    // 2. Describe the input: a dense 2,000 × 500 matrix in 250-wide tiles.
    // ------------------------------------------------------------------
    let meta = MatrixMeta::new(2_000, 500, 250);
    let mut inputs = BTreeMap::new();
    inputs.insert("A".to_string(), InputDesc::dense(meta));

    // ------------------------------------------------------------------
    // 3. Deployment optimization: cheapest cluster that finishes in 2 h.
    // ------------------------------------------------------------------
    let optimizer = Optimizer::new(idealized_cost_model());
    let plan = optimizer
        .optimize(
            &program,
            &inputs,
            SearchSpace::default(),
            Constraint::Deadline(7_200.0),
        )
        .expect("a 2h deadline is feasible for this tiny job");
    println!("chosen deployment: {}", plan.summary());
    println!(
        "physical plan: {} jobs, {} tasks",
        plan.plan.jobs.len(),
        plan.plan.total_tasks()
    );

    // ------------------------------------------------------------------
    // 4. Provision the (simulated) cluster, upload real data, execute.
    // ------------------------------------------------------------------
    let cluster = optimizer.provision(&plan).expect("provisioning");
    let data = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 42 });
    cluster.store().put_local("A", &data).expect("upload");
    let report = optimizer
        .execute_on(&cluster, &program, &inputs, "run0", ExecMode::Real)
        .expect("execution");
    println!("run: {}", report.summary());
    for job in &report.jobs {
        println!(
            "  job {:<10} {:>7.1}s  {} tasks, locality {:.0}%",
            job.name,
            job.duration_s(),
            job.tasks.len(),
            100.0 * job.locality_rate()
        );
    }

    // ------------------------------------------------------------------
    // 5. The results are real — check them.
    // ------------------------------------------------------------------
    let got = cluster.store().get_local("G").expect("fetch G");
    let expect = data.transpose().matmul(&data).expect("reference");
    let err = got.max_abs_diff(&expect).expect("compare");
    println!("max |G - AᵀA| = {err:.3e}");
    assert!(err < 1e-6, "distributed result must match the reference");

    let s = cluster.store().get_local("S").expect("fetch S");
    assert!((s.sum() - 2.0 * data.sum()).abs() < 1e-6);
    println!("all results verified ✓");
}
