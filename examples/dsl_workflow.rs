//! The full Cumulon story in the surface language: write linear algebra as
//! a script, let the system infer inputs/outputs, pick a deployment, run,
//! and verify.
//!
//! ```sh
//! cargo run --release --example dsl_workflow
//! ```

use std::collections::BTreeMap;

use cumulon::prelude::*;

fn main() {
    // Ridge-regression normal equations plus a residual-ish diagnostic,
    // written the way a statistician would.
    let source = r#"
        # normal equations for ridge regression
        G  = X' * X;
        Xy = X' * y;

        # a cheap data diagnostic on the side: 1.5 |X|
        D  = sqrt(sq(X)) + abs(0.5 X);

        out G, Xy, D;
    "#;

    let compiled = compile_source(source).expect("script compiles");
    println!("script inputs : {:?}", compiled.inputs);
    println!("script outputs: {:?}", compiled.outputs());

    // Describe inputs and optimize the deployment.
    let x_meta = MatrixMeta::new(3_000, 400, 200);
    let y_meta = MatrixMeta::new(3_000, 1, 200);
    let mut inputs = BTreeMap::new();
    inputs.insert("X".to_string(), InputDesc::dense(x_meta));
    inputs.insert("y".to_string(), InputDesc::dense(y_meta));

    let optimizer = Optimizer::new(idealized_cost_model());
    let plan = optimizer
        .optimize(
            &compiled.program,
            &inputs,
            SearchSpace::default(),
            Constraint::Deadline(3_600.0),
        )
        .expect("1h deadline feasible");
    println!("deployment    : {}", plan.summary());

    // Provision, load real data, execute, verify.
    let cluster = optimizer.provision(&plan).expect("provision");
    let x = LocalMatrix::generate(x_meta, &Generator::DenseGaussian { seed: 4 });
    let y = LocalMatrix::generate(y_meta, &Generator::DenseGaussian { seed: 5 });
    cluster.store().put_local("X", &x).expect("upload X");
    cluster.store().put_local("y", &y).expect("upload y");
    let report = optimizer
        .execute_on(&cluster, &compiled.program, &inputs, "dsl", ExecMode::Real)
        .expect("run");
    println!("run           : {}", report.summary());

    let g = cluster.store().get_local("G").expect("G");
    let expect_g = x.transpose().matmul(&x).expect("XᵀX");
    let err = g.max_abs_diff(&expect_g).expect("compare");
    println!("max |G − XᵀX| : {err:.3e}");
    assert!(err < 1e-6);

    let xy = cluster.store().get_local("Xy").expect("Xy");
    let expect_xy = x.transpose().matmul(&y).expect("Xᵀy");
    assert!(xy.max_abs_diff(&expect_xy).expect("compare") < 1e-6);

    // D = sqrt(X²) + |X/2| = 1.5 |X|.
    let d = cluster.store().get_local("D").expect("D");
    let mut expect_d = x.map(f64::abs);
    expect_d.scale(1.5);
    assert!(d.max_abs_diff(&expect_d).expect("compare") < 1e-9);

    println!("all outputs verified ✓");
}
