//! What-if analysis for a regression workload: sweep instance types and
//! cluster sizes, print the estimated time/cost grid and the Pareto
//! frontier — the "intelligent deployment" console a Cumulon user would
//! stare at before swiping a credit card.
//!
//! ```sh
//! cargo run --release --example what_if_cluster
//! ```

use cumulon::core::deploy::DeploymentSearch;
use cumulon::prelude::*;

fn main() {
    // OLS normal equations over 2M × 2k observations.
    let reg = Regression {
        rows: 2_000_000,
        features: 2_000,
        tile_size: 1_000,
        lambda: 1.0,
        seed: 11,
    };
    let program = reg.normal_eq_program();
    let inputs = reg.normal_eq_inputs();

    let model = idealized_cost_model();
    let space = SearchSpace {
        instances: ["m1.large", "c1.xlarge", "m2.2xlarge", "cc1.4xlarge"]
            .iter()
            .filter_map(|n| cumulon::cluster::instances::by_name(n))
            .collect(),
        min_nodes: 2,
        max_nodes: 32,
        node_stride: 2,
        slots_per_core: vec![1.0],
        replication: 3,
        billing: BillingPolicy::HourlyCeil,
        failure: None,
    };
    let search = DeploymentSearch::new(&model, space);

    println!("estimated time/cost grid (normal equations, X: 2M×2k):");
    println!(
        "{:<14} {:>6} {:>10} {:>10}",
        "instance", "nodes", "time", "cost"
    );
    let sweep = search.sweep(&program, &inputs).expect("sweep");
    for d in sweep.iter().filter(|d| d.nodes % 8 == 0 || d.nodes == 2) {
        println!(
            "{:<14} {:>6} {:>9.0}s {:>9.2}$",
            d.instance.name, d.nodes, d.estimate.makespan_s, d.estimate.cost_dollars
        );
    }

    println!("\nPareto frontier (no deployment is both faster and cheaper):");
    let skyline = search.pareto(&program, &inputs).expect("pareto");
    for d in &skyline {
        println!("  {}", d.summary());
    }

    // Zoom in: what does the best sub-30-minute option cost?
    match search.optimize(&program, &inputs, Constraint::Deadline(1_800.0)) {
        Ok(best) => println!("\nbest under 30min: {}", best.summary()),
        Err(e) => println!("\nno deployment finishes in 30min: {e}"),
    }
    // And how fast can $20 go?
    match search.optimize(&program, &inputs, Constraint::Budget(20.0)) {
        Ok(best) => println!("best under $20:   {}", best.summary()),
        Err(e) => println!("no deployment fits $20: {e}"),
    }
}
