//! Integration tests for the surface language and distributed aggregates:
//! scripts compiled by `cumulon-lang` must execute identically to
//! hand-built programs, and cluster-side aggregates must match driver-side
//! reference values.

use std::collections::BTreeMap;

use cumulon::core::aggregate::{aggregate, frobenius_norm, AggKind};
use cumulon::prelude::*;

fn optimizer() -> Optimizer {
    Optimizer::new(idealized_cost_model())
}

#[test]
fn scripted_gnmf_update_matches_workload_crate() {
    // The same H-update, once through the DSL and once through the
    // hand-built GNMF workload — identical numbers.
    let gnmf = Gnmf {
        m: 24,
        n: 18,
        rank: 4,
        tile_size: 6,
        density: 0.4,
        seed: 11,
    };

    // Workload path.
    let c1 = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
    gnmf.setup(c1.store()).unwrap();
    gnmf.run(&optimizer(), &c1, 1, ExecMode::Real).unwrap();
    let h1_workload = c1.store().get_local("H_1").unwrap();

    // DSL path, from the same input matrices.
    let script =
        compile_source("WtV = W' * V;\nWtW = W' * W;\nH1 = H .* WtV ./ (WtW * H);").unwrap();
    let c2 = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
    for (script_name, store_name) in [("V", "V"), ("W", "W_0"), ("H", "H_0")] {
        let m = c1.store().get_local(store_name).unwrap();
        c2.store().put_local(script_name, &m).unwrap();
    }
    let mut descs = BTreeMap::new();
    descs.insert(
        "V".to_string(),
        InputDesc::sparse(c2.store().lookup("V").unwrap().meta, 0.4),
    );
    descs.insert(
        "W".to_string(),
        InputDesc::dense(c2.store().lookup("W").unwrap().meta),
    );
    descs.insert(
        "H".to_string(),
        InputDesc::dense(c2.store().lookup("H").unwrap().meta),
    );
    optimizer()
        .execute_on(&c2, &script.program, &descs, "dsl", ExecMode::Real)
        .unwrap();
    let h1_dsl = c2.store().get_local("H1").unwrap();

    assert!(h1_dsl.max_abs_diff(&h1_workload).unwrap() < 1e-9);
}

#[test]
fn scripted_chain_goes_through_the_optimizer() {
    // A 4-factor chain written naively right-associated in the script; the
    // optimizer's chain DP must still produce correct results.
    let script = compile_source("OUT = M0 * (M1 * (M2 * M3));").unwrap();
    assert_eq!(script.inputs, vec!["M0", "M1", "M2", "M3"]);

    let dims = [10usize, 30, 5, 20, 8];
    let cluster = Cluster::provision(ClusterSpec::named("c1.medium", 2, 2).unwrap()).unwrap();
    let mut locals = Vec::new();
    let mut descs = BTreeMap::new();
    for i in 0..4 {
        let meta = MatrixMeta::new(dims[i], dims[i + 1], 7);
        let m = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform {
                seed: i as u64,
                lo: -1.0,
                hi: 1.0,
            },
        );
        cluster.store().put_local(&format!("M{i}"), &m).unwrap();
        descs.insert(format!("M{i}"), InputDesc::dense(meta));
        locals.push(m);
    }
    optimizer()
        .execute_on(&cluster, &script.program, &descs, "chain", ExecMode::Real)
        .unwrap();
    let got = cluster.store().get_local("OUT").unwrap();
    let mut expect = locals[0].clone();
    for m in &locals[1..] {
        expect = expect.matmul(m).unwrap();
    }
    assert!(got.max_abs_diff(&expect).unwrap() < 1e-8);
}

#[test]
fn aggregates_support_convergence_checks_at_scale() {
    // Real mode: exact values.
    let cluster = Cluster::provision(ClusterSpec::named("m1.large", 3, 2).unwrap()).unwrap();
    let meta = MatrixMeta::new(36, 24, 10);
    let m = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 9 });
    cluster.store().put_local("M", &m).unwrap();

    let (norm, _) = frobenius_norm(&cluster, "M", 3, "it0", ExecMode::Real).unwrap();
    assert!((norm.unwrap() - m.frob_norm()).abs() < 1e-9);
    let (sum, _) = aggregate(&cluster, "M", AggKind::Sum, 3, "it1", ExecMode::Real).unwrap();
    assert!((sum.unwrap() - m.sum()).abs() < 1e-9);

    // Phantom mode at scale: value unavailable, cost realistic.
    let big = Cluster::provision(ClusterSpec::named("c1.xlarge", 8, 8).unwrap()).unwrap();
    let big_meta = MatrixMeta::new(100_000, 100_000, 1_000);
    big.store()
        .register_generated(
            "BIG",
            big_meta,
            Generator::SparseUniform {
                seed: 1,
                density: 0.01,
            },
        )
        .unwrap();
    let (v, report) =
        aggregate(&big, "BIG", AggKind::FrobSq, 64, "it2", ExecMode::Simulated).unwrap();
    assert!(v.is_none());
    assert!(
        report.makespan_s > 1.0,
        "scanning 1.2GB of sparse data takes real time"
    );
}

#[test]
fn dsl_scale_and_functions_execute_correctly() {
    let script = compile_source("Y = 0.5 (A + A') + abs(-1 * A);").unwrap();
    let meta = MatrixMeta::new(12, 12, 5);
    let cluster = Cluster::provision(ClusterSpec::named("m1.small", 1, 1).unwrap()).unwrap();
    let a = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 3 });
    cluster.store().put_local("A", &a).unwrap();
    let mut descs = BTreeMap::new();
    descs.insert("A".to_string(), InputDesc::dense(meta));
    optimizer()
        .execute_on(&cluster, &script.program, &descs, "f", ExecMode::Real)
        .unwrap();
    let got = cluster.store().get_local("Y").unwrap();
    let mut sym = a
        .elementwise(&a.transpose(), cumulon::matrix::tile::ElemOp::Add)
        .unwrap();
    sym.scale(0.5);
    let expect = sym
        .elementwise(&a.map(f64::abs), cumulon::matrix::tile::ElemOp::Add)
        .unwrap();
    assert!(got.max_abs_diff(&expect).unwrap() < 1e-12);
}
