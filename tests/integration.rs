//! Cross-crate integration tests: programs flow from the builder through
//! rewrite, lowering, the DFS and the scheduler, and the numbers that come
//! back match driver-side references.

use std::collections::BTreeMap;

use cumulon::prelude::*;
use cumulon::workloads::smallmat::SmallMat;

fn optimizer() -> Optimizer {
    Optimizer::new(idealized_cost_model())
}

fn dense_inputs(pairs: &[(&str, MatrixMeta)]) -> BTreeMap<String, InputDesc> {
    pairs
        .iter()
        .map(|(n, m)| (n.to_string(), InputDesc::dense(*m)))
        .collect()
}

#[test]
fn gram_pipeline_matches_reference() {
    let meta = MatrixMeta::new(40, 24, 8);
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let at = b.transpose(a);
    let g = b.mul(at, a);
    b.output("G", g);
    let program = b.build();

    let cluster = Cluster::provision(ClusterSpec::named("c1.medium", 3, 2).unwrap()).unwrap();
    let data = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 100 });
    cluster.store().put_local("A", &data).unwrap();
    optimizer()
        .execute_on(
            &cluster,
            &program,
            &dense_inputs(&[("A", meta)]),
            "t",
            ExecMode::Real,
        )
        .unwrap();
    let got = cluster.store().get_local("G").unwrap();
    let expect = data.transpose().matmul(&data).unwrap();
    assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
}

#[test]
fn five_matrix_chain_through_full_stack() {
    // Dims chosen so re-association matters and edge tiles are ragged.
    let dims = [18usize, 30, 7, 25, 11, 9];
    let mut inputs = BTreeMap::new();
    let mut pb = ProgramBuilder::new();
    let mut ids = Vec::new();
    for i in 0..5 {
        let meta = MatrixMeta::new(dims[i], dims[i + 1], 8);
        inputs.insert(format!("M{i}"), InputDesc::dense(meta));
        ids.push(pb.input(&format!("M{i}")));
    }
    let chain = pb.mul_chain(&ids);
    pb.output("OUT", chain);
    let program = pb.build();

    let cluster = Cluster::provision(ClusterSpec::named("m1.xlarge", 2, 4).unwrap()).unwrap();
    let mut locals = Vec::new();
    for i in 0..5 {
        let meta = MatrixMeta::new(dims[i], dims[i + 1], 8);
        let m = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform {
                seed: i as u64,
                lo: -1.0,
                hi: 1.0,
            },
        );
        cluster.store().put_local(&format!("M{i}"), &m).unwrap();
        locals.push(m);
    }
    optimizer()
        .execute_on(&cluster, &program, &inputs, "t", ExecMode::Real)
        .unwrap();
    let got = cluster.store().get_local("OUT").unwrap();
    let mut expect = locals[0].clone();
    for m in &locals[1..] {
        expect = expect.matmul(m).unwrap();
    }
    assert!(got.max_abs_diff(&expect).unwrap() < 1e-6);
}

#[test]
fn sparse_dense_mixed_program() {
    let meta = MatrixMeta::new(30, 30, 10);
    let mut b = ProgramBuilder::new();
    let s = b.input("S");
    let d = b.input("D");
    let prod = b.mul(s, d); // sparse × dense
    let masked = b.elem_mul(s, prod); // sparse mask of the product
    b.output("P", prod);
    b.output("M", masked);
    let program = b.build();

    let mut inputs = BTreeMap::new();
    inputs.insert("S".into(), InputDesc::sparse(meta, 0.1));
    inputs.insert("D".into(), InputDesc::dense(meta));

    let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
    let sm = LocalMatrix::generate(
        meta,
        &Generator::SparseUniform {
            seed: 5,
            density: 0.1,
        },
    );
    let dm = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 6 });
    cluster.store().put_local("S", &sm).unwrap();
    cluster.store().put_local("D", &dm).unwrap();
    optimizer()
        .execute_on(&cluster, &program, &inputs, "t", ExecMode::Real)
        .unwrap();

    let p = cluster.store().get_local("P").unwrap();
    let expect_p = sm.matmul(&dm).unwrap();
    assert!(p.max_abs_diff(&expect_p).unwrap() < 1e-9);
    let m = cluster.store().get_local("M").unwrap();
    let expect_m = sm
        .elementwise(&expect_p, cumulon::matrix::tile::ElemOp::Mul)
        .unwrap();
    assert!(m.max_abs_diff(&expect_m).unwrap() < 1e-9);
}

#[test]
fn run_survives_task_and_node_failures() {
    use cumulon::cluster::scheduler::{FailurePlan, SchedulerConfig};
    use cumulon::cluster::ExecMode;

    let meta = MatrixMeta::new(24, 24, 6);
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let sq = b.mul(a, a);
    b.output("SQ", sq);
    let program = b.build();
    let inputs = dense_inputs(&[("A", meta)]);

    let cluster = Cluster::provision(ClusterSpec::named("m1.large", 4, 2).unwrap()).unwrap();
    let data = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 8 });
    cluster.store().put_local("A", &data).unwrap();

    // Lower manually so we can inject failures into the run.
    let plan =
        cumulon::core::lower::build_plan(&program, &inputs, &cumulon::core::lower::UnitSplits, "t")
            .unwrap();
    let dag = cumulon::core::lower::instantiate(&plan, cluster.store()).unwrap();
    let failures = FailurePlan {
        task_failure_prob: 0.2,
        node_failures: vec![(5.0, 3)],
        seed: 77,
        ..Default::default()
    };
    let report = cluster
        .run_with(&dag, ExecMode::Real, SchedulerConfig::default(), &failures)
        .unwrap();
    assert!(report.jobs.iter().map(|j| j.retries()).sum::<u32>() > 0);
    let got = cluster.store().get_local("SQ").unwrap();
    let expect = data.matmul(&data).unwrap();
    assert!(
        got.max_abs_diff(&expect).unwrap() < 1e-9,
        "results correct despite failures"
    );
}

#[test]
fn phantom_and_real_agree_on_structure() {
    // The same program in phantom and real mode must produce the same job
    // structure and task counts; only the payloads differ.
    let meta = MatrixMeta::new(36, 36, 12);
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let sq = b.mul(a, a);
    let shifted = b.add(sq, a);
    b.output("OUT", shifted);
    let program = b.build();
    let inputs = {
        let mut m = BTreeMap::new();
        m.insert("A".to_string(), InputDesc::dense(meta).generated());
        m
    };

    let run = |mode| {
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        cluster
            .store()
            .register_generated("A", meta, Generator::DenseGaussian { seed: 1 })
            .unwrap();
        optimizer()
            .execute_on(&cluster, &program, &inputs, "t", mode)
            .unwrap()
    };
    let real = run(ExecMode::Real);
    let sim = run(ExecMode::Simulated);
    assert_eq!(real.jobs.len(), sim.jobs.len());
    for (r, s) in real.jobs.iter().zip(sim.jobs.iter()) {
        assert_eq!(r.tasks.len(), s.tasks.len(), "task structure must match");
    }
    // Same flop accounting in both modes (dense data).
    let rf: f64 = real.jobs.iter().map(|j| j.receipt.work.flops).sum();
    let sf: f64 = sim.jobs.iter().map(|j| j.receipt.work.flops).sum();
    assert!((rf - sf).abs() / rf < 1e-9);
}

#[test]
fn driver_side_small_algebra_consistency() {
    // smallmat vs cumulon-matrix on the same data.
    let meta = MatrixMeta::new(6, 6, 3);
    let a = LocalMatrix::generate(
        meta,
        &Generator::DenseUniform {
            seed: 2,
            lo: 0.1,
            hi: 1.0,
        },
    );
    let flat = a.to_dense_vec().unwrap();
    let sm = SmallMat::new(6, 6, flat.clone());
    let prod_small = sm.matmul(&sm);
    let prod_tiles = a.matmul(&a).unwrap().to_dense_vec().unwrap();
    for (x, y) in prod_small.data.iter().zip(prod_tiles.iter()) {
        assert!((x - y).abs() < 1e-12);
    }
}
