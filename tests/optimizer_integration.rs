//! Optimizer integration: benchmark-calibrated models drive deployment
//! choices whose predictions hold up against the simulator.

use std::collections::BTreeMap;

use cumulon::core::calibrate::{calibrate, CalibrationConfig};
use cumulon::prelude::*;

fn multiply_program(meta: MatrixMeta) -> (Program, BTreeMap<String, InputDesc>) {
    let mut pb = ProgramBuilder::new();
    let a = pb.input("A");
    let m = pb.mul(a, a);
    pb.output("C", m);
    let mut inputs = BTreeMap::new();
    inputs.insert("A".to_string(), InputDesc::dense(meta).generated());
    (pb.build(), inputs)
}

#[test]
fn calibrated_optimizer_end_to_end() {
    // Calibrate two instance types from scratch (the paper's offline
    // benchmarking step), then optimize and execute.
    let instances: Vec<InstanceType> = ["m1.large", "c1.xlarge"]
        .iter()
        .filter_map(|n| cumulon::cluster::instances::by_name(n))
        .collect();
    let model = calibrate(&instances, &CalibrationConfig::default()).unwrap();
    let optimizer = Optimizer::new(model);

    let meta = MatrixMeta::new(8_000, 8_000, 1_000);
    let (program, inputs) = multiply_program(meta);
    let space = SearchSpace {
        instances,
        min_nodes: 1,
        max_nodes: 16,
        node_stride: 1,
        slots_per_core: vec![1.0],
        replication: 3,
        billing: cumulon::cluster::billing::BillingPolicy::HourlyCeil,
        failure: None,
    };
    let plan = optimizer
        .optimize(&program, &inputs, space, Constraint::Deadline(3_600.0))
        .unwrap();
    assert!(plan.estimate.makespan_s <= 3_600.0);

    // Execute on the chosen deployment and check the prediction held.
    let cluster = optimizer.provision(&plan).unwrap();
    cluster
        .store()
        .register_generated("A", meta, Generator::DenseGaussian { seed: 1 })
        .unwrap();
    let report = optimizer
        .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
        .unwrap();
    let rel = (plan.estimate.makespan_s - report.makespan_s).abs() / report.makespan_s;
    assert!(
        rel < 0.35,
        "prediction {:.0}s vs simulated {:.0}s (rel {rel:.2})",
        plan.estimate.makespan_s,
        report.makespan_s
    );
    // The run should also respect the deadline (allow the straggler tail
    // a little slack beyond the point estimate).
    assert!(report.makespan_s <= 3_600.0 * 1.2);
}

#[test]
fn prediction_accuracy_across_deployments() {
    let optimizer = Optimizer::new(idealized_cost_model());
    let meta = MatrixMeta::new(6_000, 6_000, 1_000);
    let (program, inputs) = multiply_program(meta);

    let mut worst = 0.0f64;
    for (instance, nodes, slots) in [
        ("m1.large", 4u32, 2u32),
        ("c1.xlarge", 2, 8),
        ("m2.2xlarge", 6, 4),
    ] {
        let cluster =
            Cluster::provision(ClusterSpec::named(instance, nodes, slots).unwrap()).unwrap();
        cluster
            .store()
            .register_generated("A", meta, Generator::DenseGaussian { seed: 1 })
            .unwrap();
        let est = optimizer.estimate_on(&cluster, &program, &inputs).unwrap();
        let run = optimizer
            .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
            .unwrap();
        let rel = (est.makespan_s - run.makespan_s).abs() / run.makespan_s;
        worst = worst.max(rel);
    }
    assert!(worst < 0.4, "worst relative prediction error {worst:.2}");
}

#[test]
fn tighter_deadline_costs_more_or_equal() {
    let optimizer = Optimizer::new(idealized_cost_model());
    let meta = MatrixMeta::new(16_000, 16_000, 1_000);
    let (program, inputs) = multiply_program(meta);
    let space = SearchSpace {
        max_nodes: 32,
        ..SearchSpace::quick()
    };

    let mut last_cost = f64::INFINITY;
    // Loosening deadlines must never raise the optimal cost.
    for deadline in [1_800.0, 3_600.0, 7_200.0, 14_400.0] {
        if let Ok(plan) = optimizer.optimize(
            &program,
            &inputs,
            space.clone(),
            Constraint::Deadline(deadline),
        ) {
            assert!(
                plan.estimate.cost_dollars <= last_cost + 1e-9,
                "deadline {deadline}: cost went up"
            );
            last_cost = plan.estimate.cost_dollars;
        }
    }
    assert!(
        last_cost.is_finite(),
        "at least the loosest deadline must be feasible"
    );
}

#[test]
fn pareto_frontier_brackets_constrained_optima() {
    let optimizer = Optimizer::new(idealized_cost_model());
    let meta = MatrixMeta::new(10_000, 10_000, 1_000);
    let (program, inputs) = multiply_program(meta);
    let space = SearchSpace {
        max_nodes: 16,
        ..SearchSpace::quick()
    };

    let skyline = optimizer.pareto(&program, &inputs, space.clone()).unwrap();
    assert!(!skyline.is_empty());
    let deadline = skyline[skyline.len() / 2].estimate.makespan_s * 1.01;
    let best = optimizer
        .optimize(&program, &inputs, space, Constraint::Deadline(deadline))
        .unwrap();
    // The constrained optimum can never beat the skyline's cost at that
    // time point.
    let floor = skyline
        .iter()
        .filter(|d| d.estimate.makespan_s <= deadline)
        .map(|d| d.estimate.cost_dollars)
        .fold(f64::INFINITY, f64::min);
    assert!(best.estimate.cost_dollars >= floor - 1e-9);
    assert!(
        best.estimate.cost_dollars <= floor + 1e-9,
        "optimize should find the skyline point"
    );
}
