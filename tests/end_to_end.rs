//! End-to-end comparisons: Cumulon-RS against the MapReduce baseline on
//! the same data, same simulated hardware — the repo-level version of the
//! paper's headline claim.

use std::collections::BTreeMap;

use cumulon::prelude::*;

fn optimizer() -> Optimizer {
    Optimizer::new(idealized_cost_model())
}

/// Runs `C = A × B` on Cumulon and on the MR baseline (RMM), both with
/// real data, returning (cumulon_s, mr_s, max result diff).
fn head_to_head_multiply(n: usize, tile: usize) -> (f64, f64, f64) {
    let spec = ClusterSpec::named("m1.large", 4, 2).unwrap();
    let meta = MatrixMeta::new(n, n, tile);
    let a = LocalMatrix::generate(
        meta,
        &Generator::DenseUniform {
            seed: 1,
            lo: -1.0,
            hi: 1.0,
        },
    );
    let b = LocalMatrix::generate(
        meta,
        &Generator::DenseUniform {
            seed: 2,
            lo: -1.0,
            hi: 1.0,
        },
    );

    // Cumulon.
    let cluster = Cluster::provision(spec).unwrap();
    cluster.store().put_local("A", &a).unwrap();
    cluster.store().put_local("B", &b).unwrap();
    let mut pb = ProgramBuilder::new();
    let ia = pb.input("A");
    let ib = pb.input("B");
    let m = pb.mul(ia, ib);
    pb.output("C", m);
    let program = pb.build();
    let mut inputs = BTreeMap::new();
    inputs.insert("A".to_string(), InputDesc::dense(meta));
    inputs.insert("B".to_string(), InputDesc::dense(meta));
    let report = optimizer()
        .execute_on(&cluster, &program, &inputs, "t", ExecMode::Real)
        .unwrap();
    let c_cumulon = cluster.store().get_local("C").unwrap();

    // Baseline.
    let mr_store = TileStore::new(Dfs::new(spec.nodes, DfsConfig::default()));
    mr_store.put_local("A", &a).unwrap();
    mr_store.put_local("B", &b).unwrap();
    let engine = MrEngine::new(
        spec,
        mr_store.clone(),
        HardwareModel::default(),
        MrConfig::default(),
    );
    let prog = MrProgram::new().push(MrOp::Mul {
        a: "A".into(),
        b: "B".into(),
        out: "C".into(),
        strategy: MulStrategy::Rmm,
    });
    let mr_report = prog.execute(&engine, ExecMode::Real).unwrap();
    let c_mr = mr_store.get_local("C").unwrap();

    let diff = c_cumulon.max_abs_diff(&c_mr).unwrap();
    (report.makespan_s, mr_report.makespan_s, diff)
}

#[test]
fn cumulon_beats_mapreduce_on_multiply() {
    let (cumulon_s, mr_s, diff) = head_to_head_multiply(48, 12);
    assert!(diff < 1e-9, "both engines must compute the same product");
    assert!(
        mr_s > 1.5 * cumulon_s,
        "MR structural overheads should show: cumulon {cumulon_s:.1}s vs mr {mr_s:.1}s"
    );
}

#[test]
fn speedup_grows_with_scale_in_phantom_mode() {
    // Phantom mode lets us compare at paper scale.
    let run_pair = |n: usize| {
        let spec = ClusterSpec::named("c1.xlarge", 8, 8).unwrap();
        let meta = MatrixMeta::new(n, n, 1_000);

        let cluster = Cluster::provision(spec).unwrap();
        cluster
            .store()
            .register_generated("A", meta, Generator::DenseGaussian { seed: 1 })
            .unwrap();
        let mut pb = ProgramBuilder::new();
        let ia = pb.input("A");
        let m = pb.mul(ia, ia);
        pb.output("C", m);
        let program = pb.build();
        let mut inputs = BTreeMap::new();
        inputs.insert("A".to_string(), InputDesc::dense(meta).generated());
        let cumulon_s = optimizer()
            .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
            .unwrap()
            .makespan_s;

        let mr_store = TileStore::new(Dfs::new(spec.nodes, DfsConfig::default()));
        mr_store
            .register_generated("A", meta, Generator::DenseGaussian { seed: 1 })
            .unwrap();
        let engine = MrEngine::new(
            spec,
            mr_store,
            HardwareModel::default(),
            MrConfig::default(),
        );
        let prog = MrProgram::new().push(MrOp::Mul {
            a: "A".into(),
            b: "A".into(),
            out: "C".into(),
            strategy: MulStrategy::Auto,
        });
        let mr_s = prog
            .execute(&engine, ExecMode::Simulated)
            .unwrap()
            .makespan_s;
        (cumulon_s, mr_s)
    };
    let (c_small, m_small) = run_pair(4_000);
    let (c_big, m_big) = run_pair(10_000);
    assert!(
        m_small > c_small,
        "baseline slower even small: {m_small} vs {c_small}"
    );
    assert!(m_big > 1.5 * c_big, "gap at scale: {m_big} vs {c_big}");
}

#[test]
fn iterative_workload_uses_multiple_jobs_per_iteration() {
    let gnmf = cumulon::workloads::gnmf::Gnmf {
        m: 30,
        n: 24,
        rank: 4,
        tile_size: 6,
        density: 0.3,
        seed: 4,
    };
    let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
    gnmf.setup(cluster.store()).unwrap();
    let reports = gnmf.run(&optimizer(), &cluster, 1, ExecMode::Real).unwrap();
    // One iteration = several multiply jobs + fused updates; verify the
    // DAG actually parallelised/structured the work.
    let jobs = &reports[0].jobs;
    assert!(
        jobs.len() >= 5,
        "expected multiple jobs, got {}",
        jobs.len()
    );
    assert!(jobs.iter().any(|j| j.op_label == "mul"));
    assert!(jobs.iter().any(|j| j.op_label == "fused"));
}

#[test]
fn billing_consistent_between_estimate_and_run() {
    let meta = MatrixMeta::new(8_000, 8_000, 1_000);
    let mut pb = ProgramBuilder::new();
    let ia = pb.input("A");
    let m = pb.mul(ia, ia);
    pb.output("C", m);
    let program = pb.build();
    let mut inputs = BTreeMap::new();
    inputs.insert("A".to_string(), InputDesc::dense(meta).generated());

    let opt = optimizer();
    let cluster = Cluster::provision(ClusterSpec::named("m1.xlarge", 4, 4).unwrap()).unwrap();
    cluster
        .store()
        .register_generated("A", meta, Generator::DenseGaussian { seed: 3 })
        .unwrap();
    let est = opt.estimate_on(&cluster, &program, &inputs).unwrap();
    let run = opt
        .execute_on(&cluster, &program, &inputs, "t", ExecMode::Simulated)
        .unwrap();
    // Same billing rules applied to both sides.
    let price = cumulon::cluster::instances::by_name("m1.xlarge")
        .unwrap()
        .price_per_hour;
    assert_eq!(run.cost_dollars, 4.0 * price * run.billed_hours);
    let est_hours = (est.makespan_s / 3600.0).ceil();
    assert_eq!(est.cost_dollars, 4.0 * price * est_hours);
}
