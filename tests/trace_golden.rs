//! Golden-file test for the exported trace JSON: a fixed traced run must
//! emit *byte-identical* Chrome `trace_event` JSON (the run is fully
//! deterministic at 1 worker thread, and `f64` formatting is the
//! platform-independent shortest round-trip form), and the document must
//! satisfy the schema contracted in `DESIGN.md` ("Observability") and
//! [`cumulon::trace::TraceLog::to_chrome_json`].
//!
//! Regenerate the golden after an intentional schema change with:
//!
//! ```sh
//! BLESS_TRACE_GOLDEN=1 cargo test -p cumulon --test trace_golden
//! ```

use std::collections::BTreeMap;

use cumulon::cluster::instances::catalog;
use cumulon::cluster::{Cluster, ClusterSpec, ExecMode, FailurePlan, SchedulerConfig, Trace};
use cumulon::core::calibrate::{CostModel, OpCoefficients};
use cumulon::core::{InputDesc, Optimizer, ProgramBuilder, RecoveryConfig};
use cumulon::dfs::DfsConfig;
use cumulon::matrix::gen::Generator;
use cumulon::matrix::MatrixMeta;
use cumulon::trace::json::{parse, JsonValue};

/// One fixed traced run: H = AᵀA + AᵀA (a fused gram job feeding an
/// element-wise add, so the trace carries at least two job spans) on
/// m1.large x2, Real mode, 1 worker thread (cache counters are the one
/// scheduling-order sensitive field, so the golden pins the sequential
/// schedule).
fn traced_run_json() -> String {
    let meta = MatrixMeta::new(64, 32, 8);
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 2, 2).unwrap(),
        Default::default(),
        DfsConfig::default(),
    )
    .unwrap();
    cluster
        .store()
        .register_generated("A", meta, Generator::DenseGaussian { seed: 5 })
        .unwrap();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let at = b.transpose(a);
    let g = b.mul(at, a);
    let h = b.add(g, g);
    b.output("H", h);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "A".to_string(),
        InputDesc {
            meta,
            density: 1.0,
            sparse: false,
            generated: true,
        },
    );
    let mut model = CostModel::default();
    for i in catalog() {
        model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    let trace = Trace::enabled();
    Optimizer::new(model)
        .execute_on_traced(
            &cluster,
            &program,
            &inputs,
            "golden",
            ExecMode::Real,
            SchedulerConfig::default().with_threads(1),
            &FailurePlan::default(),
            RecoveryConfig::default(),
            &trace,
        )
        .unwrap();
    trace.snapshot().unwrap().to_chrome_json()
}

fn f64_of(v: &JsonValue, key: &str) -> f64 {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing number '{key}' in {v:?}"))
}

#[test]
fn trace_json_matches_golden_and_schema() {
    let json = traced_run_json();
    if std::env::var_os("BLESS_TRACE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/golden/trace_small.json"
        );
        std::fs::write(path, &json).expect("bless golden");
    }
    let golden = include_str!("golden/trace_small.json");
    assert_eq!(
        json, golden,
        "trace JSON diverged from the golden file; if the schema change is \
         intentional, bump TRACE_SCHEMA_VERSION, update DESIGN.md, and run \
         BLESS_TRACE_GOLDEN=1 cargo test -p cumulon --test trace_golden"
    );

    // Schema validation, independent of the byte comparison: every field
    // documented in DESIGN.md must be present and well-typed.
    let doc = parse(&json).expect("exported trace is valid JSON");
    assert_eq!(f64_of(&doc, "schema_version"), 2.0);
    let meta = doc.get("cumulon").expect("cumulon metadata object");
    assert_eq!(meta.get("instance").unwrap().as_str(), Some("m1.large"));
    assert_eq!(f64_of(meta, "nodes"), 2.0);
    assert_eq!(f64_of(meta, "slots"), 2.0);
    let makespan_us = f64_of(meta, "makespan_s") * 1e6;
    assert!(makespan_us > 0.0);
    assert!(f64_of(meta, "cache_hits") >= 0.0);
    assert!(f64_of(meta, "cache_misses") >= 0.0);
    let phases = meta.get("phases").expect("aggregated phases object");
    for key in ["compute_s", "read_s", "write_s", "startup_s", "overhead_s"] {
        assert!(f64_of(phases, key) >= 0.0, "phase {key} must be >= 0");
    }

    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    let (mut tasks, mut jobs) = (0usize, 0usize);
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
        assert!(matches!(ph, "M" | "X" | "i"), "unknown phase type {ph}");
        assert!(e.get("name").and_then(JsonValue::as_str).is_some());
        assert!(f64_of(e, "pid") >= 0.0);
        if ph == "X" {
            let ts = f64_of(e, "ts");
            let dur = f64_of(e, "dur");
            assert!(ts >= 0.0 && dur >= 0.0);
            assert!(
                ts + dur <= makespan_us * (1.0 + 1e-9),
                "span ends after the makespan"
            );
            let args = e.get("args").expect("X events carry args");
            match e.get("cat").and_then(JsonValue::as_str) {
                Some("task") => {
                    tasks += 1;
                    for key in [
                        "job",
                        "task",
                        "attempt",
                        "wave",
                        "round",
                        "read_bytes",
                        "read_local_bytes",
                        "write_bytes",
                        "io_ops",
                        "compute_s",
                        "read_s",
                        "write_s",
                        "startup_s",
                        "overhead_s",
                    ] {
                        assert!(f64_of(args, key) >= 0.0, "task arg {key}");
                    }
                    for key in ["ok", "backup", "killed"] {
                        assert!(args.get(key).and_then(JsonValue::as_bool).is_some());
                    }
                }
                Some("job") => {
                    jobs += 1;
                    assert!(f64_of(args, "job") >= 0.0);
                    assert!(args.get("op").and_then(JsonValue::as_str).is_some());
                }
                cat => panic!("X event with unexpected cat {cat:?}"),
            }
        }
    }
    // The plan lowers to at least the fused gram job plus the add job.
    assert!(jobs >= 2, "expected >= 2 job spans, got {jobs}");
    assert!(tasks >= jobs, "expected >= 1 task span per job");
}
