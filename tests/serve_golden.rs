//! Golden-file test for the `cumulon-serve-v1` wire protocol: a fixed,
//! in-process client session (plan, optimize, a synchronous run, a status
//! poll, and two canonical rejections) must produce a *byte-identical*
//! transcript. Runs are fully deterministic — the run response embeds the
//! report fingerprint, makespan and cost, and `f64` formatting is the
//! platform-independent shortest round-trip form — so the golden pins the
//! response schema documented in README.md ("Protocol reference") and
//! DESIGN.md ("Service layer").
//!
//! Regenerate after an intentional schema change with:
//!
//! ```sh
//! BLESS_SERVE_GOLDEN=1 cargo test -p cumulon --test serve_golden
//! ```

use cumulon::serve::quota::QuotaConfig;
use cumulon::serve::{Service, ServiceConfig, SCHEMA};
use cumulon::trace::json::parse;

/// The scripted session: every request the README's protocol reference
/// documents, in one pipelined exchange.
const SESSION: &[&str] = &[
    // Estimate on a given cluster shape (fast lane).
    r#"{"schema":"cumulon-serve-v1","id":"r1","tenant":"alice","action":"plan","script":"G = A' * A;","inputs":["A=2000x1000:200"],"instance":"m1.large","nodes":4,"slots":2}"#,
    // Deployment search under a deadline (fast lane).
    r#"{"schema":"cumulon-serve-v1","id":"r2","tenant":"alice","action":"optimize","script":"G = A' * A;","inputs":["A=2000x1000:200"],"deadline_s":7200,"max_nodes":8}"#,
    // Synchronous run: response carries the audit fingerprint.
    r#"{"schema":"cumulon-serve-v1","id":"r3","tenant":"bob","action":"run","script":"G = A' * A;","inputs":["A=40x20:10"],"instance":"m1.large","nodes":2,"slots":2}"#,
    // Poll the finished job by id.
    r#"{"schema":"cumulon-serve-v1","id":"r4","tenant":"bob","action":"check-status","job":"job-1"}"#,
    // Canonical rejections: schema violation and an unknown job.
    r#"{"schema":"cumulon-serve-v1","id":"r5","tenant":"mallory","action":"frobnicate"}"#,
    r#"{"schema":"cumulon-serve-v1","id":"r6","tenant":"bob","action":"check-status","job":"job-99"}"#,
];

fn session_transcript() -> String {
    let mut svc = Service::start(ServiceConfig {
        run_workers: 1,
        threads: 1,
        quota: QuotaConfig {
            capacity: 1e6,
            refill_per_s: 1e3,
            ..QuotaConfig::default()
        },
        ..Default::default()
    });
    let mut transcript = String::new();
    for request in SESSION {
        transcript.push_str("C: ");
        transcript.push_str(request);
        transcript.push('\n');
        transcript.push_str("S: ");
        transcript.push_str(&svc.handle(request));
    }
    svc.shutdown();
    transcript
}

#[test]
fn serve_session_matches_golden_and_schema() {
    let transcript = session_transcript();
    if std::env::var_os("BLESS_SERVE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/golden/serve_session.txt"
        );
        std::fs::write(path, &transcript).expect("bless golden");
    }
    let golden = include_str!("golden/serve_session.txt");
    assert_eq!(
        transcript, golden,
        "serve transcript diverged from the golden file; if the protocol \
         change is intentional, update README.md's protocol reference and \
         DESIGN.md, and run BLESS_SERVE_GOLDEN=1 cargo test -p cumulon \
         --test serve_golden"
    );

    // Schema validation, independent of the byte comparison: every
    // response is one line of valid JSON carrying the documented
    // envelope fields.
    for pair in transcript.split("C: ").skip(1) {
        let response = pair
            .split("S: ")
            .nth(1)
            .expect("every request has a response")
            .trim_end();
        assert!(!response.contains('\n'), "one response per line");
        let v = parse(response).expect("response is valid JSON");
        assert_eq!(v.get("schema").and_then(|x| x.as_str()), Some(SCHEMA));
        assert!(v.get("id").and_then(|x| x.as_str()).is_some());
        assert!(v.get("action").and_then(|x| x.as_str()).is_some());
        match v.get("ok").and_then(|x| x.as_bool()) {
            Some(true) => {}
            Some(false) => {
                let code = v
                    .get("error")
                    .and_then(|x| x.as_str())
                    .expect("failed responses carry an error code");
                assert!(
                    [
                        "bad-request",
                        "queue-full",
                        "quota-exhausted",
                        "unknown-job",
                        "shutting-down",
                        "internal"
                    ]
                    .contains(&code),
                    "undocumented error code {code}"
                );
                assert!(v.get("message").and_then(|x| x.as_str()).is_some());
            }
            None => panic!("response without 'ok': {response}"),
        }
    }

    // The run response and the status poll agree on the fingerprint —
    // the audit receipt outlives the synchronous reply.
    let lines: Vec<&str> = transcript.lines().collect();
    let fp_of = |line: &str| {
        parse(line.trim_start_matches("S: ")).ok().and_then(|v| {
            v.get("fingerprint")
                .and_then(|x| x.as_str())
                .map(String::from)
        })
    };
    let run_fp = fp_of(lines[5]).expect("run response carries a fingerprint");
    let poll_fp = fp_of(lines[7]).expect("status poll carries a fingerprint");
    assert_eq!(run_fp, poll_fp);
    assert!(
        run_fp.starts_with("mk"),
        "fingerprint is the canonical form"
    );
}
