//! Matrix programs: expression arenas over named inputs, with shape and
//! density inference.
//!
//! A [`Program`] is an arena of [`ExprNode`]s plus a list of named outputs
//! to materialise. Programs are built through [`ProgramBuilder`], inferred
//! against a set of [`InputDesc`]s, rewritten by the [`crate::rewrite`]
//! passes, and lowered to physical job DAGs by [`mod@crate::lower`].

use std::collections::BTreeMap;

use cumulon_matrix::tile::ElemOp;
use cumulon_matrix::MatrixMeta;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Index of an expression in a program's arena.
pub type ExprId = usize;

/// Unary scalar maps supported by the engine (all zero-preserving, so
/// sparse tiles keep their support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `|x|`
    Abs,
    /// `√x`
    Sqrt,
    /// `x²`
    Square,
}

impl UnaryOp {
    /// Applies the map to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryOp::Abs => x.abs(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Square => x * x,
        }
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Abs => "abs",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Square => "square",
        }
    }
}

/// One node of a matrix expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprNode {
    /// A named input matrix (must be described at inference time).
    Input(String),
    /// Matrix product.
    Mul(ExprId, ExprId),
    /// Element-wise combination.
    Elem(ElemOp, ExprId, ExprId),
    /// Transpose.
    Transpose(ExprId),
    /// Scalar multiple.
    Scale(ExprId, f64),
    /// Element-wise scalar map.
    Unary(UnaryOp, ExprId),
}

impl ExprNode {
    /// Child expression ids.
    pub fn children(&self) -> Vec<ExprId> {
        match *self {
            ExprNode::Input(_) => vec![],
            ExprNode::Mul(a, b) | ExprNode::Elem(_, a, b) => vec![a, b],
            ExprNode::Transpose(a) | ExprNode::Scale(a, _) | ExprNode::Unary(_, a) => vec![a],
        }
    }
}

/// Description of an input matrix: shape, tiling, expected density, and
/// whether it is stored sparse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputDesc {
    /// Shape and tiling.
    pub meta: MatrixMeta,
    /// Expected fraction of non-zero cells.
    pub density: f64,
    /// Whether tiles are stored in the sparse format.
    pub sparse: bool,
    /// Whether tiles are produced by a generator (no DFS reads).
    pub generated: bool,
}

impl InputDesc {
    /// A fully dense input.
    pub fn dense(meta: MatrixMeta) -> Self {
        InputDesc {
            meta,
            density: 1.0,
            sparse: false,
            generated: false,
        }
    }

    /// A sparse input with the given density.
    pub fn sparse(meta: MatrixMeta, density: f64) -> Self {
        InputDesc {
            meta,
            density,
            sparse: true,
            generated: false,
        }
    }

    /// Marks the input as generator-backed (builder style).
    pub fn generated(mut self) -> Self {
        self.generated = true;
        self
    }
}

/// Inferred properties of each expression node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeInfo {
    /// Shape and tiling of the node's value.
    pub meta: MatrixMeta,
    /// Estimated density of the node's value.
    pub density: f64,
    /// Whether the node reads straight from a generator (only `Input` and
    /// `Transpose(Input)` nodes can be).
    pub generated: bool,
}

/// A matrix program: an expression arena plus named outputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Expression arena; children always precede parents.
    pub nodes: Vec<ExprNode>,
    /// `(output name, root expression)` pairs to materialise.
    pub outputs: Vec<(String, ExprId)>,
}

impl Program {
    /// Node accessor with bounds checking.
    pub fn node(&self, id: ExprId) -> Result<&ExprNode> {
        self.nodes.get(id).ok_or(CoreError::BadExprId(id))
    }

    /// Infers shape and density for every node, validating the program
    /// against the given input descriptions.
    pub fn infer(&self, inputs: &BTreeMap<String, InputDesc>) -> Result<Vec<NodeInfo>> {
        let mut info: Vec<NodeInfo> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let ni = match node {
                ExprNode::Input(name) => {
                    let d = inputs
                        .get(name)
                        .ok_or_else(|| CoreError::UnknownInput(name.clone()))?;
                    NodeInfo {
                        meta: d.meta,
                        density: d.density,
                        generated: d.generated,
                    }
                }
                ExprNode::Mul(a, b) => {
                    let (ia, ib) = (
                        self.child_info(&info, *a, id)?,
                        self.child_info(&info, *b, id)?,
                    );
                    if ia.meta.cols != ib.meta.rows || ia.meta.tile_size != ib.meta.tile_size {
                        return Err(CoreError::Shape {
                            node: format!("Mul@{id}"),
                            detail: format!(
                                "{}x{} (tile {}) × {}x{} (tile {})",
                                ia.meta.rows,
                                ia.meta.cols,
                                ia.meta.tile_size,
                                ib.meta.rows,
                                ib.meta.cols,
                                ib.meta.tile_size
                            ),
                        });
                    }
                    NodeInfo {
                        meta: MatrixMeta::new(ia.meta.rows, ib.meta.cols, ia.meta.tile_size),
                        density: product_density(ia.density, ib.density, ia.meta.cols),
                        generated: false,
                    }
                }
                ExprNode::Elem(op, a, b) => {
                    let (ia, ib) = (
                        self.child_info(&info, *a, id)?,
                        self.child_info(&info, *b, id)?,
                    );
                    if ia.meta != ib.meta {
                        return Err(CoreError::Shape {
                            node: format!("Elem@{id}"),
                            detail: format!(
                                "{}x{} vs {}x{}",
                                ia.meta.rows, ia.meta.cols, ib.meta.rows, ib.meta.cols
                            ),
                        });
                    }
                    let density = match op {
                        ElemOp::Add | ElemOp::Sub => {
                            (ia.density + ib.density - ia.density * ib.density).min(1.0)
                        }
                        ElemOp::Mul => ia.density * ib.density,
                        ElemOp::Div => ia.density,
                    };
                    NodeInfo {
                        meta: ia.meta,
                        density,
                        generated: false,
                    }
                }
                ExprNode::Transpose(a) => {
                    let ia = self.child_info(&info, *a, id)?;
                    NodeInfo {
                        meta: ia.meta.transposed(),
                        density: ia.density,
                        generated: ia.generated,
                    }
                }
                ExprNode::Scale(a, factor) => {
                    let ia = self.child_info(&info, *a, id)?;
                    let density = if *factor == 0.0 { 0.0 } else { ia.density };
                    NodeInfo {
                        meta: ia.meta,
                        density,
                        generated: false,
                    }
                }
                ExprNode::Unary(_, a) => {
                    let ia = self.child_info(&info, *a, id)?;
                    NodeInfo {
                        meta: ia.meta,
                        density: ia.density,
                        generated: false,
                    }
                }
            };
            info.push(ni);
        }
        for (name, root) in &self.outputs {
            if *root >= self.nodes.len() {
                return Err(CoreError::Shape {
                    node: format!("output {name}"),
                    detail: format!("root id {root} out of range"),
                });
            }
        }
        Ok(info)
    }

    fn child_info<'a>(
        &self,
        info: &'a [NodeInfo],
        child: ExprId,
        parent: ExprId,
    ) -> Result<&'a NodeInfo> {
        info.get(child).ok_or_else(|| {
            CoreError::Invariant(format!("node {parent} references later node {child}"))
        })
    }

    /// Ids reachable from the outputs (live nodes), in ascending order.
    pub fn live_nodes(&self) -> Vec<ExprId> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<ExprId> = self.outputs.iter().map(|(_, id)| *id).collect();
        while let Some(id) = stack.pop() {
            if id >= live.len() || live[id] {
                continue;
            }
            live[id] = true;
            stack.extend(self.nodes[id].children());
        }
        (0..self.nodes.len()).filter(|&i| live[i]).collect()
    }

    /// Reference count of each node from live parents and outputs.
    pub fn ref_counts(&self) -> Vec<usize> {
        let live = self.live_nodes();
        let mut counts = vec![0usize; self.nodes.len()];
        for &id in &live {
            for c in self.nodes[id].children() {
                counts[c] += 1;
            }
        }
        for (_, id) in &self.outputs {
            counts[*id] += 1;
        }
        counts
    }

    /// Names of all inputs referenced by live nodes.
    pub fn input_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .live_nodes()
            .into_iter()
            .filter_map(|id| match &self.nodes[id] {
                ExprNode::Input(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

/// Estimated density of a product over a shared dimension of `l`
/// elements (independence assumption; matches
/// [`cumulon_matrix::Tile::mul`]'s phantom propagation).
pub fn product_density(da: f64, db: f64, l: usize) -> f64 {
    1.0 - (1.0 - da * db).powf(l.max(1) as f64)
}

/// Fluent builder for [`Program`]s.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    nodes: Vec<ExprNode>,
    outputs: Vec<(String, ExprId)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: ExprNode) -> ExprId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// References a named input matrix.
    pub fn input(&mut self, name: &str) -> ExprId {
        self.push(ExprNode::Input(name.to_string()))
    }

    /// `a × b`
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push(ExprNode::Mul(a, b))
    }

    /// `a (op) b` for any element-wise operator.
    pub fn elem(&mut self, op: ElemOp, a: ExprId, b: ExprId) -> ExprId {
        self.push(ExprNode::Elem(op, a, b))
    }

    /// `a + b`
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push(ExprNode::Elem(ElemOp::Add, a, b))
    }

    /// `a - b`
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push(ExprNode::Elem(ElemOp::Sub, a, b))
    }

    /// `a ⊙ b`
    pub fn elem_mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push(ExprNode::Elem(ElemOp::Mul, a, b))
    }

    /// `a ⊘ b`
    pub fn elem_div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push(ExprNode::Elem(ElemOp::Div, a, b))
    }

    /// `aᵀ`
    pub fn transpose(&mut self, a: ExprId) -> ExprId {
        self.push(ExprNode::Transpose(a))
    }

    /// `factor · a`
    pub fn scale(&mut self, a: ExprId, factor: f64) -> ExprId {
        self.push(ExprNode::Scale(a, factor))
    }

    /// Element-wise unary map.
    pub fn unary(&mut self, op: UnaryOp, a: ExprId) -> ExprId {
        self.push(ExprNode::Unary(op, a))
    }

    /// Chained product `m[0] × m[1] × …` (left-assoc; the chain rewrite
    /// re-associates it cost-optimally later).
    pub fn mul_chain(&mut self, ms: &[ExprId]) -> ExprId {
        assert!(!ms.is_empty(), "mul_chain needs at least one operand");
        let mut acc = ms[0];
        for &m in &ms[1..] {
            acc = self.mul(acc, m);
        }
        acc
    }

    /// Marks a node as a named output.
    pub fn output(&mut self, name: &str, id: ExprId) {
        self.outputs.push((name.to_string(), id));
    }

    /// Finalises the program.
    pub fn build(self) -> Program {
        Program {
            nodes: self.nodes,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert("A".into(), InputDesc::dense(MatrixMeta::new(100, 50, 10)));
        m.insert("B".into(), InputDesc::dense(MatrixMeta::new(50, 80, 10)));
        m.insert(
            "V".into(),
            InputDesc::sparse(MatrixMeta::new(100, 80, 10), 0.01),
        );
        m
    }

    #[test]
    fn builder_and_inference() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.mul(a, bb);
        b.output("C", c);
        let p = b.build();
        let info = p.infer(&inputs()).unwrap();
        assert_eq!(info[c].meta, MatrixMeta::new(100, 80, 10));
        assert_eq!(info[c].density, 1.0);
    }

    #[test]
    fn unknown_input_rejected() {
        let mut b = ProgramBuilder::new();
        let x = b.input("NOPE");
        b.output("X", x);
        assert!(matches!(
            b.build().infer(&inputs()),
            Err(CoreError::UnknownInput(_))
        ));
    }

    #[test]
    fn mul_shape_mismatch() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let v = b.input("V");
        let c = b.mul(a, v); // 100x50 × 100x80
        b.output("C", c);
        assert!(matches!(
            b.build().infer(&inputs()),
            Err(CoreError::Shape { .. })
        ));
    }

    #[test]
    fn elem_shape_mismatch() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let v = b.input("V");
        let c = b.add(a, v);
        b.output("C", c);
        assert!(b.build().infer(&inputs()).is_err());
    }

    #[test]
    fn transpose_inference() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let at = b.transpose(a);
        let g = b.mul(at, a); // A'A: 50x50
        b.output("G", g);
        let p = b.build();
        let info = p.infer(&inputs()).unwrap();
        assert_eq!(info[g].meta, MatrixMeta::new(50, 50, 10));
    }

    #[test]
    fn density_inference() {
        let mut b = ProgramBuilder::new();
        let v = b.input("V");
        let v2 = b.elem_mul(v, v);
        let s = b.add(v, v);
        let q = b.elem_div(v, v);
        let z = b.scale(v, 0.0);
        b.output("V2", v2);
        b.output("S", s);
        b.output("Q", q);
        b.output("Z", z);
        let p = b.build();
        let info = p.infer(&inputs()).unwrap();
        assert!((info[v2].density - 0.0001).abs() < 1e-12);
        assert!(info[s].density > 0.01 && info[s].density < 0.02);
        assert_eq!(info[q].density, 0.01);
        assert_eq!(info[z].density, 0.0);
    }

    #[test]
    fn product_density_extremes() {
        assert_eq!(product_density(1.0, 1.0, 50), 1.0);
        assert_eq!(product_density(0.0, 1.0, 50), 0.0);
        let d = product_density(0.01, 0.01, 10_000);
        assert!(d > 0.6, "long shared dimension densifies: {d}");
    }

    #[test]
    fn live_nodes_and_refcounts() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let dead = b.transpose(bb);
        let c = b.mul(a, bb);
        b.output("C", c);
        let p = b.build();
        let live = p.live_nodes();
        assert!(live.contains(&a) && live.contains(&bb) && live.contains(&c));
        assert!(!live.contains(&dead));
        let rc = p.ref_counts();
        assert_eq!(rc[a], 1);
        assert_eq!(rc[bb], 1, "dead transpose must not count");
        assert_eq!(rc[c], 1);
    }

    #[test]
    fn shared_node_refcount() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let at = b.transpose(a);
        let g = b.mul(at, a);
        b.output("G", g);
        let rc = b.build().ref_counts();
        assert_eq!(rc[a], 2, "A feeds both the transpose and the multiply");
    }

    #[test]
    fn mul_chain_left_assoc() {
        let mut b = ProgramBuilder::new();
        let xs: Vec<_> = ["A", "B", "B"].iter().map(|n| b.input(n)).collect();
        let chain = b.mul_chain(&xs);
        b.output("C", chain);
        let p = b.build();
        // ((A×B)×B): two Mul nodes.
        let muls = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Mul(_, _)))
            .count();
        assert_eq!(muls, 2);
        assert_eq!(p.node(chain).unwrap().children().len(), 2);
    }

    #[test]
    fn input_names_sorted_unique() {
        let mut b = ProgramBuilder::new();
        let a1 = b.input("B");
        let a2 = b.input("A");
        let a3 = b.input("B");
        let s = b.add(a1, a3);
        let c = b.mul(a2, s); // requires A: 100x50 × ... mismatch, but names don't need inference
        b.output("C", c);
        assert_eq!(b.build().input_names(), vec!["A", "B"]);
    }

    #[test]
    fn bad_expr_id() {
        let p = Program {
            nodes: vec![],
            outputs: vec![],
        };
        assert!(matches!(p.node(3), Err(CoreError::BadExprId(3))));
    }

    #[test]
    fn unary_ops_apply() {
        assert_eq!(UnaryOp::Abs.apply(-2.0), 2.0);
        assert_eq!(UnaryOp::Sqrt.apply(9.0), 3.0);
        assert_eq!(UnaryOp::Square.apply(3.0), 9.0);
        assert_eq!(UnaryOp::Square.name(), "square");
    }
}
