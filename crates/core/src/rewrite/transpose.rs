//! Transpose pushdown: after this pass, `Transpose` nodes appear only
//! directly above `Input` nodes, where the physical layer satisfies them
//! with transposed tile reads (no data movement at all).

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::expr::{ExprId, ExprNode, Program};

/// Pushes every transpose down to the input leaves.
pub fn push_down(program: &Program) -> Result<Program> {
    let mut out = Program::default();
    // Memoise on (node, transposed-context) so shared subtrees stay shared.
    let mut memo: HashMap<(ExprId, bool), ExprId> = HashMap::new();
    let mut outputs = Vec::with_capacity(program.outputs.len());
    for (name, root) in &program.outputs {
        let new_root = push(program, *root, false, &mut out, &mut memo)?;
        outputs.push((name.clone(), new_root));
    }
    out.outputs = outputs;
    Ok(out)
}

fn push(
    src: &Program,
    id: ExprId,
    transposed: bool,
    out: &mut Program,
    memo: &mut HashMap<(ExprId, bool), ExprId>,
) -> Result<ExprId> {
    if let Some(&done) = memo.get(&(id, transposed)) {
        return Ok(done);
    }
    let node = src.node(id)?.clone();
    let new_id = match node {
        ExprNode::Input(name) => {
            let input = push_node(out, ExprNode::Input(name));
            if transposed {
                push_node(out, ExprNode::Transpose(input))
            } else {
                input
            }
        }
        ExprNode::Transpose(a) => push(src, a, !transposed, out, memo)?,
        ExprNode::Mul(a, b) => {
            if transposed {
                // (AB)ᵀ = Bᵀ Aᵀ
                let bt = push(src, b, true, out, memo)?;
                let at = push(src, a, true, out, memo)?;
                push_node(out, ExprNode::Mul(bt, at))
            } else {
                let na = push(src, a, false, out, memo)?;
                let nb = push(src, b, false, out, memo)?;
                push_node(out, ExprNode::Mul(na, nb))
            }
        }
        ExprNode::Elem(op, a, b) => {
            let na = push(src, a, transposed, out, memo)?;
            let nb = push(src, b, transposed, out, memo)?;
            push_node(out, ExprNode::Elem(op, na, nb))
        }
        ExprNode::Scale(a, f) => {
            let na = push(src, a, transposed, out, memo)?;
            push_node(out, ExprNode::Scale(na, f))
        }
        ExprNode::Unary(op, a) => {
            let na = push(src, a, transposed, out, memo)?;
            push_node(out, ExprNode::Unary(op, na))
        }
    };
    memo.insert((id, transposed), new_id);
    Ok(new_id)
}

fn push_node(out: &mut Program, node: ExprNode) -> ExprId {
    out.nodes.push(node);
    out.nodes.len() - 1
}

/// Checks the pass' postcondition: every `Transpose` sits on an `Input`.
pub fn verify_normalized(program: &Program) -> Result<()> {
    for (id, node) in program.nodes.iter().enumerate() {
        if let ExprNode::Transpose(a) = node {
            if !matches!(program.node(*a)?, ExprNode::Input(_)) {
                return Err(CoreError::Invariant(format!(
                    "Transpose@{id} sits on non-input node {a}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{InputDesc, ProgramBuilder};
    use cumulon_matrix::MatrixMeta;
    use std::collections::BTreeMap;

    fn square_inputs() -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        for n in ["A", "B"] {
            m.insert(n.into(), InputDesc::dense(MatrixMeta::new(8, 8, 4)));
        }
        m
    }

    #[test]
    fn double_transpose_cancels() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let t1 = b.transpose(a);
        let t2 = b.transpose(t1);
        b.output("O", t2);
        let p = push_down(&b.build()).unwrap();
        verify_normalized(&p).unwrap();
        assert!(!p.nodes.iter().any(|n| matches!(n, ExprNode::Transpose(_))));
    }

    #[test]
    fn product_transpose_swaps_and_pushes() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let ab = b.mul(a, bb);
        let t = b.transpose(ab);
        b.output("O", t);
        let p = push_down(&b.build()).unwrap();
        verify_normalized(&p).unwrap();
        // Root must be Mul(Bᵀ, Aᵀ).
        let (_, root) = &p.outputs[0];
        let ExprNode::Mul(l, r) = p.node(*root).unwrap() else {
            panic!("root should be a Mul");
        };
        let ExprNode::Transpose(li) = p.node(*l).unwrap() else {
            panic!("left not transposed")
        };
        let ExprNode::Transpose(ri) = p.node(*r).unwrap() else {
            panic!("right not transposed")
        };
        assert_eq!(p.node(*li).unwrap(), &ExprNode::Input("B".into()));
        assert_eq!(p.node(*ri).unwrap(), &ExprNode::Input("A".into()));
    }

    #[test]
    fn elementwise_commutes_with_transpose() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let s = b.add(a, bb);
        let t = b.transpose(s);
        b.output("O", t);
        let p = push_down(&b.build()).unwrap();
        verify_normalized(&p).unwrap();
        let info = p.infer(&square_inputs()).unwrap();
        let (_, root) = &p.outputs[0];
        assert_eq!(info[*root].meta, MatrixMeta::new(8, 8, 4));
        // Transposes exist, but only on inputs.
        assert!(p.nodes.iter().any(|n| matches!(n, ExprNode::Transpose(_))));
    }

    #[test]
    fn semantics_preserved_under_inference() {
        // (Aᵀ (A B))ᵀ — shape-check before and after.
        let mut inputs = BTreeMap::new();
        inputs.insert("A".into(), InputDesc::dense(MatrixMeta::new(12, 8, 4)));
        inputs.insert("B".into(), InputDesc::dense(MatrixMeta::new(8, 6, 4)));
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let at = b.transpose(a);
        let ab = b.mul(a, bb); // 12x6
        let g = b.mul(at, ab); // 8x6
        let t = b.transpose(g); // 6x8
        b.output("O", t);
        let src = b.build();
        let src_info = src.infer(&inputs).unwrap();
        let (_, src_root) = &src.outputs[0];
        let p = push_down(&src).unwrap();
        verify_normalized(&p).unwrap();
        let info = p.infer(&inputs).unwrap();
        let (_, root) = &p.outputs[0];
        assert_eq!(info[*root].meta, src_info[*src_root].meta);
    }

    #[test]
    fn shared_subtrees_stay_shared() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let s = b.add(a, bb);
        let prod = b.mul(s, s);
        b.output("O", prod);
        let p = push_down(&b.build()).unwrap();
        // The Add node must appear exactly once (memoisation).
        let adds = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Elem(cumulon_matrix::tile::ElemOp::Add, _, _)))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn scale_and_unary_pass_through() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let sc = b.scale(a, 3.0);
        let u = b.unary(crate::expr::UnaryOp::Abs, sc);
        let t = b.transpose(u);
        b.output("O", t);
        let p = push_down(&b.build()).unwrap();
        verify_normalized(&p).unwrap();
        let (_, root) = &p.outputs[0];
        assert!(matches!(p.node(*root).unwrap(), ExprNode::Unary(_, _)));
    }

    #[test]
    fn verify_rejects_unnormalized() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let s = b.scale(a, 2.0);
        let t = b.transpose(s);
        b.output("O", t);
        assert!(verify_normalized(&b.build()).is_err());
    }
}
