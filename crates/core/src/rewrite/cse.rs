//! Common-subexpression elimination by hash-consing.
//!
//! GNMF-style update rules mention subexpressions like `WᵀW` several times;
//! computing each once saves whole jobs. The pass rebuilds the arena keying
//! each node on its variant, parameters, and (already-deduplicated)
//! children.

use std::collections::HashMap;

use cumulon_matrix::tile::ElemOp;

use crate::expr::{ExprId, ExprNode, Program, UnaryOp};

/// Structural key of a node (with f64 params keyed by bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Input(String),
    Mul(ExprId, ExprId),
    Elem(ElemOp, ExprId, ExprId),
    Transpose(ExprId),
    Scale(ExprId, u64),
    Unary(UnaryOp, ExprId),
}

/// Deduplicates structurally identical subexpressions and drops dead nodes.
pub fn eliminate(program: &Program) -> Program {
    let mut out = Program::default();
    let mut interned: HashMap<Key, ExprId> = HashMap::new();
    let mut remap: HashMap<ExprId, ExprId> = HashMap::new();

    // Only live nodes, in arena (= topological) order.
    for id in program.live_nodes() {
        let node = &program.nodes[id];
        let key = match node {
            ExprNode::Input(n) => Key::Input(n.clone()),
            ExprNode::Mul(a, b) => Key::Mul(remap[a], remap[b]),
            ExprNode::Elem(op, a, b) => Key::Elem(*op, remap[a], remap[b]),
            ExprNode::Transpose(a) => Key::Transpose(remap[a]),
            ExprNode::Scale(a, f) => Key::Scale(remap[a], f.to_bits()),
            ExprNode::Unary(op, a) => Key::Unary(*op, remap[a]),
        };
        let new_id = *interned.entry(key).or_insert_with(|| {
            let rebuilt = match node {
                ExprNode::Input(n) => ExprNode::Input(n.clone()),
                ExprNode::Mul(a, b) => ExprNode::Mul(remap[a], remap[b]),
                ExprNode::Elem(op, a, b) => ExprNode::Elem(*op, remap[a], remap[b]),
                ExprNode::Transpose(a) => ExprNode::Transpose(remap[a]),
                ExprNode::Scale(a, f) => ExprNode::Scale(remap[a], *f),
                ExprNode::Unary(op, a) => ExprNode::Unary(*op, remap[a]),
            };
            out.nodes.push(rebuilt);
            out.nodes.len() - 1
        });
        remap.insert(id, new_id);
    }
    out.outputs = program
        .outputs
        .iter()
        .map(|(name, root)| (name.clone(), remap[root]))
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ProgramBuilder;

    #[test]
    fn duplicate_inputs_merge() {
        let mut b = ProgramBuilder::new();
        let a1 = b.input("A");
        let a2 = b.input("A");
        let s = b.add(a1, a2);
        b.output("S", s);
        let p = eliminate(&b.build());
        let inputs = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Input(_)))
            .count();
        assert_eq!(inputs, 1);
        // The add now references the same child twice.
        let (_, root) = &p.outputs[0];
        let children = p.node(*root).unwrap().children();
        assert_eq!(children[0], children[1]);
    }

    #[test]
    fn structurally_equal_subtrees_merge() {
        // (AᵀA) ⊙ (AᵀA): the product must be computed once.
        let mut b = ProgramBuilder::new();
        let a1 = b.input("A");
        let t1 = b.transpose(a1);
        let g1 = b.mul(t1, a1);
        let a2 = b.input("A");
        let t2 = b.transpose(a2);
        let g2 = b.mul(t2, a2);
        let prod = b.elem_mul(g1, g2);
        b.output("P", prod);
        let p = eliminate(&b.build());
        let muls = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Mul(_, _)))
            .count();
        assert_eq!(muls, 1);
        assert_eq!(p.nodes.len(), 4); // Input, Transpose, Mul, Elem
    }

    #[test]
    fn different_scales_stay_distinct() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let s2 = b.scale(a, 2.0);
        let s3 = b.scale(a, 3.0);
        let sum = b.add(s2, s3);
        b.output("S", sum);
        let p = eliminate(&b.build());
        let scales = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Scale(_, _)))
            .count();
        assert_eq!(scales, 2);
    }

    #[test]
    fn identical_scales_merge() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let s2 = b.scale(a, 2.0);
        let s2b = b.scale(a, 2.0);
        let sum = b.add(s2, s2b);
        b.output("S", sum);
        let p = eliminate(&b.build());
        let scales = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Scale(_, _)))
            .count();
        assert_eq!(scales, 1);
    }

    #[test]
    fn dead_nodes_dropped() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let _dead = b.scale(a, 9.0);
        let keep = b.scale(a, 2.0);
        b.output("K", keep);
        let p = eliminate(&b.build());
        assert_eq!(p.nodes.len(), 2);
    }

    #[test]
    fn outputs_remapped() {
        let mut b = ProgramBuilder::new();
        let a1 = b.input("A");
        let a2 = b.input("A");
        b.output("X", a1);
        b.output("Y", a2);
        let p = eliminate(&b.build());
        assert_eq!(p.outputs[0].1, p.outputs[1].1);
    }

    #[test]
    fn noncommutative_order_respected() {
        // Mul(A,B) != Mul(B,A): must not merge.
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let ab = b.mul(a, bb);
        let ba = b.mul(bb, a);
        let s = b.add(ab, ba);
        b.output("S", s);
        let p = eliminate(&b.build());
        let muls = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Mul(_, _)))
            .count();
        assert_eq!(muls, 2);
    }
}
