//! Cost-based matrix-chain reordering.
//!
//! Maximal multiply chains (`M₁ × M₂ × … × Mₙ` where the intermediate
//! products are used nowhere else) are re-associated by the classic
//! O(n³) dynamic program — but weighted by a pluggable cost function, so
//! the deployment optimizer can re-run the DP under its fitted cost model
//! rather than raw flops (a flops-optimal order is not always
//! dollars-optimal once materialisation I/O and hourly billing enter).

use std::collections::{BTreeMap, HashMap};

use crate::error::{CoreError, Result};
use crate::expr::{product_density, ExprId, ExprNode, InputDesc, NodeInfo, Program};

/// Cost of multiplying an `m×k` (density `da`) by a `k×n` (density `db`)
/// matrix. Returns an abstract, additive cost.
pub type MulCostFn = dyn Fn(u64, u64, u64, f64, f64) -> f64;

/// Default cost: estimated flops (density-scaled GEMM) plus the bytes of
/// the materialised intermediate (weighted so I/O breaks flop ties).
pub fn flops_cost(m: u64, k: u64, n: u64, da: f64, db: f64) -> f64 {
    let eff = (da * db).clamp(1e-9, 1.0);
    2.0 * m as f64 * k as f64 * n as f64 * eff + 8.0 * m as f64 * n as f64
}

/// Re-associates every maximal multiply chain cost-optimally.
pub fn reorder(
    program: &Program,
    inputs: &BTreeMap<String, InputDesc>,
    cost: &MulCostFn,
) -> Result<Program> {
    let info = program.infer(inputs)?;
    let rc = program.ref_counts();
    let mut out = Program::default();
    let mut memo: HashMap<ExprId, ExprId> = HashMap::new();
    let mut outputs = Vec::with_capacity(program.outputs.len());
    for (name, root) in &program.outputs {
        let new_root = rebuild(program, &info, &rc, *root, &mut out, &mut memo, cost)?;
        outputs.push((name.clone(), new_root));
    }
    out.outputs = outputs;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn rebuild(
    src: &Program,
    info: &[NodeInfo],
    rc: &[usize],
    id: ExprId,
    out: &mut Program,
    memo: &mut HashMap<ExprId, ExprId>,
    cost: &MulCostFn,
) -> Result<ExprId> {
    if let Some(&done) = memo.get(&id) {
        return Ok(done);
    }
    let node = src.node(id)?.clone();
    let new_id = match node {
        ExprNode::Mul(_, _) => {
            // Flatten the maximal chain rooted here. The node being rebuilt
            // is by definition the root of its own chain (passing `false`
            // would make a shared Mul flatten to just itself and recurse
            // forever).
            let mut factors = Vec::new();
            collect_factors(src, rc, id, true, &mut factors)?;
            let rebuilt: Vec<ExprId> = factors
                .iter()
                .map(|&f| rebuild(src, info, rc, f, out, memo, cost))
                .collect::<Result<Vec<_>>>()?;
            if factors.len() < 3 {
                build_left_assoc(out, &rebuilt)
            } else {
                let stats: Vec<(u64, u64, f64)> = factors
                    .iter()
                    .map(|&f| {
                        (
                            info[f].meta.rows as u64,
                            info[f].meta.cols as u64,
                            info[f].density,
                        )
                    })
                    .collect();
                let order = optimal_order(&stats, cost);
                build_ordered(out, &rebuilt, &order, 0, factors.len() - 1)
            }
        }
        ExprNode::Input(name) => push_node(out, ExprNode::Input(name)),
        ExprNode::Transpose(a) => {
            let na = rebuild(src, info, rc, a, out, memo, cost)?;
            push_node(out, ExprNode::Transpose(na))
        }
        ExprNode::Elem(op, a, b) => {
            let na = rebuild(src, info, rc, a, out, memo, cost)?;
            let nb = rebuild(src, info, rc, b, out, memo, cost)?;
            push_node(out, ExprNode::Elem(op, na, nb))
        }
        ExprNode::Scale(a, f) => {
            let na = rebuild(src, info, rc, a, out, memo, cost)?;
            push_node(out, ExprNode::Scale(na, f))
        }
        ExprNode::Unary(op, a) => {
            let na = rebuild(src, info, rc, a, out, memo, cost)?;
            push_node(out, ExprNode::Unary(op, na))
        }
    };
    memo.insert(id, new_id);
    Ok(new_id)
}

/// Collects the chain's factors left-to-right. A `Mul` child is inlined
/// only when this chain is its sole consumer (`rc == 1`), so shared
/// intermediates keep their materialisation.
fn collect_factors(
    src: &Program,
    rc: &[usize],
    id: ExprId,
    is_chain_root: bool,
    factors: &mut Vec<ExprId>,
) -> Result<()> {
    match src.node(id)? {
        ExprNode::Mul(a, b) if is_chain_root || rc[id] == 1 => {
            collect_factors(src, rc, *a, false, factors)?;
            collect_factors(src, rc, *b, false, factors)?;
        }
        _ => factors.push(id),
    }
    Ok(())
}

fn push_node(out: &mut Program, node: ExprNode) -> ExprId {
    out.nodes.push(node);
    out.nodes.len() - 1
}

fn build_left_assoc(out: &mut Program, factors: &[ExprId]) -> ExprId {
    let mut acc = factors[0];
    for &f in &factors[1..] {
        acc = push_node(out, ExprNode::Mul(acc, f));
    }
    acc
}

/// DP split table: `order[i][j]` is the optimal split point of span `i..=j`.
struct Order {
    split: Vec<Vec<usize>>,
}

/// Runs the chain DP over `(rows, cols, density)` factor stats.
fn optimal_order(stats: &[(u64, u64, f64)], cost: &MulCostFn) -> Order {
    let n = stats.len();
    let mut best = vec![vec![0.0f64; n]; n];
    let mut dens = vec![vec![0.0f64; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for (i, s) in stats.iter().enumerate() {
        dens[i][i] = s.2;
    }
    for span in 2..=n {
        for i in 0..=n - span {
            let j = i + span - 1;
            best[i][j] = f64::INFINITY;
            for s in i..j {
                let (m, k, nn) = (stats[i].0, stats[s].1, stats[j].1);
                let c = best[i][s] + best[s + 1][j] + cost(m, k, nn, dens[i][s], dens[s + 1][j]);
                if c < best[i][j] {
                    best[i][j] = c;
                    split[i][j] = s;
                    dens[i][j] = product_density(dens[i][s], dens[s + 1][j], k as usize);
                }
            }
        }
    }
    Order { split }
}

fn build_ordered(
    out: &mut Program,
    factors: &[ExprId],
    order: &Order,
    i: usize,
    j: usize,
) -> ExprId {
    if i == j {
        return factors[i];
    }
    let s = order.split[i][j];
    let l = build_ordered(out, factors, order, i, s);
    let r = build_ordered(out, factors, order, s + 1, j);
    push_node(out, ExprNode::Mul(l, r))
}

/// Total cost of a program's multiplies under a cost function — used by
/// tests and the optimizer to compare orders.
pub fn program_mul_cost(
    program: &Program,
    inputs: &BTreeMap<String, InputDesc>,
    cost: &MulCostFn,
) -> Result<f64> {
    let info = program.infer(inputs)?;
    let mut total = 0.0;
    for id in program.live_nodes() {
        if let ExprNode::Mul(a, b) = program.node(id)? {
            let (ia, ib) = (&info[*a], &info[*b]);
            total += cost(
                ia.meta.rows as u64,
                ia.meta.cols as u64,
                ib.meta.cols as u64,
                ia.density,
                ib.density,
            );
        }
    }
    if total.is_infinite() {
        return Err(CoreError::Invariant("infinite chain cost".into()));
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ProgramBuilder;
    use cumulon_matrix::MatrixMeta;

    fn desc(rows: usize, cols: usize) -> InputDesc {
        InputDesc::dense(MatrixMeta::new(rows, cols, 10))
    }

    /// Classic example: A (10×1000), B (1000×10), C (10×1000).
    /// (AB)C costs 10·1000·10 + 10·10·1000 = 2e5 multiplications;
    /// A(BC) costs 1000·10·1000 + 10·1000·1000 = 2e7. DP must pick (AB)C.
    fn skewed_inputs() -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert("A".into(), desc(10, 1000));
        m.insert("B".into(), desc(1000, 10));
        m.insert("C".into(), desc(10, 1000));
        m
    }

    #[test]
    fn dp_beats_left_and_right_assoc() {
        let inputs = skewed_inputs();
        // Right-associated on purpose: A(BC).
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let bc = b.mul(bb, c);
        let abc = b.mul(a, bc);
        b.output("O", abc);
        let bad = b.build();
        let bad_cost = program_mul_cost(&bad, &inputs, &flops_cost).unwrap();

        let good = reorder(&bad, &inputs, &flops_cost).unwrap();
        let good_cost = program_mul_cost(&good, &inputs, &flops_cost).unwrap();
        assert!(
            good_cost < bad_cost / 10.0,
            "DP should be ≫ cheaper: {good_cost} vs {bad_cost}"
        );
        // Shape unchanged.
        let info = good.infer(&inputs).unwrap();
        let (_, root) = &good.outputs[0];
        assert_eq!((info[*root].meta.rows, info[*root].meta.cols), (10, 1000));
    }

    #[test]
    fn dp_matches_bruteforce_on_random_chains() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.random_range(3usize..6);
            let dims: Vec<u64> = (0..=n).map(|_| rng.random_range(1u64..40) * 10).collect();
            let stats: Vec<(u64, u64, f64)> = (0..n).map(|i| (dims[i], dims[i + 1], 1.0)).collect();
            let order = optimal_order(&stats, &flops_cost);
            let dp_cost = eval_order(&stats, &order, 0, n - 1).0;
            let brute = brute_force(&stats);
            assert!(
                (dp_cost - brute).abs() <= 1e-6 * brute.max(1.0),
                "dp {dp_cost} vs brute {brute} for dims {dims:?}"
            );
        }
    }

    /// Recomputes cost of a DP order (for cross-checking).
    fn eval_order(stats: &[(u64, u64, f64)], order: &Order, i: usize, j: usize) -> (f64, f64) {
        if i == j {
            return (0.0, stats[i].2);
        }
        let s = order.split[i][j];
        let (cl, dl) = eval_order(stats, order, i, s);
        let (cr, dr) = eval_order(stats, order, s + 1, j);
        let (m, k, n) = (stats[i].0, stats[s].1, stats[j].1);
        (
            cl + cr + flops_cost(m, k, n, dl, dr),
            product_density(dl, dr, k as usize),
        )
    }

    fn brute_force(stats: &[(u64, u64, f64)]) -> f64 {
        fn go(stats: &[(u64, u64, f64)], i: usize, j: usize) -> Vec<(f64, f64)> {
            if i == j {
                return vec![(0.0, stats[i].2)];
            }
            let mut results = Vec::new();
            for s in i..j {
                for &(cl, dl) in &go(stats, i, s) {
                    for &(cr, dr) in &go(stats, s + 1, j) {
                        let (m, k, n) = (stats[i].0, stats[s].1, stats[j].1);
                        results.push((
                            cl + cr + flops_cost(m, k, n, dl, dr),
                            product_density(dl, dr, k as usize),
                        ));
                    }
                }
            }
            results
        }
        go(stats, 0, stats.len() - 1)
            .into_iter()
            .map(|(c, _)| c)
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn two_factor_products_untouched() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let ab = b.mul(a, bb);
        b.output("O", ab);
        let mut inputs = BTreeMap::new();
        inputs.insert("A".into(), desc(10, 1000));
        inputs.insert("B".into(), desc(1000, 10));
        let p = reorder(&b.build(), &inputs, &flops_cost).unwrap();
        let muls = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Mul(_, _)))
            .count();
        assert_eq!(muls, 1);
    }

    #[test]
    fn shared_intermediate_not_inlined() {
        // G = A B is used twice; the chain (A B) C must not steal it.
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let g = b.mul(a, bb); // 10x10, used twice
        let gc = b.mul(g, c); // 10x1000
        b.output("G", g);
        b.output("GC", gc);
        let inputs = skewed_inputs();
        let p = reorder(&b.build(), &inputs, &flops_cost).unwrap();
        // G must remain its own Mul (2 muls total, no 3-way flattening).
        let muls = p
            .nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Mul(_, _)))
            .count();
        assert_eq!(muls, 2);
        // And both outputs still resolve.
        assert_eq!(p.outputs.len(), 2);
        p.infer(&inputs).unwrap();
    }

    #[test]
    fn density_aware_ordering() {
        // S is very sparse: multiplying through S first keeps intermediates
        // sparse and cheap. Dims symmetric so only density matters.
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "S".into(),
            InputDesc::sparse(MatrixMeta::new(100, 100, 10), 0.001),
        );
        inputs.insert("D1".into(), desc(100, 100));
        inputs.insert("D2".into(), desc(100, 100));
        let mut b = ProgramBuilder::new();
        let d1 = b.input("D1");
        let d2 = b.input("D2");
        let s = b.input("S");
        // D1 D2 S, left-assoc: dense D1·D2 first = expensive.
        let chain = b.mul_chain(&[d1, d2, s]);
        b.output("O", chain);
        let src = b.build();
        let before = program_mul_cost(&src, &inputs, &flops_cost).unwrap();
        let p = reorder(&src, &inputs, &flops_cost).unwrap();
        let after = program_mul_cost(&p, &inputs, &flops_cost).unwrap();
        assert!(
            after < before,
            "sparse-aware order should win: {after} vs {before}"
        );
    }

    #[test]
    fn longer_chain_five_factors() {
        let mut inputs = BTreeMap::new();
        let dims = [30usize, 350, 150, 50, 100, 400];
        for i in 0..5 {
            inputs.insert(format!("M{i}"), desc(dims[i], dims[i + 1]));
        }
        let mut b = ProgramBuilder::new();
        let ms: Vec<_> = (0..5).map(|i| b.input(&format!("M{i}"))).collect();
        let chain = b.mul_chain(&ms);
        b.output("O", chain);
        let src = b.build();
        let before = program_mul_cost(&src, &inputs, &flops_cost).unwrap();
        let p = reorder(&src, &inputs, &flops_cost).unwrap();
        let after = program_mul_cost(&p, &inputs, &flops_cost).unwrap();
        assert!(after <= before);
        let info = p.infer(&inputs).unwrap();
        let (_, root) = &p.outputs[0];
        assert_eq!((info[*root].meta.rows, info[*root].meta.cols), (30, 400));
    }
}
