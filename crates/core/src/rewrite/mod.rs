//! Logical rewrites over matrix programs.
//!
//! The standard pipeline runs, in order:
//!
//! 1. [`cse::eliminate`] — hash-consing common subexpressions, so shared
//!    intermediates (e.g. `WᵀW` appearing twice in a GNMF update) are
//!    computed once;
//! 2. [`chain::reorder`] — cost-based re-association of multiply chains.
//!
//! [`transpose::push_down`] (`(AB)ᵀ → BᵀAᵀ`, `(Aᵀ)ᵀ → A`) is available as
//! an optional pass but is *not* in the standard pipeline: the physical
//! planner satisfies `Transpose` of any materialised value with transposed
//! tile reads, and pushing transposes through shared subtrees would
//! duplicate their computation (e.g. GNMF uses both `H'` and `H'ᵀ`).

pub mod chain;
pub mod cse;
pub mod transpose;

use std::collections::BTreeMap;

use crate::error::Result;
use crate::expr::{InputDesc, Program};

/// Runs the standard rewrite pipeline with the flops-based chain cost.
pub fn standard_pipeline(
    program: &Program,
    inputs: &BTreeMap<String, InputDesc>,
) -> Result<Program> {
    let p = cse::eliminate(program);
    chain::reorder(&p, inputs, &chain::flops_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ProgramBuilder;
    use cumulon_matrix::MatrixMeta;

    #[test]
    fn pipeline_runs_end_to_end() {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let x = b.input("X");
        let y = b.input("Y");
        // ((A X) Y)ᵀ with a skewed chain: pipeline must push the transpose
        // and may re-associate the multiplies.
        let axy = b.mul_chain(&[a, x, y]);
        let out = b.transpose(axy);
        b.output("O", out);
        let program = b.build();

        let mut inputs = BTreeMap::new();
        inputs.insert("A".into(), InputDesc::dense(MatrixMeta::new(1000, 10, 10)));
        inputs.insert("X".into(), InputDesc::dense(MatrixMeta::new(10, 1000, 10)));
        inputs.insert("Y".into(), InputDesc::dense(MatrixMeta::new(1000, 10, 10)));

        let rewritten = standard_pipeline(&program, &inputs).unwrap();
        // Still infers cleanly and produces the transposed output shape.
        let info = rewritten.infer(&inputs).unwrap();
        let (_, root) = &rewritten.outputs[0];
        assert_eq!((info[*root].meta.rows, info[*root].meta.cols), (10, 1000));
    }
}
