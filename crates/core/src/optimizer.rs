//! The end-to-end facade: calibrate once, then optimize and execute matrix
//! programs with one object.

use std::collections::BTreeMap;

use cumulon_cluster::instances::InstanceType;
use cumulon_cluster::{Cluster, ClusterSpec, ExecMode, FailurePlan, RunReport, SchedulerConfig};

use crate::calibrate::{calibrate, CalibrationConfig, CostModel};
use crate::deploy::{Constraint, CostBasedChooser, DeploymentPlan, DeploymentSearch, SearchSpace};
use crate::error::{CoreError, Result};
use crate::estimate::{estimate_plan, ClusterView, PlanEstimate};
use crate::expr::{InputDesc, Program};
use crate::lower::{build_plan, instantiate};
use crate::recovery::{run_with_recovery_traced, RecoveryConfig};
use crate::rewrite;

/// The Cumulon optimizer: a fitted cost model plus planning entry points.
pub struct Optimizer {
    model: CostModel,
    replication: u32,
}

impl Optimizer {
    /// Wraps an existing cost model.
    pub fn new(model: CostModel) -> Self {
        Optimizer {
            model,
            replication: 3,
        }
    }

    /// Benchmarks the given instance types and fits models (the paper's
    /// offline calibration step).
    pub fn calibrated(instances: &[InstanceType]) -> Result<Self> {
        let model = calibrate(instances, &CalibrationConfig::default())?;
        Ok(Optimizer::new(model))
    }

    /// The fitted model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Mutable access to the fitted model — elastic drivers refit
    /// per-instance coefficients from traced samples mid-run and install
    /// them here (see `cumulon-workloads`' elastic driver).
    pub fn model_mut(&mut self) -> &mut CostModel {
        &mut self.model
    }

    /// Overrides the assumed replication factor.
    pub fn set_replication(&mut self, replication: u32) {
        self.replication = replication;
    }

    /// Runs the logical rewrite pipeline (pushdown → CSE → chain DP).
    pub fn rewrite(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
    ) -> Result<Program> {
        rewrite::standard_pipeline(program, inputs)
    }

    /// Finds the best deployment for a program under a constraint.
    pub fn optimize(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        mut space: SearchSpace,
        constraint: Constraint,
    ) -> Result<DeploymentPlan> {
        space.replication = self.replication;
        let program = self.rewrite(program, inputs)?;
        DeploymentSearch::new(&self.model, space).optimize(&program, inputs, constraint)
    }

    /// Finds the best deployment for an iterative workload: `iterations`
    /// back-to-back runs of the per-iteration program on one rented
    /// cluster, with the constraint covering the whole loop.
    pub fn optimize_iterative(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        iterations: usize,
        mut space: SearchSpace,
        constraint: Constraint,
    ) -> Result<DeploymentPlan> {
        space.replication = self.replication;
        let program = self.rewrite(program, inputs)?;
        DeploymentSearch::new(&self.model, space).optimize_repeated(
            &program,
            inputs,
            constraint,
            iterations.max(1),
        )
    }

    /// The (time, cost) skyline for a program.
    pub fn pareto(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        mut space: SearchSpace,
    ) -> Result<Vec<DeploymentPlan>> {
        space.replication = self.replication;
        let program = self.rewrite(program, inputs)?;
        DeploymentSearch::new(&self.model, space).pareto(&program, inputs)
    }

    /// Provisions a simulated cluster matching a deployment plan.
    pub fn provision(&self, plan: &DeploymentPlan) -> Result<Cluster> {
        let spec = ClusterSpec {
            instance: plan.instance,
            nodes: plan.nodes,
            slots_per_node: plan.slots,
        };
        Cluster::provision(spec).map_err(CoreError::from)
    }

    /// Estimates a program on an existing cluster (no search).
    pub fn estimate_on(
        &self,
        cluster: &Cluster,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
    ) -> Result<PlanEstimate> {
        let view = self.view_of(cluster)?;
        let program = self.rewrite(program, inputs)?;
        let coeffs = self.coeffs_for(&view)?;
        let chooser = CostBasedChooser { coeffs, view };
        let plan = build_plan(&program, inputs, &chooser, "est")?;
        estimate_plan(&plan, &view, &self.model)
    }

    /// Plans (with deployment-tuned parameters), instantiates and runs a
    /// program on an existing cluster. Inputs must already be registered in
    /// the cluster's tile store; outputs appear there after the run.
    ///
    /// `temp_prefix` namespaces intermediate matrices — pass a fresh prefix
    /// per call (e.g. the iteration number).
    pub fn execute_on(
        &self,
        cluster: &Cluster,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        temp_prefix: &str,
        mode: ExecMode,
    ) -> Result<RunReport> {
        self.execute_on_with(
            cluster,
            program,
            inputs,
            temp_prefix,
            mode,
            SchedulerConfig::default(),
            &FailurePlan::default(),
            RecoveryConfig::default(),
        )
    }

    /// Like [`Optimizer::execute_on`] with explicit scheduler
    /// configuration, failure injection, and recovery policy. Runs under
    /// lineage-based recovery: if a node death or block loss aborts the
    /// run, only the producing tasks of the lost tiles are re-executed
    /// (see [`crate::recovery`]). With no failures injected the recovery
    /// path is never entered and this costs nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_on_with(
        &self,
        cluster: &Cluster,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        temp_prefix: &str,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
        recovery: RecoveryConfig,
    ) -> Result<RunReport> {
        self.execute_on_traced(
            cluster,
            program,
            inputs,
            temp_prefix,
            mode,
            config,
            failures,
            recovery,
            &cumulon_trace::Trace::disabled(),
        )
    }

    /// Like [`Optimizer::execute_on_with`], recording every task attempt,
    /// job, fault event and recovery round of the execution into `trace`
    /// (see [`cumulon_trace`]). Tracing is observational only: results,
    /// outputs and the returned report are bitwise-identical whether the
    /// handle is enabled or disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_on_traced(
        &self,
        cluster: &Cluster,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        temp_prefix: &str,
        mode: ExecMode,
        config: SchedulerConfig,
        failures: &FailurePlan,
        recovery: RecoveryConfig,
        trace: &cumulon_trace::Trace,
    ) -> Result<RunReport> {
        let view = self.view_of(cluster)?;
        let program = self.rewrite(program, inputs)?;
        let coeffs = self.coeffs_for(&view)?;
        let chooser = CostBasedChooser { coeffs, view };
        let plan = build_plan(&program, inputs, &chooser, temp_prefix)?;
        let dag = instantiate(&plan, cluster.store())?;
        run_with_recovery_traced(
            cluster, &plan, &dag, mode, config, failures, recovery, trace,
        )
    }

    /// Builds the deployment-tuned physical plan
    /// [`Optimizer::execute_on`] would run on this cluster, without
    /// executing it. Elastic drivers use this to pair each traced job with
    /// its [`crate::estimate::job_features`] when refitting the cost model
    /// from a run's prefix.
    pub fn build_physical(
        &self,
        cluster: &Cluster,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        temp_prefix: &str,
    ) -> Result<(crate::physical::PhysPlan, ClusterView)> {
        let view = self.view_of(cluster)?;
        let program = self.rewrite(program, inputs)?;
        let coeffs = self.coeffs_for(&view)?;
        let chooser = CostBasedChooser { coeffs, view };
        let plan = build_plan(&program, inputs, &chooser, temp_prefix)?;
        Ok((plan, view))
    }

    /// Predicted phase breakdown and makespan for the plan
    /// [`Optimizer::execute_on`] would run on this cluster — the model
    /// side of a [`cumulon_trace::TraceLog::diff_against`] comparison
    /// with a traced run of the same program.
    pub fn predict_phases_on(
        &self,
        cluster: &Cluster,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
    ) -> Result<(cumulon_trace::PhaseBreakdown, f64)> {
        let view = self.view_of(cluster)?;
        let program = self.rewrite(program, inputs)?;
        let coeffs = self.coeffs_for(&view)?;
        let chooser = CostBasedChooser { coeffs, view };
        let plan = build_plan(&program, inputs, &chooser, "est")?;
        let phases = crate::estimate::predict_plan_phases(&plan, &view, &self.model)?;
        let est = estimate_plan(&plan, &view, &self.model)?;
        Ok((phases, est.makespan_s))
    }

    fn view_of(&self, cluster: &Cluster) -> Result<ClusterView> {
        let spec = cluster.spec();
        Ok(ClusterView {
            instance: spec.instance,
            nodes: spec.nodes,
            slots: spec.slots_per_node,
            replication: self.replication,
        })
    }

    fn coeffs_for(&self, view: &ClusterView) -> Result<crate::calibrate::OpCoefficients> {
        self.model
            .for_instance(view.instance.name)
            .copied()
            .ok_or_else(|| CoreError::Calibration(format!("no model for {}", view.instance.name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::OpCoefficients;
    use crate::expr::ProgramBuilder;
    use cumulon_cluster::instances::{by_name, catalog};
    use cumulon_matrix::gen::Generator;
    use cumulon_matrix::{LocalMatrix, MatrixMeta};

    fn idealized_optimizer() -> Optimizer {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        Optimizer::new(m)
    }

    #[test]
    fn optimize_then_execute_real() {
        let opt = idealized_optimizer();
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let at = b.transpose(a);
        let g = b.mul(at, a);
        b.output("G", g);
        let program = b.build();

        let meta = MatrixMeta::new(12, 8, 4);
        let mut inputs = BTreeMap::new();
        inputs.insert("A".into(), InputDesc::dense(meta));

        let plan = opt
            .optimize(
                &program,
                &inputs,
                SearchSpace::quick(),
                Constraint::Deadline(10_000.0),
            )
            .unwrap();
        let cluster = opt.provision(&plan).unwrap();
        let am = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform {
                seed: 1,
                lo: -1.0,
                hi: 1.0,
            },
        );
        cluster.store().put_local("A", &am).unwrap();
        let report = opt
            .execute_on(&cluster, &program, &inputs, "it0", ExecMode::Real)
            .unwrap();
        assert!(report.makespan_s > 0.0);
        let got = cluster.store().get_local("G").unwrap();
        let expect = am.transpose().matmul(&am).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
    }

    #[test]
    fn estimate_on_matches_execute_mode_roughly() {
        let opt = idealized_optimizer();
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let m = b.mul(a, a);
        b.output("A2", m);
        let program = b.build();
        let meta = MatrixMeta::new(6000, 6000, 1000);
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "A".into(),
            InputDesc {
                meta,
                density: 1.0,
                sparse: false,
                generated: true,
            },
        );

        let spec = ClusterSpec::named("c1.xlarge", 4, 8).unwrap();
        let cluster = Cluster::provision(spec).unwrap();
        cluster
            .store()
            .register_generated("A", meta, Generator::DenseGaussian { seed: 2 })
            .unwrap();
        let est = opt.estimate_on(&cluster, &program, &inputs).unwrap();
        let report = opt
            .execute_on(&cluster, &program, &inputs, "x", ExecMode::Simulated)
            .unwrap();
        let rel = (est.makespan_s - report.makespan_s).abs() / report.makespan_s;
        assert!(
            rel < 0.35,
            "estimate {} vs simulated {} (rel {rel})",
            est.makespan_s,
            report.makespan_s
        );
    }

    #[test]
    fn missing_model_for_instance_errors() {
        let opt = Optimizer::new(CostModel::default());
        let cluster = Cluster::provision(ClusterSpec::named("m1.small", 1, 1).unwrap()).unwrap();
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        b.output("O", a);
        let program = b.build();
        let mut inputs = BTreeMap::new();
        inputs.insert("A".into(), InputDesc::dense(MatrixMeta::new(4, 4, 4)));
        assert!(opt.estimate_on(&cluster, &program, &inputs).is_err());
        let _ = by_name("m1.small");
    }
}
