//! Cost-model calibration: benchmark the (simulated) hardware, fit
//! task-time models by least squares.
//!
//! This reproduces the paper's methodology: the optimizer's knowledge of
//! the hardware comes *only* from fitted coefficients, never from the
//! simulator's internals. For each instance type the calibrator runs a
//! battery of operator-shaped probe jobs across slot configurations,
//! measures task durations, and regresses
//!
//! ```text
//! t ≈ c₀ + c₁·(flops·max(1, S/cores)) + c₂·(local_read·S) + c₃·(remote_read·S)
//!        + c₄·(local_write·S) + c₅·(remote_write·S) + c₆·io_ops + c₇·(spill·S)
//! ```
//!
//! where `S` is the slot count — the contention-adjusted featurization that
//! makes coefficients valid across slot configurations. Straggler spread is
//! estimated from the fit residuals (`sigma`). A memory-pressure factor
//! with the framework's published form (demand over capacity, squared) is
//! applied to the I/O terms of both calibration features and predictions.
//!
//! `c₇` is the **disk-tier coefficient**: seconds per byte of out-of-core
//! spill traffic (the memory-budgeted tile plane re-reading demoted tiles
//! from local disk). The synthetic probe battery carries no spill
//! evidence — its column is identically zero, and the OLS solver pins such
//! columns to coefficient 0 instead of failing — so `c₇` is fit from a
//! *measured* host profile ([`SpillProfile::measure`] +
//! [`refit_disk_tier`]), the same keep-it-honest idiom as
//! [`refit_cpu_from_kernels`].

use std::collections::BTreeMap;

use cumulon_cluster::instances::InstanceType;
use cumulon_cluster::{Cluster, ClusterSpec, ExecMode, Job, JobDag, Task};
use cumulon_dfs::IoReceipt;
use cumulon_matrix::ops::Work;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::estimate::TaskFeatures;

/// Framework memory floor per slot, MB (matches the deployed stack).
pub const TASK_MEM_FLOOR_MB: f64 = 200.0;
/// Exponent of the memory-pressure penalty.
pub const MEM_PENALTY_EXP: f64 = 2.0;

/// Memory-pressure multiplier on I/O time for a task of `mem_mb` resident
/// MB when `slots` run concurrently on `instance`.
pub fn mem_penalty(instance: &InstanceType, slots: u32, mem_mb: f64) -> f64 {
    let demand = slots as f64 * (mem_mb + TASK_MEM_FLOOR_MB);
    let pressure = demand / instance.memory_mb as f64;
    if pressure > 1.0 {
        pressure.powf(MEM_PENALTY_EXP)
    } else {
        1.0
    }
}

/// Contention-adjusted feature vector `[1, cpu, lr, rr, lw, rw, ops, spill]`.
/// Spill traffic contends for the local disk like other I/O (slot-scaled)
/// but takes no memory-pressure penalty: spilling is the *response* to
/// pressure, not subject to it.
pub fn featurize(instance: &InstanceType, slots: u32, f: &TaskFeatures) -> [f64; 8] {
    let s = slots.max(1) as f64;
    let cpu_adj = (s / instance.cores as f64).max(1.0);
    let pen = mem_penalty(instance, slots, f.mem_mb);
    [
        1.0,
        f.flops * cpu_adj,
        f.local_read * s * pen,
        f.remote_read * s * pen,
        f.local_write * s * pen,
        f.remote_write * s * pen,
        f.io_ops,
        f.spill_bytes * s,
    ]
}

/// Fitted task-time coefficients for one instance type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCoefficients {
    /// `[c₀ … c₇]` over [`featurize`]'s features.
    pub c: [f64; 8],
    /// Fitted straggler spread (std of log residuals).
    pub sigma: f64,
}

impl OpCoefficients {
    /// Predicted task seconds.
    pub fn predict(&self, instance: &InstanceType, slots: u32, f: &TaskFeatures) -> f64 {
        let x = featurize(instance, slots, f);
        self.c
            .iter()
            .zip(x.iter())
            .map(|(c, x)| c * x)
            .sum::<f64>()
            .max(1e-6)
    }

    /// Closed-form coefficients from the spec sheet (used as a baseline in
    /// tests and for experiments that bypass calibration).
    pub fn idealized(instance: &InstanceType, startup_s: f64, cpu_efficiency: f64) -> Self {
        OpCoefficients {
            c: [
                startup_s,
                1.0 / (instance.gflops_per_core * 1e9 * cpu_efficiency),
                1.0 / (instance.disk_read_mbs * 1e6),
                1.0 / (instance.net_mbs * 1e6),
                1.0 / (instance.disk_write_mbs * 1e6),
                1.0 / (instance.net_mbs * 1e6),
                0.02,
                // Disk tier: a spilled byte comes back at local-disk read
                // rate (no network hop — blob segments are node-local).
                1.0 / (instance.disk_read_mbs * 1e6),
            ],
            sigma: 0.08,
        }
    }
}

/// A set of fitted models, keyed by instance-type name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    per_instance: BTreeMap<String, OpCoefficients>,
}

impl CostModel {
    /// Model with a single instance entry.
    pub fn single(instance: &str, coeffs: OpCoefficients) -> Self {
        let mut per_instance = BTreeMap::new();
        per_instance.insert(instance.to_string(), coeffs);
        CostModel { per_instance }
    }

    /// Inserts/overwrites an instance's coefficients.
    pub fn insert(&mut self, instance: &str, coeffs: OpCoefficients) {
        self.per_instance.insert(instance.to_string(), coeffs);
    }

    /// Coefficients for an instance type.
    pub fn for_instance(&self, instance: &str) -> Option<&OpCoefficients> {
        self.per_instance.get(instance)
    }

    /// Calibrated instance names.
    pub fn instances(&self) -> Vec<&str> {
        self.per_instance.keys().map(String::as_str).collect()
    }
}

/// Calibration settings.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// Nodes in the probe cluster.
    pub nodes: u32,
    /// Tasks per probe job (more = more samples per configuration).
    pub tasks_per_probe: usize,
    /// Seed so probes are reproducible.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            nodes: 2,
            tasks_per_probe: 10,
            seed: 0xca11,
        }
    }
}

/// One synthetic probe: the receipt its tasks will charge.
#[derive(Debug, Clone, Copy)]
struct Probe {
    flops: f64,
    local_read: f64,
    remote_read: f64,
    local_write: f64,
    remote_write: f64,
    io_ops: u64,
}

fn probe_battery() -> Vec<Probe> {
    let zero = Probe {
        flops: 0.0,
        local_read: 0.0,
        remote_read: 0.0,
        local_write: 0.0,
        remote_write: 0.0,
        io_ops: 0,
    };
    let mut probes = vec![zero];
    // Axis-aligned probes, sized so the probed resource dominates the
    // task-startup floor (otherwise the slope drowns in straggler noise).
    for &f in &[2e9, 8e9, 2e10] {
        probes.push(Probe { flops: f, ..zero });
    }
    for &b in &[2e8, 8e8] {
        probes.push(Probe {
            local_read: b,
            ..zero
        });
        probes.push(Probe {
            remote_read: b,
            ..zero
        });
        probes.push(Probe {
            local_write: b,
            ..zero
        });
        probes.push(Probe {
            remote_write: b,
            ..zero
        });
    }
    for &n in &[200u64, 800] {
        probes.push(Probe { io_ops: n, ..zero });
    }
    // Mixed, operator-shaped probes (a multiply and a fused job profile).
    probes.push(Probe {
        flops: 1.6e9,
        local_read: 2.4e8,
        remote_read: 8e7,
        local_write: 8e7,
        remote_write: 1.6e8,
        io_ops: 48,
    });
    probes.push(Probe {
        flops: 1e8,
        local_read: 1.6e8,
        remote_read: 1.6e8,
        local_write: 1.6e8,
        remote_write: 3.2e8,
        io_ops: 96,
    });
    probes
}

/// Runs the probe battery on one instance type, returning fitted
/// coefficients.
pub fn calibrate_instance(
    instance: &InstanceType,
    config: &CalibrationConfig,
) -> Result<OpCoefficients> {
    let mut xs: Vec<[f64; 8]> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let slot_options = {
        let mut v = vec![1u32, instance.cores];
        v.dedup();
        v
    };
    for &slots in &slot_options {
        let spec = ClusterSpec {
            instance: *instance,
            nodes: config.nodes,
            slots_per_node: slots,
        };
        // Distinct straggler-noise seed per configuration: otherwise the
        // same few noise draws repeat across configurations and bias the
        // fit instead of averaging out.
        let mut hw = cumulon_cluster::HardwareModel::default();
        let name_hash: u64 = instance
            .name
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        hw.noise =
            cumulon_cluster::NoiseModel::standard(config.seed ^ ((slots as u64) << 32) ^ name_hash);
        let cluster = Cluster::provision_with(spec, hw, cumulon_dfs::DfsConfig::default())
            .map_err(CoreError::from)?;
        let mut dag = JobDag::new();
        for probe in probe_battery() {
            let tasks = (0..config.tasks_per_probe)
                .map(|_| {
                    Task::new(move |ctx| {
                        ctx.charge(Work {
                            flops: probe.flops,
                            bytes_in: 0.0,
                            bytes_out: 0.0,
                        });
                        ctx.charge_read_io(IoReceipt {
                            bytes: (probe.local_read + probe.remote_read) as u64,
                            local_bytes: probe.local_read as u64,
                            remote_bytes: probe.remote_read as u64,
                        });
                        ctx.charge_write_io(IoReceipt {
                            bytes: (probe.local_write + probe.remote_write) as u64,
                            local_bytes: probe.local_write as u64,
                            remote_bytes: probe.remote_write as u64,
                        });
                        ctx.charge_io_ops(probe.io_ops);
                        Ok(())
                    })
                })
                .collect();
            dag.push(
                Job::new(format!("probe{}", dag.jobs.len()), "probe", tasks),
                vec![],
            );
        }
        let report = cluster
            .run(&dag, ExecMode::Simulated)
            .map_err(CoreError::from)?;
        // Jobs complete in arbitrary order; match stats back by name.
        for (idx, probe) in probe_battery().into_iter().enumerate() {
            let job_stats = report
                .job(&format!("probe{idx}"))
                .ok_or_else(|| CoreError::Calibration(format!("probe{idx} missing from report")))?;
            let features = TaskFeatures {
                flops: probe.flops,
                local_read: probe.local_read,
                remote_read: probe.remote_read,
                local_write: probe.local_write,
                remote_write: probe.remote_write,
                mem_mb: 0.0,
                io_ops: probe.io_ops as f64,
                // No spill evidence in the synthetic battery: the column
                // is identically zero and `ols` pins c₇ to 0. The disk
                // tier is fit from a measured profile (`refit_disk_tier`).
                spill_bytes: 0.0,
            };
            let x = featurize(instance, slots, &features);
            for t in &job_stats.tasks {
                xs.push(x);
                ys.push(t.duration_s());
            }
        }
    }
    fit_samples(&xs, &ys)
}

/// Fits [`OpCoefficients`] from pre-featurized samples: `xs` are
/// [`featurize`] rows and `ys` the observed task durations in seconds.
/// This is the regression core of [`calibrate_instance`], exposed so
/// profiles harvested from *traced runs* (task spans from a
/// [`cumulon_trace::TraceLog`] paired with their plan's analytic
/// features) can refine a model without re-running the synthetic probe
/// battery. Straggler `sigma` is estimated from the log-residuals of the
/// fit. Needs at least 7 samples spanning the feature space; degenerate
/// designs return [`CoreError::Calibration`].
pub fn fit_samples(xs: &[[f64; 8]], ys: &[f64]) -> Result<OpCoefficients> {
    let c = ols(xs, ys)?;
    // Residual spread → straggler sigma.
    let mut sq = 0.0;
    let mut n = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let pred: f64 = c.iter().zip(x.iter()).map(|(c, x)| c * x).sum();
        if pred > 1e-9 && *y > 0.0 {
            let r = (y / pred).ln();
            sq += r * r;
            n += 1.0;
        }
    }
    let sigma = if n > 0.0 { (sq / n).sqrt() } else { 0.0 };
    Ok(OpCoefficients { c, sigma })
}

/// Calibrates a set of instance types.
pub fn calibrate(instances: &[InstanceType], config: &CalibrationConfig) -> Result<CostModel> {
    let mut model = CostModel::default();
    for instance in instances {
        let coeffs = calibrate_instance(instance, config)?;
        model.insert(instance.name, coeffs);
    }
    Ok(model)
}

// ---------------------------------------------------------------------------
// Host kernel profiling — keeping the CPU coefficient honest
// ---------------------------------------------------------------------------

/// One wall-clock-timed run of a production tile kernel on this host.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelSample {
    /// Which kernel ran (`"gemm_packed"`, `"spmm"`, `"gemm_ds"`).
    pub kernel: &'static str,
    /// Problem size (square dimension / dense side).
    pub n: usize,
    /// Exact flops the run performed.
    pub flops: f64,
    /// Best-of-reps wall-clock seconds.
    pub seconds: f64,
}

impl KernelSample {
    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops / self.seconds / 1e9
    }
}

/// Wall-clock profile of the production tile kernels on the current
/// host, used to re-fit the cost model's CPU coefficients so
/// [`crate::estimate`]'s flop rates track what the kernels actually
/// achieve (see [`refit_cpu_from_kernels`]). A cost model seeded from
/// spec-sheet rates ([`OpCoefficients::idealized`]) silently goes stale
/// every time the kernels change speed; the whole optimizer inherits the
/// error.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// SIMD clone the dense kernel dispatched to (host-dependent).
    pub simd_level: &'static str,
    /// Individual timed runs, dense and sparse.
    pub samples: Vec<KernelSample>,
}

impl KernelProfile {
    /// Times the production kernels on this host: the packed dense GEMM
    /// at several tile sizes plus the optimized sparse kernels. Each
    /// sample is best-of-`reps` to shed scheduler noise. `quick` trims
    /// the battery for CI budgets.
    pub fn measure(quick: bool) -> KernelProfile {
        use cumulon_matrix::{gen, DenseTile};
        use std::time::Instant;

        let mut samples = Vec::new();
        let (sizes, reps): (&[usize], usize) = if quick {
            (&[192, 256], 2)
        } else {
            (&[128, 192, 256, 512], 3)
        };
        for &n in sizes {
            let a = gen::dense_uniform_tile(3, 0, 0, n, n, -1.0, 1.0);
            let b = gen::dense_uniform_tile(5, 0, 0, n, n, -1.0, 1.0);
            let mut c = DenseTile::zeros(n, n);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                DenseTile::gemm_acc_packed(&mut c, &a, &b).expect("square gemm");
                best = best.min(t0.elapsed().as_secs_f64());
            }
            samples.push(KernelSample {
                kernel: "gemm_packed",
                n,
                flops: 2.0 * (n as f64).powi(3),
                seconds: best,
            });
        }
        // Sparse kernels: flops scale with nnz, not n³.
        let (l, n, density) = (512usize, 256usize, 0.05f64);
        let s = gen::sparse_uniform_tile(7, 0, 0, l, l, density);
        let b = gen::dense_uniform_tile(9, 0, 0, l, n, -1.0, 1.0);
        let mut c = DenseTile::zeros(l, n);
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(2) {
            let t0 = Instant::now();
            s.spmm_acc(&mut c, &b).expect("spmm shapes");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        samples.push(KernelSample {
            kernel: "spmm",
            n: l,
            flops: 2.0 * s.nnz() as f64 * n as f64,
            seconds: best,
        });
        let a = gen::dense_uniform_tile(11, 0, 0, n, l, -1.0, 1.0);
        let mut c = DenseTile::zeros(n, l);
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(2) {
            let t0 = Instant::now();
            s.gemm_ds_acc(&mut c, &a).expect("gemm-ds shapes");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        samples.push(KernelSample {
            kernel: "gemm_ds",
            n: l,
            flops: 2.0 * s.nnz() as f64 * n as f64,
            seconds: best,
        });
        KernelProfile {
            simd_level: cumulon_matrix::simd_level().name(),
            samples,
        }
    }

    /// Best dense-GEMM rate achieved, GFLOP/s.
    pub fn dense_gflops(&self) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.kernel == "gemm_packed")
            .map(KernelSample::gflops)
            .fold(0.0, f64::max)
    }
}

/// Re-fits an instance's CPU coefficients from a measured
/// [`KernelProfile`], via [`fit_samples`] on a prior-anchored design:
///
/// * each *dense* kernel sample becomes a pure-compute row — features
///   `[1, flops, 0, …]` at one uncontended slot — labelled
///   `startup + measured seconds` (the base model's intercept `c₀` *is*
///   task startup, which a raw kernel timing doesn't include). Sparse
///   samples are profiled but excluded from the regression: they retire
///   flops at a memory-bound rate, and mixing them into the shared
///   flops column flattens the slope (small-flops/large-seconds rows
///   drag the implied marginal rate far above anything measured);
/// * the base model labels one anchor row per remaining feature
///   direction (the [`run_elastic`](cumulon_cluster::Cluster) refit
///   idiom), so I/O and startup coefficients keep their fitted values
///   where the profile has no evidence.
///
/// The result: `c₁` tracks the *measured* kernel flop rate while
/// everything else agrees with `base`. Straggler `sigma` keeps the base
/// value (a profile of best-of-reps timings carries no straggler
/// information).
pub fn refit_cpu_from_kernels(
    base: &OpCoefficients,
    instance: &InstanceType,
    profile: &KernelProfile,
) -> Result<OpCoefficients> {
    let mut xs: Vec<[f64; 8]> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in profile.samples.iter().filter(|s| s.kernel == "gemm_packed") {
        let f = TaskFeatures {
            flops: s.flops,
            ..Default::default()
        };
        xs.push(featurize(instance, 1, &f));
        ys.push(base.c[0] + s.seconds);
    }
    if xs.is_empty() {
        return Err(CoreError::Calibration(
            "kernel profile has no dense gemm samples".into(),
        ));
    }
    // Anchor rows: one dominant direction each, labelled by the base
    // model so the fit stays full-rank and agrees with `base` off the
    // CPU axis.
    // Zero flops in every anchor: the kernel samples alone identify the
    // CPU column, so anchors and samples never disagree about it.
    let anchor = |f: TaskFeatures| (featurize(instance, 1, &f), base.predict(instance, 1, &f));
    let base_f = TaskFeatures {
        flops: 0.0,
        local_read: 1e6,
        remote_read: 1e6,
        local_write: 1e6,
        remote_write: 1e6,
        mem_mb: 8.0,
        io_ops: 4.0,
        spill_bytes: 1e6,
    };
    let mut anchors = vec![base_f];
    for i in 0..6 {
        let mut f = base_f;
        match i {
            0 => f.local_read = 4e8,
            1 => f.remote_read = 4e8,
            2 => f.local_write = 4e8,
            3 => f.remote_write = 4e8,
            4 => f.io_ops = 512.0,
            // Disk-tier anchor: keeps the refit full-rank on c₇ and
            // agreeing with `base` where the kernel profile is silent.
            _ => f.spill_bytes = 4e8,
        }
        anchors.push(f);
    }
    for f in anchors {
        let (x, y) = anchor(f);
        xs.push(x);
        ys.push(y);
    }
    let fitted = fit_samples(&xs, &ys)?;
    Ok(OpCoefficients {
        sigma: base.sigma,
        ..fitted
    })
}

// ---------------------------------------------------------------------------
// Host spill-tier profiling — keeping the disk coefficient honest
// ---------------------------------------------------------------------------

/// Wall-clock-timed round-trip through the out-of-core blob store on this
/// host: how fast spilled tiles actually come back from local disk. The
/// synthetic probe battery carries no spill evidence (its c₇ column is
/// identically zero and the OLS solver pins the coefficient to 0), so this
/// measured profile is what gives the cost model a disk tier — the same
/// keep-it-honest idiom as [`KernelProfile`] for the CPU coefficient.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpillProfile {
    /// Payload bytes pushed through the store.
    pub bytes: u64,
    /// Seconds spent appending (demotion path).
    pub write_s: f64,
    /// Seconds spent reading back (re-admission path).
    pub read_s: f64,
}

impl SpillProfile {
    /// Measures blob-segment round-trip throughput with incompressible
    /// payloads stored raw (compression would measure the codec, not the
    /// disk). `quick` trims the volume for CI budgets. Best-of-2 on each
    /// direction to shed scheduler noise.
    pub fn measure(quick: bool) -> Result<SpillProfile> {
        use cumulon_dfs::blob::{BlobKey, BlobStore};
        use cumulon_matrix::compress::Codec;
        use std::time::Instant;

        let (entry_bytes, entries) = if quick { (1 << 20, 8) } else { (4 << 20, 16) };
        // Incompressible deterministic payload (LCG bytes).
        let mut payload = vec![0u8; entry_bytes];
        let mut state = 0x9e3779b97f4a7c15u64;
        for b in payload.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        let dir = std::env::temp_dir().join(format!("cumulon-spill-probe-{}", std::process::id()));
        let mut best_write = f64::INFINITY;
        let mut best_read = f64::INFINITY;
        for _rep in 0..2 {
            let mut store = BlobStore::open(dir.clone())
                .map_err(|e| CoreError::Calibration(format!("spill probe: {e}")))?;
            let keys: Vec<BlobKey> = (0..entries)
                .map(|i| {
                    payload[0] = i as u8; // distinct content per entry
                    BlobKey::digest(&payload)
                })
                .collect();
            let t0 = Instant::now();
            for (i, &key) in keys.iter().enumerate() {
                payload[0] = i as u8;
                store
                    .put(key, Codec::Raw, &payload, entry_bytes as u32)
                    .map_err(|e| CoreError::Calibration(format!("spill probe put: {e}")))?;
            }
            best_write = best_write.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for &key in &keys {
                let (_, data, _) = store
                    .get(key)
                    .map_err(|e| CoreError::Calibration(format!("spill probe get: {e}")))?;
                std::hint::black_box(&data);
            }
            best_read = best_read.min(t0.elapsed().as_secs_f64());
            // Dropping the store removes the probe directory.
        }
        Ok(SpillProfile {
            bytes: (entry_bytes * entries) as u64,
            write_s: best_write,
            read_s: best_read,
        })
    }

    /// Measured re-admission throughput, bytes/second.
    pub fn readback_bps(&self) -> f64 {
        self.bytes as f64 / self.read_s.max(1e-9)
    }

    /// Measured demotion throughput, bytes/second.
    pub fn writeback_bps(&self) -> f64 {
        self.bytes as f64 / self.write_s.max(1e-9)
    }
}

/// Re-fits the disk-tier coefficient `c₇` from a measured
/// [`SpillProfile`]: a spilled byte costs one re-read at the measured
/// blob-store readback rate. Every other coefficient and `sigma` keep
/// their values from `base` — the profile carries no evidence about them.
pub fn refit_disk_tier(base: &OpCoefficients, profile: &SpillProfile) -> OpCoefficients {
    let mut c = base.c;
    c[7] = 1.0 / profile.readback_bps();
    OpCoefficients {
        c,
        sigma: base.sigma,
    }
}

/// Ordinary least squares via normal equations + Gaussian elimination.
// Index loops: the elimination updates aug[row][k] from aug[col][k], a
// split borrow iterators can't express cleanly.
#[allow(clippy::needless_range_loop)]
fn ols(xs: &[[f64; 8]], ys: &[f64]) -> Result<[f64; 8]> {
    const D: usize = 8;
    // Only columns with any evidence need identifying; zero columns are
    // pinned to coefficient 0 below, not estimated.
    let active = (0..D).filter(|&j| xs.iter().any(|x| x[j] != 0.0)).count();
    if xs.len() < active {
        return Err(CoreError::Calibration(format!(
            "only {} samples for {active} active coefficients",
            xs.len()
        )));
    }
    // Normal equations: A = XᵀX (D×D), b = Xᵀy.
    let mut a = [[0.0f64; D]; D];
    let mut b = [0.0f64; D];
    for (x, y) in xs.iter().zip(ys.iter()) {
        for i in 0..D {
            b[i] += x[i] * y;
            for j in 0..D {
                a[i][j] += x[i] * x[j];
            }
        }
    }
    // A feature that is identically zero in every sample (e.g. spill
    // traffic in the synthetic probe battery) carries no evidence: its
    // row/column of XᵀX is all zeros, and `b` is zero there too. Pin the
    // coefficient to exactly 0 by putting a 1 on the diagonal — the
    // system becomes block-diagonal in that column and solves to 0 —
    // instead of reporting a singular matrix. Genuinely collinear designs
    // (nonzero but dependent columns) still fail the pivot check below.
    for j in 0..D {
        if a[j][j] == 0.0 {
            a[j][j] = 1.0;
        }
    }
    // Scale columns for conditioning (features span ~10 orders).
    let mut scale = [1.0f64; D];
    for (j, s) in scale.iter_mut().enumerate() {
        let m = a[j][j].sqrt();
        if m > 0.0 {
            *s = 1.0 / m;
        }
    }
    for i in 0..D {
        for j in 0..D {
            a[i][j] *= scale[i] * scale[j];
        }
        b[i] *= scale[i];
    }
    // Gaussian elimination with partial pivoting.
    let mut aug = [[0.0f64; D + 1]; D];
    for i in 0..D {
        aug[i][..D].copy_from_slice(&a[i]);
        aug[i][D] = b[i];
    }
    for col in 0..D {
        let (pivot, max) = (col..D)
            .map(|r| (r, aug[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("no NaN"))
            .expect("non-empty");
        if max < 1e-12 {
            return Err(CoreError::Calibration(format!(
                "singular normal matrix at column {col}"
            )));
        }
        aug.swap(col, pivot);
        for row in 0..D {
            if row == col {
                continue;
            }
            let f = aug[row][col] / aug[col][col];
            for k in col..=D {
                aug[row][k] -= f * aug[col][k];
            }
        }
    }
    let mut c = [0.0f64; D];
    for i in 0..D {
        c[i] = aug[i][D] / aug[i][i] * scale[i];
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_cluster::instances::by_name;

    #[test]
    fn ols_recovers_exact_coefficients() {
        let truth = [2.0, 3.0, -1.0, 0.5, 4.0, 0.0, 1.5, -0.25];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        // Deterministic pseudo-random design.
        let mut state = 1u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..100 {
            let x = [1.0, next(), next(), next(), next(), next(), next(), next()];
            let y: f64 = truth.iter().zip(x.iter()).map(|(c, x)| c * x).sum();
            xs.push(x);
            ys.push(y);
        }
        let c = ols(&xs, &ys).unwrap();
        for (got, want) in c.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 1e-8, "{c:?}");
        }
    }

    #[test]
    fn fit_samples_recovers_exact_model_with_zero_sigma() {
        let truth = [2.0, 3.0, -1.0, 0.5, 4.0, 0.0, 1.5, -0.25];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) + 0.1
        };
        for _ in 0..60 {
            let x = [1.0, next(), next(), next(), next(), next(), next(), next()];
            let y: f64 = truth.iter().zip(x.iter()).map(|(c, x)| c * x).sum();
            xs.push(x);
            ys.push(y);
        }
        let fit = fit_samples(&xs, &ys).unwrap();
        for (got, want) in fit.c.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 1e-8, "{:?}", fit.c);
        }
        assert!(fit.sigma < 1e-6, "noise-free fit: sigma {}", fit.sigma);
    }

    #[test]
    fn ols_rejects_underdetermined() {
        assert!(ols(&[[1.0; 8]; 3], &[1.0, 2.0, 3.0]).is_err());
        // Degenerate (all-identical rows) is singular.
        assert!(ols(&[[1.0; 8]; 20], &[1.0; 20]).is_err());
    }

    #[test]
    fn refit_tracks_measured_kernel_rate() {
        let t = by_name("m1.large").unwrap();
        let base = OpCoefficients::idealized(&t, 2.0, 0.85);
        // Synthetic profile: kernels running at exactly 25 GFLOP/s.
        let rate = 25e9;
        let mut samples: Vec<KernelSample> = [128usize, 192, 256, 512]
            .iter()
            .map(|&n| {
                let flops = 2.0 * (n as f64).powi(3);
                KernelSample {
                    kernel: "gemm_packed",
                    n,
                    flops,
                    seconds: flops / rate,
                }
            })
            .collect();
        // A memory-bound sparse sample at 4 GFLOP/s must not drag the
        // dense marginal rate (it is excluded from the regression).
        samples.push(KernelSample {
            kernel: "spmm",
            n: 512,
            flops: 1.3e7,
            seconds: 1.3e7 / 4e9,
        });
        let profile = KernelProfile {
            simd_level: "test",
            samples,
        };
        let fit = refit_cpu_from_kernels(&base, &t, &profile).unwrap();
        // The CPU coefficient now implies the measured rate...
        let implied = 1.0 / (fit.c[1] * rate);
        assert!((implied - 1.0).abs() < 0.01, "implied/measured {implied}");
        // ...while startup and I/O coefficients still agree with base.
        assert!((fit.c[0] - base.c[0]).abs() < 0.01 * base.c[0].abs());
        for i in 2..8 {
            let rel = (fit.c[i] - base.c[i]).abs() / base.c[i].abs().max(1e-15);
            assert!(rel < 0.01, "coefficient {i}: {} vs {}", fit.c[i], base.c[i]);
        }
        // Best-of-reps timings carry no straggler signal: sigma is kept.
        assert_eq!(fit.sigma, base.sigma);
    }

    #[test]
    fn kernel_profile_measures_real_kernels() {
        let p = KernelProfile::measure(true);
        assert!(!p.simd_level.is_empty());
        assert!(p.samples.len() >= 4, "{} samples", p.samples.len());
        for s in &p.samples {
            assert!(s.seconds > 0.0 && s.flops > 0.0, "{s:?}");
        }
        assert!(p.dense_gflops() > 0.1, "dense rate {}", p.dense_gflops());
    }

    #[test]
    fn mem_penalty_kicks_in_over_capacity() {
        let t = by_name("c1.medium").unwrap(); // 1.7 GB
        assert_eq!(mem_penalty(&t, 2, 100.0), 1.0);
        let p = mem_penalty(&t, 2, 3_000.0);
        assert!(p > 10.0, "penalty {p}");
    }

    #[test]
    fn featurize_contention() {
        let t = by_name("m1.large").unwrap(); // 2 cores
        let f = TaskFeatures {
            flops: 1e9,
            local_read: 1e8,
            ..Default::default()
        };
        let x1 = featurize(&t, 1, &f);
        let x4 = featurize(&t, 4, &f);
        assert_eq!(x1[1], 1e9);
        assert_eq!(x4[1], 2e9, "4 slots on 2 cores doubles cpu feature");
        assert_eq!(x1[2], 1e8);
        assert_eq!(x4[2], 4e8, "disk share scales with slots");
    }

    #[test]
    fn calibration_fits_the_hardware() {
        let instance = by_name("m1.large").unwrap();
        let coeffs = calibrate_instance(&instance, &CalibrationConfig::default()).unwrap();
        // Compare with the closed-form (hardware-truth) coefficients. The
        // probe battery never spills, so the disk-tier column is pinned to
        // zero by the fit (c₇ comes from `refit_disk_tier` instead).
        let ideal = OpCoefficients::idealized(&instance, 2.0, 0.85);
        for (i, (got, want)) in coeffs.c.iter().zip(ideal.c.iter()).enumerate().take(7) {
            let rel = (got - want).abs() / want.abs().max(1e-12);
            assert!(rel < 0.15, "coef {i}: got {got}, want {want} (rel {rel})");
        }
        assert_eq!(coeffs.c[7], 0.0, "no spill evidence in the probe battery");
        // Straggler sigma recovered near the simulator's 0.08.
        assert!((coeffs.sigma - 0.08).abs() < 0.04, "sigma {}", coeffs.sigma);
    }

    #[test]
    fn calibrated_model_predicts_probe_times() {
        let instance = by_name("c1.xlarge").unwrap();
        let coeffs = calibrate_instance(&instance, &CalibrationConfig::default()).unwrap();
        let f = TaskFeatures {
            flops: 3e9,
            local_read: 2e8,
            remote_read: 1e8,
            local_write: 1e8,
            remote_write: 2e8,
            mem_mb: 100.0,
            io_ops: 64.0,
            spill_bytes: 0.0,
        };
        let pred = coeffs.predict(&instance, 4, &f);
        // Sanity band: seconds, not micro or kilo.
        assert!(pred > 1.0 && pred < 60.0, "pred {pred}");
    }

    #[test]
    fn ols_pins_unobserved_columns_to_zero() {
        // Design with the spill column identically zero: the fit must
        // succeed and return exactly 0 there, not fail as singular.
        let truth = [2.0, 3.0, -1.0, 0.5, 4.0, 0.0, 1.5, 0.0];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut state = 11u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) + 0.1
        };
        for _ in 0..40 {
            let x = [1.0, next(), next(), next(), next(), next(), next(), 0.0];
            let y: f64 = truth.iter().zip(x.iter()).map(|(c, x)| c * x).sum();
            xs.push(x);
            ys.push(y);
        }
        let c = ols(&xs, &ys).unwrap();
        assert_eq!(c[7], 0.0, "unobserved column pinned: {c:?}");
        for (got, want) in c.iter().zip(truth.iter()).take(7) {
            assert!((got - want).abs() < 1e-8, "{c:?}");
        }
    }

    #[test]
    fn spill_profile_measures_blob_throughput() {
        let p = SpillProfile::measure(true).unwrap();
        assert!(p.bytes > 0, "probe moved no bytes");
        assert!(
            p.readback_bps() > 1e6,
            "readback {} B/s is implausibly slow",
            p.readback_bps()
        );
        assert!(p.writeback_bps() > 1e6, "writeback {}", p.writeback_bps());
    }

    #[test]
    fn refit_disk_tier_sets_only_the_spill_coefficient() {
        let t = by_name("m1.large").unwrap();
        let base = OpCoefficients::idealized(&t, 2.0, 0.85);
        let profile = SpillProfile {
            bytes: 64 << 20,
            write_s: 0.5,
            read_s: 0.25,
        };
        let fit = refit_disk_tier(&base, &profile);
        let want = 1.0 / profile.readback_bps();
        assert!((fit.c[7] - want).abs() < 1e-18, "c7 {}", fit.c[7]);
        for i in 0..7 {
            assert_eq!(fit.c[i], base.c[i], "coefficient {i} must not move");
        }
        assert_eq!(fit.sigma, base.sigma);
    }

    #[test]
    fn cost_model_container() {
        let i = by_name("m1.small").unwrap();
        let mut m = CostModel::single("m1.small", OpCoefficients::idealized(&i, 2.0, 0.85));
        assert!(m.for_instance("m1.small").is_some());
        assert!(m.for_instance("nope").is_none());
        m.insert("x", OpCoefficients::idealized(&i, 1.0, 0.9));
        assert_eq!(m.instances(), vec!["m1.small", "x"]);
    }
}
