//! Deployment optimization: searching instance type × cluster size × slot
//! count × plan parameters under time/budget constraints.
//!
//! For every candidate deployment the search (1) re-plans the program with
//! a cost-based split chooser tuned to that deployment, (2) estimates the
//! plan's makespan with the fitted model, and (3) prices it under hourly
//! billing. Three queries are offered, matching the paper's use cases:
//!
//! * [`DeploymentSearch::optimize`] with [`Constraint::Deadline`] — the
//!   cheapest deployment that finishes in time;
//! * [`DeploymentSearch::optimize`] with [`Constraint::Budget`] — the
//!   fastest deployment that fits the budget;
//! * [`DeploymentSearch::pareto`] — the whole (time, cost) skyline.
//!
//! For fixed `(instance, slots)`, estimated makespan is non-increasing in
//! the node count; the scan exploits that to stop growing a configuration
//! once adding nodes can no longer help (time already under the deadline
//! and per-hour cost rising).

use std::collections::BTreeMap;

use cumulon_cluster::instances::{catalog, InstanceType};
use serde::{Deserialize, Serialize};

use crate::calibrate::{CostModel, OpCoefficients};
use crate::error::{CoreError, Result};
use crate::estimate::{job_time_s, ClusterView, PlanEstimate, SpotHazard};
use crate::expr::{InputDesc, Program};
use crate::lower::{build_plan, SplitChooser};
use crate::physical::{MatRef, MulSplit, OperandStats, PhysJob, PhysPlan};

/// What the user is optimizing for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Finish within this many seconds, as cheaply as possible.
    Deadline(f64),
    /// Spend at most this many dollars, as fast as possible.
    Budget(f64),
}

/// The candidate deployment grid.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Instance types to consider.
    pub instances: Vec<InstanceType>,
    /// Smallest cluster size.
    pub min_nodes: u32,
    /// Largest cluster size.
    pub max_nodes: u32,
    /// Node-count stride (1 = exhaustive).
    pub node_stride: u32,
    /// Slot-per-node options, as multiples of the core count (e.g.
    /// `[0.5, 1.0, 2.0]`). Deduplicated per instance after rounding.
    pub slots_per_core: Vec<f64>,
    /// DFS replication factor of the deployments.
    pub replication: u32,
    /// Billing policy to price candidates under.
    pub billing: cumulon_cluster::billing::BillingPolicy,
    /// Expected failure behaviour of the rented hardware. When set, every
    /// candidate is priced at its *expected* makespan under failures
    /// (task-retry inflation + lineage-recovery rework), so "cheapest
    /// under a deadline" means cheapest *at this failure rate* — bigger,
    /// briefer clusters win more often as the rate rises.
    pub failure: Option<crate::estimate::FailureModel>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            instances: catalog().to_vec(),
            min_nodes: 1,
            max_nodes: 64,
            node_stride: 1,
            slots_per_core: vec![0.5, 1.0, 2.0],
            replication: 3,
            billing: cumulon_cluster::billing::BillingPolicy::HourlyCeil,
            failure: None,
        }
    }
}

impl SearchSpace {
    /// A small space for tests: few types, few sizes.
    pub fn quick() -> Self {
        SearchSpace {
            instances: ["m1.large", "c1.xlarge"]
                .iter()
                .filter_map(|n| cumulon_cluster::instances::by_name(n))
                .collect(),
            min_nodes: 1,
            max_nodes: 16,
            node_stride: 1,
            slots_per_core: vec![1.0],
            replication: 3,
            billing: cumulon_cluster::billing::BillingPolicy::HourlyCeil,
            failure: None,
        }
    }

    /// Slot-count candidates for one instance type: `slots_per_core`
    /// multiples rounded to whole slots, deduplicated.
    pub fn slot_options(&self, instance: &InstanceType) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .slots_per_core
            .iter()
            .map(|&f| ((instance.cores as f64 * f).round() as u32).max(1))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Node-count candidates: `min_nodes`, stepping by `node_stride`, plus
    /// `max_nodes` itself. The largest cluster is always a candidate even
    /// when the stride does not divide the range — otherwise a tight
    /// deadline only the full-size cluster can meet is declared
    /// infeasible.
    pub fn node_options(&self) -> Vec<u32> {
        let mut v: Vec<u32> = (self.min_nodes..=self.max_nodes)
            .step_by(self.node_stride.max(1) as usize)
            .collect();
        if v.last() != Some(&self.max_nodes) && self.max_nodes >= self.min_nodes {
            v.push(self.max_nodes);
        }
        v
    }
}

/// A fully evaluated deployment choice.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Chosen instance type.
    pub instance: InstanceType,
    /// Chosen cluster size.
    pub nodes: u32,
    /// Chosen slots per node.
    pub slots: u32,
    /// Replication factor assumed.
    pub replication: u32,
    /// The physical plan tuned to this deployment.
    pub plan: PhysPlan,
    /// The estimate that ranked it.
    pub estimate: PlanEstimate,
}

impl DeploymentPlan {
    /// The cluster view of this deployment.
    pub fn view(&self) -> ClusterView {
        ClusterView {
            instance: self.instance,
            nodes: self.nodes,
            slots: self.slots,
            replication: self.replication,
        }
    }

    /// One-line description.
    pub fn summary(&self) -> String {
        format!(
            "{} x{} ({} slots): est {:.0}s, ${:.2}",
            self.instance.name,
            self.nodes,
            self.slots,
            self.estimate.makespan_s,
            self.estimate.cost_dollars
        )
    }
}

/// The deployment optimizer.
pub struct DeploymentSearch<'a> {
    model: &'a CostModel,
    space: SearchSpace,
}

impl<'a> DeploymentSearch<'a> {
    /// Creates a search over a space with a fitted model.
    pub fn new(model: &'a CostModel, space: SearchSpace) -> Self {
        DeploymentSearch { model, space }
    }

    /// Plans + estimates the program on one deployment.
    pub fn evaluate(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        view: ClusterView,
    ) -> Result<(PhysPlan, PlanEstimate)> {
        let coeffs = self.model.for_instance(view.instance.name).ok_or_else(|| {
            CoreError::Calibration(format!("no model for {}", view.instance.name))
        })?;
        let chooser = CostBasedChooser {
            coeffs: *coeffs,
            view,
        };
        let plan = build_plan(program, inputs, &chooser, "t")?;
        let est = match &self.space.failure {
            Some(failure) => crate::estimate::estimate_plan_under_failures(
                &plan,
                &view,
                self.model,
                self.space.billing,
                crate::estimate::JobTimeModel::WaveApprox,
                failure,
            )?,
            None => {
                crate::estimate::estimate_plan_with(&plan, &view, self.model, self.space.billing)?
            }
        };
        Ok((plan, est))
    }

    /// Evaluates the full grid (used by the experiment harness).
    pub fn sweep(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
    ) -> Result<Vec<DeploymentPlan>> {
        let mut out = Vec::new();
        for instance in &self.space.instances {
            for slots in self.space.slot_options(instance) {
                for nodes in self.space.node_options() {
                    let view = ClusterView {
                        instance: *instance,
                        nodes,
                        slots,
                        replication: self.space.replication,
                    };
                    let (plan, estimate) = self.evaluate(program, inputs, view)?;
                    out.push(DeploymentPlan {
                        instance: *instance,
                        nodes,
                        slots,
                        replication: self.space.replication,
                        plan,
                        estimate,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Finds the best deployment under a constraint.
    pub fn optimize(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        constraint: Constraint,
    ) -> Result<DeploymentPlan> {
        self.optimize_repeated(program, inputs, constraint, 1)
    }

    /// Finds the best deployment for `repeat` back-to-back executions of
    /// the program — the iterative-workload case, where one cluster is
    /// rented for the whole loop and the deadline/budget covers all
    /// iterations. The returned estimate reflects the *total* loop.
    pub fn optimize_repeated(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        constraint: Constraint,
        repeat: usize,
    ) -> Result<DeploymentPlan> {
        let mut best: Option<DeploymentPlan> = None;
        for instance in &self.space.instances {
            for slots in self.space.slot_options(instance) {
                let mut met_deadline_hours: Option<f64> = None;
                for nodes in self.space.node_options() {
                    let view = ClusterView {
                        instance: *instance,
                        nodes,
                        slots,
                        replication: self.space.replication,
                    };
                    let (plan, estimate) = self.evaluate(program, inputs, view)?;
                    let estimate = self.scale_estimate(estimate, repeat, &view);
                    // Monotonicity pruning: once under the deadline, adding
                    // nodes only helps if it can shave a whole billed hour.
                    if let Constraint::Deadline(_) = constraint {
                        if let Some(h) = met_deadline_hours {
                            if h <= 1.0 {
                                break; // cannot get below one billed hour
                            }
                        }
                    }
                    let feasible = match constraint {
                        Constraint::Deadline(d) => estimate.makespan_s <= d,
                        Constraint::Budget(b) => estimate.cost_dollars <= b,
                    };
                    if feasible {
                        if let Constraint::Deadline(_) = constraint {
                            met_deadline_hours =
                                Some((estimate.makespan_s / 3600.0).ceil().max(1.0));
                        }
                        let candidate = DeploymentPlan {
                            instance: *instance,
                            nodes,
                            slots,
                            replication: self.space.replication,
                            plan,
                            estimate,
                        };
                        best = Some(match best.take() {
                            None => candidate,
                            Some(prev) => pick_better(prev, candidate, constraint),
                        });
                    }
                }
            }
        }
        best.ok_or_else(|| {
            CoreError::Infeasible(format!(
                "no deployment in the space satisfies {constraint:?}"
            ))
        })
    }

    /// The (time, cost) Pareto skyline, sorted by ascending time.
    pub fn pareto(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
    ) -> Result<Vec<DeploymentPlan>> {
        let mut all = self.sweep(program, inputs)?;
        all.sort_by(|a, b| {
            a.estimate
                .makespan_s
                .partial_cmp(&b.estimate.makespan_s)
                .expect("no NaN")
                .then(
                    a.estimate
                        .cost_dollars
                        .partial_cmp(&b.estimate.cost_dollars)
                        .expect("no NaN"),
                )
        });
        let mut skyline: Vec<DeploymentPlan> = Vec::new();
        let mut best_cost = f64::INFINITY;
        for d in all {
            if d.estimate.cost_dollars < best_cost - 1e-9 {
                best_cost = d.estimate.cost_dollars;
                skyline.push(d);
            }
        }
        Ok(skyline)
    }
}

impl<'a> DeploymentSearch<'a> {
    /// Rescales a single-execution estimate to `repeat` back-to-back runs
    /// (time multiplies; cost is re-billed over the total duration).
    fn scale_estimate(&self, est: PlanEstimate, repeat: usize, view: &ClusterView) -> PlanEstimate {
        if repeat <= 1 {
            return est;
        }
        let makespan = est.makespan_s * repeat as f64;
        let cost = cumulon_cluster::billing::cluster_cost(
            self.space.billing,
            view.nodes,
            view.instance.price_per_hour,
            makespan,
        );
        PlanEstimate {
            jobs: est.jobs,
            makespan_s: makespan,
            cost_dollars: cost,
        }
    }
}

fn pick_better(a: DeploymentPlan, b: DeploymentPlan, constraint: Constraint) -> DeploymentPlan {
    let better = match constraint {
        Constraint::Deadline(_) => {
            (b.estimate.cost_dollars, b.estimate.makespan_s)
                < (a.estimate.cost_dollars, a.estimate.makespan_s)
        }
        Constraint::Budget(_) => {
            (b.estimate.makespan_s, b.estimate.cost_dollars)
                < (a.estimate.makespan_s, a.estimate.cost_dollars)
        }
    };
    if better {
        b
    } else {
        a
    }
}

/// How a deployment's capacity is purchased.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Procurement {
    /// Reliable on-demand capacity at list price.
    OnDemand,
    /// Spot capacity bid at this fraction of the on-demand price. The
    /// cluster pays the (lower) market price while it runs but is bulk-
    /// revoked whenever the market exceeds the bid.
    Spot {
        /// Bid as a fraction of the on-demand price.
        bid_fraction: f64,
    },
}

impl Procurement {
    /// One-word label for reports.
    pub fn label(&self) -> String {
        match self {
            Procurement::OnDemand => "on-demand".into(),
            Procurement::Spot { bid_fraction } => format!("spot(bid {bid_fraction:.2})"),
        }
    }
}

/// The procurement half of the spot search space: candidate bids and
/// checkpoint intervals, plus the market model that prices their risk.
#[derive(Debug, Clone)]
pub struct SpotSearchSpace {
    /// The revocation hazard / price model of the spot market.
    pub hazard: SpotHazard,
    /// Candidate bids, as fractions of the on-demand price.
    pub bid_fractions: Vec<f64>,
    /// Candidate checkpoint intervals in seconds (`0` = no checkpoints).
    pub checkpoint_intervals_s: Vec<f64>,
    /// Wall-clock cost of writing one checkpoint.
    pub checkpoint_write_s: f64,
}

impl Default for SpotSearchSpace {
    fn default() -> Self {
        SpotSearchSpace {
            hazard: SpotHazard::typical(),
            bid_fractions: vec![0.4, 0.5, 0.7, 0.9],
            checkpoint_intervals_s: vec![0.0, 300.0, 900.0, 1800.0],
            checkpoint_write_s: 15.0,
        }
    }
}

/// One evaluated procurement option for a fixed hardware deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotChoice {
    /// How the capacity is purchased.
    pub procurement: Procurement,
    /// Checkpoint interval in seconds (`0` = none). Always `0` for
    /// on-demand, where nothing revokes mid-run.
    pub checkpoint_interval_s: f64,
    /// Expected makespan including checkpoint writes and revocation
    /// rework.
    pub expected_makespan_s: f64,
    /// Expected dollar cost at the price actually paid (market price for
    /// spot, list price for on-demand), billed over the expected makespan.
    pub expected_cost_dollars: f64,
    /// Expected seconds of redone work (half an exposure window plus
    /// restart overhead per expected revocation).
    pub expected_rework_s: f64,
}

impl SpotChoice {
    /// One-line description.
    pub fn summary(&self) -> String {
        format!(
            "{} ckpt {:.0}s: est {:.0}s (rework {:.0}s), ${:.2}",
            self.procurement.label(),
            self.checkpoint_interval_s,
            self.expected_makespan_s,
            self.expected_rework_s,
            self.expected_cost_dollars
        )
    }
}

impl<'a> DeploymentSearch<'a> {
    /// Prices every procurement option — on-demand, and each
    /// `(bid, checkpoint interval)` pair — for a fixed deployment whose
    /// failure-free makespan is `fail_free_s`. Returned in evaluation
    /// order (on-demand first), *not* sorted; callers curve-plot or
    /// `min_by` as needed.
    pub fn spot_curve(
        &self,
        deployment: &DeploymentPlan,
        spot: &SpotSearchSpace,
    ) -> Vec<SpotChoice> {
        let fail_free_s = deployment.estimate.makespan_s;
        let nodes = deployment.nodes;
        let list = deployment.instance.price_per_hour;
        let mut out = Vec::new();
        out.push(SpotChoice {
            procurement: Procurement::OnDemand,
            checkpoint_interval_s: 0.0,
            expected_makespan_s: fail_free_s,
            expected_cost_dollars: cumulon_cluster::billing::cluster_cost(
                self.space.billing,
                nodes,
                list,
                fail_free_s,
            ),
            expected_rework_s: 0.0,
        });
        // While running, spot pays the market price, not the bid; the bid
        // only buys survival. Clamp so a below-market bid cannot price
        // under what the market charges.
        let paid = list * spot.hazard.mean_price_fraction.min(1.0);
        for &bid in &spot.bid_fractions {
            for &interval in &spot.checkpoint_intervals_s {
                let (makespan, rework) = spot.hazard.expected_spot_makespan(
                    fail_free_s,
                    bid,
                    interval,
                    spot.checkpoint_write_s,
                );
                out.push(SpotChoice {
                    procurement: Procurement::Spot { bid_fraction: bid },
                    checkpoint_interval_s: interval,
                    expected_makespan_s: makespan,
                    expected_cost_dollars: cumulon_cluster::billing::cluster_cost(
                        self.space.billing,
                        nodes,
                        paid,
                        makespan,
                    ),
                    expected_rework_s: rework,
                });
            }
        }
        out
    }

    /// Finds the cheapest expected-cost procurement meeting `deadline_s`:
    /// first picks the hardware with [`DeploymentSearch::optimize`] under
    /// the deadline, then searches {on-demand} ∪ {spot(bid) × checkpoint
    /// interval} on that hardware, pricing each spot option's revocation
    /// rework with `spot.hazard`. Options whose *expected* makespan blows
    /// the deadline are infeasible. Ties break toward the shorter expected
    /// makespan.
    pub fn optimize_spot(
        &self,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        deadline_s: f64,
        spot: &SpotSearchSpace,
    ) -> Result<(DeploymentPlan, SpotChoice)> {
        let deployment = self.optimize(program, inputs, Constraint::Deadline(deadline_s))?;
        let best = self
            .spot_curve(&deployment, spot)
            .into_iter()
            .filter(|c| c.expected_makespan_s <= deadline_s)
            .min_by(|a, b| {
                (a.expected_cost_dollars, a.expected_makespan_s)
                    .partial_cmp(&(b.expected_cost_dollars, b.expected_makespan_s))
                    .expect("no NaN")
            })
            .ok_or_else(|| {
                CoreError::Infeasible(format!(
                    "no procurement meets the {deadline_s}s deadline in expectation"
                ))
            })?;
        Ok((deployment, best))
    }
}

/// Cost-based physical parameter chooser for one deployment.
pub struct CostBasedChooser {
    /// The instance's fitted coefficients.
    pub coeffs: OpCoefficients,
    /// The deployment.
    pub view: ClusterView,
}

impl CostBasedChooser {
    /// Estimated completion time of a candidate multiply (including the
    /// follow-up Add job when the shared dimension is split).
    fn mul_candidate_time(
        &self,
        a: &OperandStats,
        b: &OperandStats,
        out: &OperandStats,
        split: MulSplit,
    ) -> f64 {
        let job = PhysJob::Mul {
            a: MatRef::plain("a"),
            a_stats: *a,
            b: MatRef::plain("b"),
            b_stats: *b,
            out: "o".into(),
            out_stats: *out,
            split,
        };
        let (n_tasks, f) = crate::estimate::job_features(&job, &self.view);
        let mean = self
            .coeffs
            .predict(&self.view.instance, self.view.slots, &f);
        let mut total = job_time_s(mean, n_tasks, self.view.total_slots(), self.coeffs.sigma);
        let kt = a.meta.grid().tile_cols;
        let bands = split.k_bands(kt);
        if bands > 1 {
            let add = PhysJob::AddPartials {
                partials: (0..bands)
                    .map(|k| crate::physical::partial_name("o", k))
                    .collect(),
                out: "o".into(),
                out_stats: *out,
                tiles_per_task: self.tiles_per_task(out),
            };
            let (n_add, f_add) = crate::estimate::job_features(&add, &self.view);
            let mean_add = self
                .coeffs
                .predict(&self.view.instance, self.view.slots, &f_add);
            total += job_time_s(mean_add, n_add, self.view.total_slots(), self.coeffs.sigma);
        }
        total
    }
}

/// Geometric candidate values `1, 2, 4, …` up to and including `max`.
fn split_candidates(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut x = 1usize;
    while x < max {
        v.push(x);
        x *= 2;
    }
    v.push(max.max(1));
    v.dedup();
    v
}

impl SplitChooser for CostBasedChooser {
    fn choose_mul(&self, a: &OperandStats, b: &OperandStats, out: &OperandStats) -> MulSplit {
        let ga = a.meta.grid();
        let gb = b.meta.grid();
        let (mt, kt, nt) = (ga.tile_rows, ga.tile_cols, gb.tile_cols);
        let mut best = MulSplit {
            ri: 1,
            rj: 1,
            rk: kt.max(1),
        };
        let mut best_time = f64::INFINITY;
        for &ri in &split_candidates(mt) {
            for &rj in &split_candidates(nt) {
                for &rk in &split_candidates(kt) {
                    let split = MulSplit { ri, rj, rk };
                    let t = self.mul_candidate_time(a, b, out, split);
                    if t < best_time {
                        best_time = t;
                        best = split;
                    }
                }
            }
        }
        best
    }

    fn tiles_per_task(&self, out: &OperandStats) -> usize {
        // Aim for ~2 waves of tasks, memory permitting.
        let tiles = out.meta.tile_count();
        let target_tasks = (self.view.total_slots() as usize * 2).max(1);
        let mut per_task = tiles.div_ceil(target_tasks).max(1);
        // Cap resident bytes at half a slot's share of node memory.
        let tile_mb = crate::estimate::tile_mb(out);
        let budget_mb = self.view.instance.memory_mb as f64 / self.view.slots.max(1) as f64 / 2.0;
        // Each output tile implies roughly (inputs + output) resident
        // copies; 3 is a serviceable proxy.
        let max_by_mem = (budget_mb / (3.0 * tile_mb).max(1e-9)).floor().max(1.0) as usize;
        per_task = per_task.min(max_by_mem);
        per_task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ProgramBuilder;
    use cumulon_cluster::instances::by_name;
    use cumulon_matrix::MatrixMeta;

    fn model() -> CostModel {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        m
    }

    fn big_multiply() -> (Program, BTreeMap<String, InputDesc>) {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let x = b.input("X");
        let m = b.mul(a, x);
        b.output("C", m);
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "A".into(),
            InputDesc::dense(MatrixMeta::new(20_000, 20_000, 1000)),
        );
        inputs.insert(
            "X".into(),
            InputDesc::dense(MatrixMeta::new(20_000, 20_000, 1000)),
        );
        (b.build(), inputs)
    }

    #[test]
    fn chooser_prefers_banded_splits_for_big_multiplies() {
        let m = model();
        let view = ClusterView {
            instance: by_name("c1.xlarge").unwrap(),
            nodes: 20,
            slots: 8,
            replication: 3,
        };
        let chooser = CostBasedChooser {
            coeffs: *m.for_instance("c1.xlarge").unwrap(),
            view,
        };
        let meta = MatrixMeta::new(20_000, 20_000, 1000);
        let s = OperandStats {
            meta,
            density: 1.0,
            generated: false,
        };
        let split = chooser.choose_mul(&s, &s, &s);
        // 20×20 output tiles, 160 slots: the unit split (400 tasks × full k)
        // is plausible but the chooser must at least beat the worst cases.
        let t_best = chooser.mul_candidate_time(&s, &s, &s, split);
        let t_unit = chooser.mul_candidate_time(
            &s,
            &s,
            &s,
            MulSplit {
                ri: 1,
                rj: 1,
                rk: 20,
            },
        );
        let t_tiny = chooser.mul_candidate_time(&s, &s, &s, MulSplit::unit());
        let t_huge = chooser.mul_candidate_time(
            &s,
            &s,
            &s,
            MulSplit {
                ri: 20,
                rj: 20,
                rk: 20,
            },
        );
        assert!(t_best <= t_unit && t_best <= t_tiny && t_best <= t_huge);
    }

    #[test]
    fn node_options_include_max_nodes_with_non_dividing_stride() {
        // Stride 4 from 1 lands on 1, 5, 9, 13 — skipping 16, which must
        // still appear as the final candidate.
        let space = SearchSpace {
            min_nodes: 1,
            max_nodes: 16,
            node_stride: 4,
            ..SearchSpace::quick()
        };
        assert_eq!(space.node_options(), vec![1, 5, 9, 13, 16]);
        // A dividing stride must not duplicate the endpoint.
        let space = SearchSpace {
            min_nodes: 2,
            max_nodes: 8,
            node_stride: 2,
            ..SearchSpace::quick()
        };
        assert_eq!(space.node_options(), vec![2, 4, 6, 8]);
        // Degenerate single-point range.
        let space = SearchSpace {
            min_nodes: 5,
            max_nodes: 5,
            node_stride: 7,
            ..SearchSpace::quick()
        };
        assert_eq!(space.node_options(), vec![5]);
    }

    #[test]
    fn tight_deadline_reachable_only_at_max_nodes_is_found() {
        // With a stride that skips 16, the pre-fix search never evaluated
        // the largest cluster; a deadline only it can meet was declared
        // infeasible.
        let m = model();
        // Saturated workload: thousands of tasks per wave, so estimated
        // makespan strictly improves all the way up to the largest cluster.
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let x = b.input("X");
        let c = b.mul(a, x);
        b.output("C", c);
        let program = b.build();
        let mut inputs = BTreeMap::new();
        for name in ["A", "X"] {
            inputs.insert(
                name.to_string(),
                InputDesc::dense(MatrixMeta::new(60_000, 60_000, 1000)),
            );
        }
        let strided = SearchSpace {
            node_stride: 4,
            ..SearchSpace::quick()
        };
        let node_options = strided.node_options();
        assert_eq!(*node_options.last().unwrap(), 16);
        let search = DeploymentSearch::new(&m, strided);
        // Derive a deadline only the 16-node candidates can meet: strictly
        // between the best 16-node makespan and the best makespan at any
        // other stride point (wave quantization can make neighbours tie,
        // so the midpoint is computed from the actual estimates).
        let exhaustive = DeploymentSearch::new(&m, SearchSpace::quick());
        let sweep = exhaustive.sweep(&program, &inputs).unwrap();
        let best = |keep: &dyn Fn(u32) -> bool| {
            sweep
                .iter()
                .filter(|d| keep(d.nodes))
                .map(|d| d.estimate.makespan_s)
                .fold(f64::INFINITY, f64::min)
        };
        let best_max = best(&|n| n == 16);
        let best_rest = best(&|n| n != 16 && node_options.contains(&n));
        assert!(
            best_max < best_rest,
            "workload must discriminate the 16-node candidates: {best_max} vs {best_rest}"
        );
        let deadline = 0.5 * (best_max + best_rest);
        let plan = search
            .optimize(&program, &inputs, Constraint::Deadline(deadline))
            .expect("max_nodes candidate must be evaluated under a strided search");
        assert_eq!(plan.nodes, 16);
    }

    #[test]
    fn split_candidates_geometric() {
        assert_eq!(split_candidates(1), vec![1]);
        assert_eq!(split_candidates(8), vec![1, 2, 4, 8]);
        assert_eq!(split_candidates(10), vec![1, 2, 4, 8, 10]);
    }

    #[test]
    fn deadline_constrained_optimization() {
        let m = model();
        let (program, inputs) = big_multiply();
        let search = DeploymentSearch::new(&m, SearchSpace::quick());
        let relaxed = search
            .optimize(&program, &inputs, Constraint::Deadline(100_000.0))
            .unwrap();
        let tight = search
            .optimize(&program, &inputs, Constraint::Deadline(4_000.0))
            .unwrap();
        assert!(
            relaxed.estimate.cost_dollars <= tight.estimate.cost_dollars + 1e-9,
            "looser deadline can only be cheaper: {} vs {}",
            relaxed.summary(),
            tight.summary()
        );
        assert!(tight.estimate.makespan_s <= 4_000.0);
    }

    #[test]
    fn failure_rate_inflates_every_candidate() {
        let m = model();
        let (program, inputs) = big_multiply();
        let reliable = DeploymentSearch::new(&m, SearchSpace::quick());
        let flaky = DeploymentSearch::new(
            &m,
            SearchSpace {
                failure: Some(crate::estimate::FailureModel {
                    node_mtbf_s: 200_000.0,
                    task_failure_prob: 0.05,
                }),
                ..SearchSpace::quick()
            },
        );
        let base = reliable.sweep(&program, &inputs).unwrap();
        let under = flaky.sweep(&program, &inputs).unwrap();
        assert_eq!(base.len(), under.len());
        for (b, u) in base.iter().zip(&under) {
            assert_eq!(
                (b.nodes, b.slots, b.instance.name),
                (u.nodes, u.slots, u.instance.name)
            );
            assert!(
                u.estimate.makespan_s > b.estimate.makespan_s,
                "expected failures must lengthen {}",
                b.summary()
            );
        }
        // "Cheapest under a deadline at this failure rate" still holds the
        // deadline against the inflated estimate.
        let plan = flaky
            .optimize(&program, &inputs, Constraint::Deadline(8_000.0))
            .unwrap();
        assert!(plan.estimate.makespan_s <= 8_000.0);
        // At the same deadline the reliable cluster can only be cheaper.
        let plan_reliable = reliable
            .optimize(&program, &inputs, Constraint::Deadline(8_000.0))
            .unwrap();
        assert!(plan_reliable.estimate.cost_dollars <= plan.estimate.cost_dollars + 1e-9);
    }

    #[test]
    fn infeasible_deadline_errors() {
        let m = model();
        let (program, inputs) = big_multiply();
        let search = DeploymentSearch::new(&m, SearchSpace::quick());
        assert!(matches!(
            search.optimize(&program, &inputs, Constraint::Deadline(1.0)),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn budget_constrained_optimization() {
        let m = model();
        let (program, inputs) = big_multiply();
        let search = DeploymentSearch::new(&m, SearchSpace::quick());
        let rich = search
            .optimize(&program, &inputs, Constraint::Budget(200.0))
            .unwrap();
        let poor = search
            .optimize(&program, &inputs, Constraint::Budget(3.0))
            .unwrap();
        assert!(rich.estimate.makespan_s <= poor.estimate.makespan_s + 1e-9);
        assert!(poor.estimate.cost_dollars <= 3.0);
    }

    #[test]
    fn pareto_skyline_is_monotone() {
        let m = model();
        let (program, inputs) = big_multiply();
        let search = DeploymentSearch::new(&m, SearchSpace::quick());
        let skyline = search.pareto(&program, &inputs).unwrap();
        assert!(!skyline.is_empty());
        for w in skyline.windows(2) {
            assert!(w[0].estimate.makespan_s <= w[1].estimate.makespan_s);
            assert!(w[0].estimate.cost_dollars > w[1].estimate.cost_dollars);
        }
    }

    #[test]
    fn more_nodes_never_slower_in_estimate() {
        let m = model();
        let (program, inputs) = big_multiply();
        let search = DeploymentSearch::new(&m, SearchSpace::quick());
        let mut last = f64::INFINITY;
        for nodes in [2u32, 4, 8, 16] {
            let view = ClusterView {
                instance: by_name("c1.xlarge").unwrap(),
                nodes,
                slots: 8,
                replication: 3,
            };
            let (_, est) = search.evaluate(&program, &inputs, view).unwrap();
            assert!(
                est.makespan_s <= last * 1.02,
                "nodes {nodes}: {} > {last}",
                est.makespan_s
            );
            last = est.makespan_s;
        }
    }
}

#[cfg(test)]
mod spot_tests {
    use super::*;
    use crate::expr::ProgramBuilder;
    use cumulon_matrix::MatrixMeta;

    fn model() -> CostModel {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        m
    }

    fn workload() -> (Program, BTreeMap<String, InputDesc>) {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let x = b.input("X");
        let m = b.mul(a, x);
        b.output("C", m);
        let mut inputs = BTreeMap::new();
        for name in ["A", "X"] {
            inputs.insert(
                name.to_string(),
                InputDesc::dense(MatrixMeta::new(20_000, 20_000, 1000)),
            );
        }
        (b.build(), inputs)
    }

    fn search(m: &CostModel) -> DeploymentSearch<'_> {
        DeploymentSearch::new(
            m,
            SearchSpace {
                billing: cumulon_cluster::billing::BillingPolicy::PerSecond,
                ..SearchSpace::quick()
            },
        )
    }

    #[test]
    fn spot_curve_covers_grid_and_prices_risk() {
        let m = model();
        let s = search(&m);
        let (program, inputs) = workload();
        let dep = s
            .optimize(&program, &inputs, Constraint::Deadline(100_000.0))
            .unwrap();
        let spot = SpotSearchSpace::default();
        let curve = s.spot_curve(&dep, &spot);
        assert_eq!(
            curve.len(),
            1 + spot.bid_fractions.len() * spot.checkpoint_intervals_s.len()
        );
        assert_eq!(curve[0].procurement, Procurement::OnDemand);
        assert_eq!(curve[0].expected_rework_s, 0.0);
        for c in &curve[1..] {
            assert!(c.expected_makespan_s >= dep.estimate.makespan_s);
            assert!(c.expected_rework_s >= 0.0);
        }
        // At the same bid, an unchecked run reworks at least as much as a
        // checkpointed one (exposure is the whole run, not one interval).
        let at = |bid: f64, interval: f64| {
            curve
                .iter()
                .find(|c| {
                    c.procurement == Procurement::Spot { bid_fraction: bid }
                        && c.checkpoint_interval_s == interval
                })
                .unwrap()
                .expected_rework_s
        };
        assert!(at(0.5, 0.0) >= at(0.5, 300.0));
    }

    #[test]
    fn spot_on_demand_crossover_is_monotone() {
        let m = model();
        let s = search(&m);
        let (program, inputs) = workload();
        // As the spot market's mean price climbs toward list price, the
        // winner flips from spot to on-demand exactly once.
        let mut saw_on_demand = false;
        let mut spot_wins = 0;
        for frac in [0.2, 0.35, 0.5, 0.65, 0.8, 0.95, 1.0] {
            let spot = SpotSearchSpace {
                hazard: SpotHazard {
                    mean_price_fraction: frac,
                    ..SpotHazard::typical()
                },
                ..SpotSearchSpace::default()
            };
            let (_, choice) = s
                .optimize_spot(&program, &inputs, 100_000.0, &spot)
                .unwrap();
            match choice.procurement {
                Procurement::OnDemand => saw_on_demand = true,
                Procurement::Spot { .. } => {
                    assert!(
                        !saw_on_demand,
                        "spot must not win again after on-demand does (frac {frac})"
                    );
                    spot_wins += 1;
                }
            }
        }
        assert!(spot_wins > 0, "cheap spot markets must win");
        assert!(saw_on_demand, "spot at list price must lose");
    }

    #[test]
    fn deadline_rules_out_risky_unchecked_spot() {
        let m = model();
        let s = search(&m);
        let (program, inputs) = workload();
        let dep = s
            .optimize(&program, &inputs, Constraint::Deadline(100_000.0))
            .unwrap();
        // A vicious market: every option carries visible rework.
        let spot = SpotSearchSpace {
            hazard: SpotHazard {
                mean_price_fraction: 0.35,
                base_rate_per_hour: 20.0,
                decay: 0.1,
                restart_overhead_s: 300.0,
            },
            ..SpotSearchSpace::default()
        };
        // Deadline just above the fail-free makespan: risky spot options
        // are infeasible in expectation, on-demand still qualifies.
        let deadline = dep.estimate.makespan_s * 1.01;
        let (_, choice) = s.optimize_spot(&program, &inputs, deadline, &spot).unwrap();
        assert_eq!(choice.procurement, Procurement::OnDemand);
    }
}

#[cfg(test)]
mod iterative_tests {
    use super::*;
    use crate::calibrate::OpCoefficients;
    use crate::expr::ProgramBuilder;
    use cumulon_cluster::instances::catalog;
    use cumulon_matrix::MatrixMeta;

    fn model() -> CostModel {
        let mut m = CostModel::default();
        for i in catalog() {
            m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        m
    }

    fn iteration() -> (Program, BTreeMap<String, InputDesc>) {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let m = b.mul(a, a);
        b.output("C", m);
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "A".into(),
            InputDesc::dense(MatrixMeta::new(12_000, 12_000, 1000)).generated(),
        );
        (b.build(), inputs)
    }

    #[test]
    fn repeated_runs_need_bigger_clusters_under_same_deadline() {
        let m = model();
        let search = DeploymentSearch::new(&m, SearchSpace::quick());
        let (program, inputs) = iteration();
        let single = search
            .optimize_repeated(&program, &inputs, Constraint::Deadline(1_800.0), 1)
            .unwrap();
        let looped = search
            .optimize_repeated(&program, &inputs, Constraint::Deadline(1_800.0), 20)
            .unwrap();
        assert!(looped.estimate.makespan_s <= 1_800.0);
        assert!(
            looped.nodes * looped.slots >= single.nodes * single.slots,
            "20 iterations in the same window need at least as much hardware: {} vs {}",
            looped.summary(),
            single.summary()
        );
        // Total-loop estimate is reported.
        assert!(looped.estimate.makespan_s > 10.0 * single.estimate.makespan_s / 20.0);
    }

    #[test]
    fn repeat_one_is_identity() {
        let m = model();
        let search = DeploymentSearch::new(&m, SearchSpace::quick());
        let (program, inputs) = iteration();
        let a = search
            .optimize(&program, &inputs, Constraint::Deadline(7_200.0))
            .unwrap();
        let b = search
            .optimize_repeated(&program, &inputs, Constraint::Deadline(7_200.0), 1)
            .unwrap();
        assert_eq!(a.estimate.makespan_s, b.estimate.makespan_s);
        assert_eq!(a.nodes, b.nodes);
    }
}
