//! Physical plans: map-only job DAGs with optimizer-chosen parameters.
//!
//! A [`PhysPlan`] is a list of [`PhysJob`]s with dependencies. Three
//! operators cover the paper's execution model:
//!
//! * [`PhysJob::Mul`] — the split matrix multiply. The output tile grid is
//!   covered by `ri × rj`-tile bands and the shared dimension by
//!   `rk`-tile bands; one task per `(I, J, K)` band triple. With more than
//!   one `K` band, tasks write *partial* matrices that a follow-up
//!   [`PhysJob::AddPartials`] sums — trading parallelism against an extra
//!   materialisation, exactly the knob the paper's optimizer turns.
//! * [`PhysJob::Fused`] — an element-wise expression tree (add/sub/⊙/⊘,
//!   scaling, unary maps) over any number of inputs, evaluated tile-by-tile
//!   in a single job. This is what MapReduce-based baselines cannot do
//!   (multi-input maps, no shuffle, no per-op job).
//! * [`PhysJob::AddPartials`] — sums co-indexed tiles of several matrices.
//!
//! Inputs are [`MatRef`]s: a matrix name plus a `transposed` flag, so
//! transposition is free at read time (the transpose-pushdown rewrite
//! guarantees transposes only ever sit on stored matrices).

use cumulon_matrix::tile::ElemOp;
use cumulon_matrix::MatrixMeta;
use serde::{Deserialize, Serialize};

use crate::expr::UnaryOp;

/// Reference to a stored matrix, optionally read transposed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatRef {
    /// Matrix name in the tile store.
    pub name: String,
    /// Read tiles transposed: tile `(i, j)` of the reference is the
    /// transpose of stored tile `(j, i)`.
    pub transposed: bool,
}

impl MatRef {
    /// Plain reference.
    pub fn plain(name: impl Into<String>) -> Self {
        MatRef {
            name: name.into(),
            transposed: false,
        }
    }

    /// Transposed reference.
    pub fn t(name: impl Into<String>) -> Self {
        MatRef {
            name: name.into(),
            transposed: true,
        }
    }
}

/// Split parameters of a multiply job, in tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MulSplit {
    /// Output-row tiles handled per task.
    pub ri: usize,
    /// Output-column tiles handled per task.
    pub rj: usize,
    /// Shared-dimension tiles handled per task.
    pub rk: usize,
}

impl MulSplit {
    /// The `1×1×1` split (one output tile, one shared band per task).
    pub fn unit() -> Self {
        MulSplit {
            ri: 1,
            rj: 1,
            rk: 1,
        }
    }

    /// Number of tasks for given tile-grid extents.
    pub fn task_count(&self, mt: usize, kt: usize, nt: usize) -> usize {
        mt.div_ceil(self.ri) * nt.div_ceil(self.rj) * kt.div_ceil(self.rk)
    }

    /// Number of shared-dimension bands (1 ⇒ no Add job needed).
    pub fn k_bands(&self, kt: usize) -> usize {
        kt.div_ceil(self.rk)
    }
}

/// Statistics the estimator needs about one matrix operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperandStats {
    /// Shape/tiling as read (i.e. already transposed if the ref is).
    pub meta: MatrixMeta,
    /// Estimated density.
    pub density: f64,
    /// Whether reads come from a generator (no DFS I/O).
    pub generated: bool,
}

/// Per-tile evaluation tree of a fused job.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedExpr {
    /// Reads input number `idx` (into the job's `inputs` list).
    Read(usize),
    /// Element-wise combination of two subtrees.
    Elem(ElemOp, Box<FusedExpr>, Box<FusedExpr>),
    /// Scalar multiple of a subtree.
    Scale(Box<FusedExpr>, f64),
    /// Unary map of a subtree.
    Unary(UnaryOp, Box<FusedExpr>),
}

impl FusedExpr {
    /// Number of `Read` leaves (with multiplicity).
    pub fn read_count(&self) -> usize {
        match self {
            FusedExpr::Read(_) => 1,
            FusedExpr::Elem(_, a, b) => a.read_count() + b.read_count(),
            FusedExpr::Scale(a, _) | FusedExpr::Unary(_, a) => a.read_count(),
        }
    }

    /// Number of operator applications (per-tile kernel invocations).
    pub fn op_count(&self) -> usize {
        match self {
            FusedExpr::Read(_) => 0,
            FusedExpr::Elem(_, a, b) => 1 + a.op_count() + b.op_count(),
            FusedExpr::Scale(a, _) | FusedExpr::Unary(_, a) => 1 + a.op_count(),
        }
    }
}

/// One physical job.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysJob {
    /// Split matrix multiply. When `split.k_bands(kt) > 1` the job writes
    /// partial matrices named `{out}__p{K}` instead of `out`; the planner
    /// always pairs it with an [`PhysJob::AddPartials`] in that case.
    Mul {
        /// Left operand.
        a: MatRef,
        /// Left operand statistics (as read).
        a_stats: OperandStats,
        /// Right operand.
        b: MatRef,
        /// Right operand statistics (as read).
        b_stats: OperandStats,
        /// Output (or partial-prefix) name.
        out: String,
        /// Output statistics.
        out_stats: OperandStats,
        /// Split parameters.
        split: MulSplit,
    },
    /// Sums co-indexed tiles of `partials` into `out`.
    AddPartials {
        /// Partial matrix names (all with `out`'s meta).
        partials: Vec<String>,
        /// Output name.
        out: String,
        /// Output statistics.
        out_stats: OperandStats,
        /// Output tiles handled per task.
        tiles_per_task: usize,
    },
    /// Evaluates a fused element-wise tree tile-by-tile.
    Fused {
        /// Inputs read by `expr`'s `Read` leaves.
        inputs: Vec<(MatRef, OperandStats)>,
        /// The per-tile evaluation tree.
        expr: FusedExpr,
        /// Output name.
        out: String,
        /// Output statistics.
        out_stats: OperandStats,
        /// Output tiles handled per task.
        tiles_per_task: usize,
    },
}

impl PhysJob {
    /// Operator label for calibration grouping.
    pub fn op_label(&self) -> &'static str {
        match self {
            PhysJob::Mul { .. } => "mul",
            PhysJob::AddPartials { .. } => "add",
            PhysJob::Fused { .. } => "fused",
        }
    }

    /// Output matrix name(s) this job materialises.
    pub fn output_names(&self) -> Vec<String> {
        match self {
            PhysJob::Mul {
                out,
                split,
                a_stats,
                ..
            } => {
                let kt = a_stats.meta.grid().tile_cols;
                let bands = split.k_bands(kt);
                if bands > 1 {
                    (0..bands).map(|k| partial_name(out, k)).collect()
                } else {
                    vec![out.clone()]
                }
            }
            PhysJob::AddPartials { out, .. } | PhysJob::Fused { out, .. } => vec![out.clone()],
        }
    }

    /// Input matrix names this job reads (lineage edges).
    pub fn input_names(&self) -> Vec<String> {
        match self {
            PhysJob::Mul { a, b, .. } => {
                let mut v = vec![a.name.clone()];
                if b.name != a.name {
                    v.push(b.name.clone());
                }
                v
            }
            PhysJob::AddPartials { partials, .. } => partials.clone(),
            PhysJob::Fused { inputs, .. } => {
                let mut v: Vec<String> = inputs.iter().map(|(m, _)| m.name.clone()).collect();
                v.dedup();
                v
            }
        }
    }

    /// Task indices (in [`instantiate`](crate::lower::instantiate) order)
    /// that write tile `(ti, tj)` of output matrix `matrix`. Empty when
    /// `matrix` is not one of this job's outputs. This is the lineage map a
    /// recovery driver uses to re-execute only the tasks whose output tiles
    /// were lost.
    pub fn tasks_for_tile(&self, matrix: &str, ti: usize, tj: usize) -> Vec<usize> {
        match self {
            PhysJob::Mul {
                a_stats,
                b_stats,
                out,
                split,
                ..
            } => {
                let ga = a_stats.meta.grid();
                let gb = b_stats.meta.grid();
                let (mt, kt, nt) = (ga.tile_rows, ga.tile_cols, gb.tile_cols);
                let bands = split.k_bands(kt);
                // Which k-band wrote this matrix? The whole output for an
                // unsplit k; partial `{out}__p{k}` selects band k.
                let bk = if bands > 1 {
                    let Some(k) = (0..bands).find(|&k| partial_name(out, k) == matrix) else {
                        return Vec::new();
                    };
                    k
                } else {
                    if matrix != out {
                        return Vec::new();
                    }
                    0
                };
                if ti >= mt || tj >= nt {
                    return Vec::new();
                }
                let (bi, bj) = (ti / split.ri, tj / split.rj);
                let nbj = nt.div_ceil(split.rj);
                vec![(bi * nbj + bj) * bands + bk]
            }
            PhysJob::AddPartials {
                out,
                out_stats,
                tiles_per_task,
                ..
            }
            | PhysJob::Fused {
                out,
                out_stats,
                tiles_per_task,
                ..
            } => {
                if matrix != out {
                    return Vec::new();
                }
                match out_stats.meta.grid().iter().position(|c| c == (ti, tj)) {
                    Some(pos) => vec![pos / (*tiles_per_task).max(1)],
                    None => Vec::new(),
                }
            }
        }
    }

    /// Number of tasks this job will spawn.
    pub fn task_count(&self) -> usize {
        match self {
            PhysJob::Mul {
                a_stats,
                b_stats,
                split,
                ..
            } => {
                let ga = a_stats.meta.grid();
                let gb = b_stats.meta.grid();
                split.task_count(ga.tile_rows, ga.tile_cols, gb.tile_cols)
            }
            PhysJob::AddPartials {
                out_stats,
                tiles_per_task,
                ..
            }
            | PhysJob::Fused {
                out_stats,
                tiles_per_task,
                ..
            } => out_stats
                .meta
                .tile_count()
                .div_ceil((*tiles_per_task).max(1)),
        }
    }
}

/// Name of the `k`-th partial matrix of a split multiply.
pub fn partial_name(out: &str, k: usize) -> String {
    format!("{out}__p{k}")
}

/// A physical plan: jobs plus dependency lists (indices into `jobs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhysPlan {
    /// The jobs in topological order.
    pub jobs: Vec<PhysJob>,
    /// `deps[i]` lists jobs that must complete before job `i`.
    pub deps: Vec<Vec<usize>>,
}

impl PhysPlan {
    /// Appends a job, returning its index.
    pub fn push(&mut self, job: PhysJob, deps: Vec<usize>) -> usize {
        self.jobs.push(job);
        self.deps.push(deps);
        self.jobs.len() - 1
    }

    /// Total tasks across all jobs.
    pub fn total_tasks(&self) -> usize {
        self.jobs.iter().map(PhysJob::task_count).sum()
    }

    /// Index of the job that materialises `matrix`, if any. Partial
    /// matrices (`{out}__p{k}`) resolve to their multiply job.
    pub fn producer_of(&self, matrix: &str) -> Option<usize> {
        self.jobs
            .iter()
            .position(|j| j.output_names().iter().any(|n| n == matrix))
    }

    /// Topological levels: jobs grouped by the longest dependency chain
    /// below them. Jobs in the same level can run concurrently; the plan
    /// estimator sums level makespans.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let mut level_of = vec![0usize; self.jobs.len()];
        for (i, deps) in self.deps.iter().enumerate() {
            level_of[i] = deps.iter().map(|&d| level_of[d] + 1).max().unwrap_or(0);
        }
        let max_level = level_of.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let mut levels = vec![Vec::new(); max_level];
        for (i, &l) in level_of.iter().enumerate() {
            levels[l].push(i);
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rows: usize, cols: usize, tile: usize, density: f64) -> OperandStats {
        OperandStats {
            meta: MatrixMeta::new(rows, cols, tile),
            density,
            generated: false,
        }
    }

    fn mul_job(split: MulSplit) -> PhysJob {
        PhysJob::Mul {
            a: MatRef::plain("A"),
            a_stats: stats(40, 60, 10, 1.0), // 4 × 6 tiles
            b: MatRef::plain("B"),
            b_stats: stats(60, 20, 10, 1.0), // 6 × 2 tiles
            out: "C".into(),
            out_stats: stats(40, 20, 10, 1.0),
            split,
        }
    }

    #[test]
    fn split_task_count() {
        let s = MulSplit {
            ri: 2,
            rj: 1,
            rk: 3,
        };
        assert_eq!(s.task_count(4, 6, 2), 2 * 2 * 2);
        assert_eq!(s.k_bands(6), 2);
        assert_eq!(MulSplit::unit().task_count(4, 6, 2), 48);
    }

    #[test]
    fn split_ragged_bands() {
        let s = MulSplit {
            ri: 3,
            rj: 3,
            rk: 4,
        };
        // Factored as rows × cols × k-bands to mirror the split geometry.
        #[allow(clippy::identity_op)]
        {
            assert_eq!(s.task_count(4, 6, 2), 2 * 1 * 2);
        }
        assert_eq!(s.k_bands(6), 2);
    }

    #[test]
    fn mul_outputs_partials_when_k_split() {
        let whole = mul_job(MulSplit {
            ri: 1,
            rj: 1,
            rk: 6,
        });
        assert_eq!(whole.output_names(), vec!["C"]);
        let split = mul_job(MulSplit {
            ri: 1,
            rj: 1,
            rk: 2,
        });
        assert_eq!(split.output_names(), vec!["C__p0", "C__p1", "C__p2"]);
    }

    #[test]
    fn job_task_counts() {
        assert_eq!(mul_job(MulSplit::unit()).task_count(), 4 * 2 * 6);
        let add = PhysJob::AddPartials {
            partials: vec!["C__p0".into(), "C__p1".into()],
            out: "C".into(),
            out_stats: stats(40, 20, 10, 1.0),
            tiles_per_task: 3,
        };
        assert_eq!(add.task_count(), 3); // 8 tiles / 3 per task
    }

    #[test]
    fn fused_expr_counts() {
        // (a + b) * 2, then squared: reads 2, ops 3
        let e = FusedExpr::Unary(
            UnaryOp::Square,
            Box::new(FusedExpr::Scale(
                Box::new(FusedExpr::Elem(
                    ElemOp::Add,
                    Box::new(FusedExpr::Read(0)),
                    Box::new(FusedExpr::Read(1)),
                )),
                2.0,
            )),
        );
        assert_eq!(e.read_count(), 2);
        assert_eq!(e.op_count(), 3);
    }

    #[test]
    fn plan_levels() {
        let mut plan = PhysPlan::default();
        let j0 = plan.push(mul_job(MulSplit::unit()), vec![]);
        let j1 = plan.push(mul_job(MulSplit::unit()), vec![]);
        let j2 = plan.push(
            PhysJob::AddPartials {
                partials: vec!["x".into()],
                out: "y".into(),
                out_stats: stats(40, 20, 10, 1.0),
                tiles_per_task: 1,
            },
            vec![j0, j1],
        );
        let levels = plan.levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0], vec![j0, j1]);
        assert_eq!(levels[1], vec![j2]);
        assert!(plan.total_tasks() > 0);
    }

    #[test]
    fn tasks_for_tile_mul_banded() {
        // Output grid 4 × 2 tiles; ri=2, rj=1 → 2 × 2 bands; kt=6, rk=3 →
        // 2 k-bands. Task order: (bi, bj, bk) nested loops.
        let job = mul_job(MulSplit {
            ri: 2,
            rj: 1,
            rk: 3,
        });
        assert_eq!(job.tasks_for_tile("C__p0", 3, 1), vec![6]);
        assert_eq!(job.tasks_for_tile("C__p1", 3, 1), vec![7]);
        assert!(
            job.tasks_for_tile("C", 3, 1).is_empty(),
            "k-split writes partials"
        );
        assert!(
            job.tasks_for_tile("C__p0", 9, 0).is_empty(),
            "tile out of grid"
        );

        let whole = mul_job(MulSplit {
            ri: 1,
            rj: 1,
            rk: 6,
        });
        assert_eq!(whole.tasks_for_tile("C", 2, 1), vec![5]);
        assert!(whole.tasks_for_tile("C__p0", 0, 0).is_empty());
    }

    #[test]
    fn tasks_for_tile_chunked() {
        let add = PhysJob::AddPartials {
            partials: vec!["C__p0".into(), "C__p1".into()],
            out: "C".into(),
            out_stats: stats(40, 20, 10, 1.0), // 4 × 2 grid, 8 tiles
            tiles_per_task: 3,
        };
        assert_eq!(add.tasks_for_tile("C", 0, 0), vec![0]);
        assert_eq!(add.tasks_for_tile("C", 2, 1), vec![1]); // position 5 / 3
        assert_eq!(add.tasks_for_tile("C", 3, 1), vec![2]); // position 7 / 3
        assert!(add.tasks_for_tile("X", 0, 0).is_empty());
    }

    #[test]
    fn lineage_accessors() {
        let job = mul_job(MulSplit::unit());
        assert_eq!(job.input_names(), vec!["A", "B"]);
        let mut plan = PhysPlan::default();
        plan.push(
            mul_job(MulSplit {
                ri: 1,
                rj: 1,
                rk: 2,
            }),
            vec![],
        );
        assert_eq!(plan.producer_of("C__p1"), Some(0));
        assert_eq!(
            plan.producer_of("C"),
            None,
            "k-split mul makes partials only"
        );
        assert_eq!(plan.producer_of("A"), None);
    }

    #[test]
    fn matref_builders() {
        assert!(!MatRef::plain("A").transposed);
        assert!(MatRef::t("A").transposed);
        assert_eq!(partial_name("C", 2), "C__p2");
    }

    #[test]
    fn op_labels() {
        assert_eq!(mul_job(MulSplit::unit()).op_label(), "mul");
    }
}
