//! Distributed scalar aggregates over stored matrices.
//!
//! Iterative workloads need scalars — objective values, norms, counts —
//! to drive convergence checks. Fetching a whole matrix to the driver
//! defeats the point at scale, so aggregates run as map-only jobs: each
//! task folds a chunk of tiles into one partial scalar, written as a 1×1
//! tile of a partials matrix; the driver sums the (tiny) partials.
//!
//! In phantom mode the data doesn't exist, so the value comes back as
//! `None` — but the run report still carries the cost of computing it,
//! which is what deployment planning cares about.

use cumulon_cluster::{Cluster, ExecMode, Job, JobDag, RunReport, Task};
use cumulon_matrix::ops as mops;
use cumulon_matrix::{DenseTile, MatrixMeta, Tile};

use crate::error::{CoreError, Result};

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Sum of all elements.
    Sum,
    /// Sum of squared elements (squared Frobenius norm).
    FrobSq,
    /// Number of stored non-zeros.
    Nnz,
}

impl AggKind {
    fn fold(self, tile: &Tile) -> f64 {
        match self {
            AggKind::Sum => tile.sum(),
            AggKind::FrobSq => tile.frob_sq(),
            AggKind::Nnz => tile.nnz() as f64,
        }
    }

    fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::FrobSq => "frobsq",
            AggKind::Nnz => "nnz",
        }
    }
}

/// Computes an aggregate of a stored matrix on the cluster.
///
/// `tag` namespaces the partials matrix — pass something unique per call
/// (e.g. the iteration number). Returns `(value, report)`; the value is
/// `None` in [`ExecMode::Simulated`] runs.
pub fn aggregate(
    cluster: &Cluster,
    matrix: &str,
    kind: AggKind,
    tiles_per_task: usize,
    tag: &str,
    mode: ExecMode,
) -> Result<(Option<f64>, RunReport)> {
    let handle = cluster.store().lookup(matrix)?;
    let coords: Vec<(usize, usize)> = handle.meta.grid().iter().collect();
    let n_tasks = coords.len().div_ceil(tiles_per_task.max(1));
    let partials_name = format!("__agg_{}_{}_{tag}", kind.name(), matrix);
    let partials_meta = MatrixMeta::new(n_tasks, 1, 1);
    cluster.store().register(&partials_name, partials_meta)?;

    let mut tasks = Vec::with_capacity(n_tasks);
    for (task_idx, chunk) in coords.chunks(tiles_per_task.max(1)).enumerate() {
        let chunk: Vec<(usize, usize)> = chunk.to_vec();
        let matrix_name = matrix.to_string();
        let partials_name = partials_name.clone();
        let hint = chunk[0];
        tasks.push(
            Task::new(move |ctx| {
                let mut acc = 0.0;
                for &(ti, tj) in &chunk {
                    let tile = ctx.read_tile(&matrix_name, ti, tj)?;
                    ctx.charge(mops::map_work(&tile));
                    acc += kind.fold(&tile);
                }
                let out = Tile::dense(DenseTile::from_vec(1, 1, vec![acc]));
                ctx.write_tile(&partials_name, task_idx, 0, out)?;
                Ok(())
            })
            .with_locality(matrix, hint.0, hint.1),
        );
    }
    let mut dag = JobDag::new();
    dag.push(
        Job::new(format!("agg-{}({matrix})", kind.name()), "agg", tasks),
        vec![],
    );
    let report = cluster.run(&dag, mode).map_err(CoreError::from)?;

    let value = if mode == ExecMode::Real {
        let partials = cluster.store().get_local(&partials_name)?;
        Some(partials.sum())
    } else {
        None
    };
    // Partials are scratch; clean them up.
    cluster.store().drop_matrix(&partials_name)?;
    Ok((value, report))
}

/// Frobenius norm `‖M‖_F` of a stored matrix.
pub fn frobenius_norm(
    cluster: &Cluster,
    matrix: &str,
    tiles_per_task: usize,
    tag: &str,
    mode: ExecMode,
) -> Result<(Option<f64>, RunReport)> {
    let (v, report) = aggregate(cluster, matrix, AggKind::FrobSq, tiles_per_task, tag, mode)?;
    Ok((v.map(f64::sqrt), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_cluster::ClusterSpec;
    use cumulon_matrix::gen::Generator;
    use cumulon_matrix::LocalMatrix;

    fn cluster_with(meta: MatrixMeta, gen: Generator) -> (Cluster, LocalMatrix) {
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 3, 2).unwrap()).unwrap();
        let m = LocalMatrix::generate(meta, &gen);
        cluster.store().put_local("M", &m).unwrap();
        (cluster, m)
    }

    #[test]
    fn sum_matches_local() {
        let meta = MatrixMeta::new(20, 14, 5);
        let (cluster, m) = cluster_with(
            meta,
            Generator::DenseUniform {
                seed: 1,
                lo: -1.0,
                hi: 1.0,
            },
        );
        let (v, report) = aggregate(&cluster, "M", AggKind::Sum, 3, "t0", ExecMode::Real).unwrap();
        assert!((v.unwrap() - m.sum()).abs() < 1e-9);
        assert_eq!(report.jobs.len(), 1);
        assert!(report.jobs[0].tasks.len() > 1, "work split across tasks");
    }

    #[test]
    fn frobenius_matches_local() {
        let meta = MatrixMeta::new(12, 12, 4);
        let (cluster, m) = cluster_with(meta, Generator::DenseGaussian { seed: 2 });
        let (v, _) = frobenius_norm(&cluster, "M", 2, "t1", ExecMode::Real).unwrap();
        assert!((v.unwrap() - m.frob_norm()).abs() < 1e-9);
    }

    #[test]
    fn nnz_on_sparse_matrix() {
        let meta = MatrixMeta::new(30, 30, 10);
        let (cluster, m) = cluster_with(
            meta,
            Generator::SparseUniform {
                seed: 3,
                density: 0.2,
            },
        );
        let (v, _) = aggregate(&cluster, "M", AggKind::Nnz, 4, "t2", ExecMode::Real).unwrap();
        assert_eq!(v.unwrap() as u64, m.nnz());
    }

    #[test]
    fn simulated_mode_returns_cost_only() {
        let cluster = Cluster::provision(ClusterSpec::named("c1.xlarge", 4, 8).unwrap()).unwrap();
        let meta = MatrixMeta::new(20_000, 20_000, 1_000);
        cluster
            .store()
            .register_generated("BIG", meta, Generator::DenseGaussian { seed: 1 })
            .unwrap();
        let (v, report) = aggregate(
            &cluster,
            "BIG",
            AggKind::FrobSq,
            16,
            "t3",
            ExecMode::Simulated,
        )
        .unwrap();
        assert!(v.is_none());
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn partials_cleaned_up_and_tags_reusable() {
        let meta = MatrixMeta::new(8, 8, 4);
        let (cluster, _) = cluster_with(meta, Generator::DenseGaussian { seed: 4 });
        aggregate(&cluster, "M", AggKind::Sum, 2, "same", ExecMode::Real).unwrap();
        // Same tag again: would collide if partials weren't dropped.
        aggregate(&cluster, "M", AggKind::Sum, 2, "same", ExecMode::Real).unwrap();
        assert!(!cluster
            .store()
            .names()
            .iter()
            .any(|n| n.starts_with("__agg_")));
    }

    #[test]
    fn missing_matrix_errors() {
        let cluster = Cluster::provision(ClusterSpec::named("m1.small", 1, 1).unwrap()).unwrap();
        assert!(aggregate(&cluster, "nope", AggKind::Sum, 1, "t", ExecMode::Real).is_err());
    }
}
