//! Error type for planning and optimization.

use std::fmt;

/// Errors raised during program construction, planning or optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A referenced input matrix was not described.
    UnknownInput(String),
    /// Shapes are incompatible at a program node.
    Shape {
        /// Description of the offending node.
        node: String,
        /// Details.
        detail: String,
    },
    /// The program references an expression id outside the arena.
    BadExprId(usize),
    /// A rewrite's precondition was violated (internal invariant).
    Invariant(String),
    /// No deployment satisfies the constraint.
    Infeasible(String),
    /// Cost-model calibration failed (singular system, no samples, ...).
    Calibration(String),
    /// Execution-layer failure.
    Exec(String),
    /// Data was lost that no plan job can recompute (a source input or a
    /// truncated-lineage matrix). Iterative drivers catch this to rewind
    /// to their last checkpoint.
    Unrecoverable {
        /// Matrix whose tiles are gone.
        matrix: String,
        /// Details (which tile, what was tried).
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownInput(n) => write!(f, "unknown input matrix: {n}"),
            CoreError::Shape { node, detail } => write!(f, "shape error at {node}: {detail}"),
            CoreError::BadExprId(id) => write!(f, "expression id {id} out of range"),
            CoreError::Invariant(m) => write!(f, "planner invariant violated: {m}"),
            CoreError::Infeasible(m) => write!(f, "no feasible deployment: {m}"),
            CoreError::Calibration(m) => write!(f, "calibration failed: {m}"),
            CoreError::Exec(m) => write!(f, "execution failed: {m}"),
            CoreError::Unrecoverable { matrix, detail } => {
                write!(f, "unrecoverable data loss in '{matrix}': {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<cumulon_cluster::ClusterError> for CoreError {
    fn from(e: cumulon_cluster::ClusterError) -> Self {
        CoreError::Exec(e.to_string())
    }
}

impl From<cumulon_dfs::DfsError> for CoreError {
    fn from(e: cumulon_dfs::DfsError) -> Self {
        CoreError::Exec(e.to_string())
    }
}

/// Result alias for planning operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            CoreError::UnknownInput("V".into()).to_string(),
            "unknown input matrix: V"
        );
        assert!(CoreError::Infeasible("deadline 1s".into())
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn conversions() {
        let e: CoreError = cumulon_cluster::ClusterError::InvalidSpec("x".into()).into();
        assert!(matches!(e, CoreError::Exec(_)));
        let e: CoreError = cumulon_dfs::DfsError::FileNotFound("/x".into()).into();
        assert!(matches!(e, CoreError::Exec(_)));
    }
}
