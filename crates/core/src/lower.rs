//! Lowering: logical programs → physical plans → executable job DAGs.
//!
//! Lowering happens in two phases:
//!
//! 1. [`build_plan`] decides *what jobs exist*: every `Mul` node becomes a
//!    split-multiply job (plus an Add job when the shared dimension is
//!    split); maximal element-wise/scale/unary regions become single fused
//!    jobs; transposes become transposed tile reads. Split parameters come
//!    from a [`SplitChooser`] — the naive [`UnitSplits`] or the optimizer's
//!    cost-based chooser.
//! 2. [`instantiate`] turns the plan into a [`JobDag`] of real task
//!    closures over a tile store: tasks read tiles, run kernels, charge
//!    their receipts and write results. The same closures serve real and
//!    phantom execution.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cumulon_cluster::error::Result as ClusterResult;
use cumulon_cluster::{Job, JobDag, Task, TaskCtx};
use cumulon_dfs::TileStore;
use cumulon_matrix::ops as mops;
use cumulon_matrix::Tile;

use crate::error::{CoreError, Result};
use crate::expr::{ExprId, ExprNode, InputDesc, NodeInfo, Program};
use crate::physical::{partial_name, FusedExpr, MatRef, MulSplit, OperandStats, PhysJob, PhysPlan};

/// Chooses physical parameters for jobs.
pub trait SplitChooser {
    /// Split for a multiply with the given operand/output statistics.
    fn choose_mul(&self, a: &OperandStats, b: &OperandStats, out: &OperandStats) -> MulSplit;

    /// Output tiles per task for fused/add jobs.
    fn tiles_per_task(&self, out: &OperandStats) -> usize {
        let _ = out;
        1
    }
}

/// The naive chooser: one output tile and one shared band per task.
pub struct UnitSplits;

impl SplitChooser for UnitSplits {
    fn choose_mul(&self, a: &OperandStats, _b: &OperandStats, _out: &OperandStats) -> MulSplit {
        // One task per output tile, whole shared dimension per task: no
        // Add job, maximal task count.
        MulSplit {
            ri: 1,
            rj: 1,
            rk: a.meta.grid().tile_cols.max(1),
        }
    }
}

/// A fixed split for every multiply (used by parameter sweeps).
pub struct FixedSplit(pub MulSplit, pub usize);

impl SplitChooser for FixedSplit {
    fn choose_mul(&self, _a: &OperandStats, _b: &OperandStats, _out: &OperandStats) -> MulSplit {
        self.0
    }

    fn tiles_per_task(&self, _out: &OperandStats) -> usize {
        self.1
    }
}

/// Planning options beyond the split chooser.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Fuse maximal element-wise regions into single jobs (Cumulon's
    /// behaviour). `false` materialises every element-wise operator as its
    /// own job — the MapReduce-style ablation.
    pub fuse: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { fuse: true }
    }
}

/// Builds the physical plan for a program.
///
/// `temp_prefix` namespaces intermediate matrices (give each iteration of
/// an iterative workload a distinct prefix).
pub fn build_plan(
    program: &Program,
    inputs: &BTreeMap<String, InputDesc>,
    chooser: &dyn SplitChooser,
    temp_prefix: &str,
) -> Result<PhysPlan> {
    build_plan_with(
        program,
        inputs,
        chooser,
        temp_prefix,
        PlanOptions::default(),
    )
}

/// [`build_plan`] with explicit [`PlanOptions`].
pub fn build_plan_with(
    program: &Program,
    inputs: &BTreeMap<String, InputDesc>,
    chooser: &dyn SplitChooser,
    temp_prefix: &str,
    options: PlanOptions,
) -> Result<PhysPlan> {
    let info = program.infer(inputs)?;
    let mut b = PlanBuilder {
        program,
        info: &info,
        chooser,
        temp_prefix,
        options,
        plan: PhysPlan::default(),
        materialized: HashMap::new(),
        producer: HashMap::new(),
    };
    for (name, root) in &program.outputs {
        b.ensure_output(*root, name)?;
    }
    Ok(b.plan)
}

struct PlanBuilder<'a> {
    program: &'a Program,
    info: &'a [NodeInfo],
    chooser: &'a dyn SplitChooser,
    temp_prefix: &'a str,
    options: PlanOptions,
    plan: PhysPlan,
    /// Expression → the matrix ref its value is available as.
    materialized: HashMap<ExprId, (MatRef, OperandStats)>,
    /// Matrix name → plan job index that produces it.
    producer: HashMap<String, usize>,
}

impl<'a> PlanBuilder<'a> {
    fn stats(&self, id: ExprId) -> OperandStats {
        OperandStats {
            meta: self.info[id].meta,
            density: self.info[id].density,
            generated: self.info[id].generated,
        }
    }

    fn deps_of(&self, names: &[&str]) -> Vec<usize> {
        let mut deps: Vec<usize> = names
            .iter()
            .filter_map(|n| self.producer.get(*n).copied())
            .collect();
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Materialises `id` under the forced output name.
    fn ensure_output(&mut self, id: ExprId, name: &str) -> Result<()> {
        // If the value is already stored under another name (or is a plain
        // input / transposed input), emit an identity fused job to copy it.
        if let Some((mat, stats)) = self.materialized.get(&id).cloned() {
            self.emit_fused_copy(mat, stats, name)?;
            return Ok(());
        }
        match self.program.node(id)? {
            ExprNode::Input(_) | ExprNode::Transpose(_) => {
                let (mat, stats) = self.operand(id)?;
                self.emit_fused_copy(mat, stats, name)?;
            }
            ExprNode::Mul(_, _) => {
                self.emit_mul(id, Some(name))?;
            }
            ExprNode::Elem(_, _, _) | ExprNode::Scale(_, _) | ExprNode::Unary(_, _) => {
                self.emit_fused(id, Some(name))?;
            }
        }
        Ok(())
    }

    /// Returns a ref for `id`, materialising it if needed.
    fn operand(&mut self, id: ExprId) -> Result<(MatRef, OperandStats)> {
        if let Some(done) = self.materialized.get(&id) {
            return Ok(done.clone());
        }
        let result = match self.program.node(id)? {
            ExprNode::Input(name) => (MatRef::plain(name.clone()), self.stats(id)),
            // Transposition is free at read time over *any* materialised
            // value: materialise the child, flip the transposed flag.
            ExprNode::Transpose(a) => {
                let a = *a;
                let (child, _) = self.operand(a)?;
                (
                    MatRef {
                        name: child.name,
                        transposed: !child.transposed,
                    },
                    self.stats(id),
                )
            }
            ExprNode::Mul(_, _) => self.emit_mul(id, None)?,
            ExprNode::Elem(_, _, _) | ExprNode::Scale(_, _) | ExprNode::Unary(_, _) => {
                self.emit_fused(id, None)?
            }
        };
        self.materialized.insert(id, result.clone());
        Ok(result)
    }

    /// Emits the multiply (and Add, if k-split) jobs for a `Mul` node.
    fn emit_mul(&mut self, id: ExprId, forced: Option<&str>) -> Result<(MatRef, OperandStats)> {
        let ExprNode::Mul(a, b) = self.program.node(id)?.clone() else {
            return Err(CoreError::Invariant("emit_mul on non-mul".into()));
        };
        let (aref, astats) = self.operand(a)?;
        let (bref, bstats) = self.operand(b)?;
        let out_stats = self.stats(id);
        let out_name = forced
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}_m{id}", self.temp_prefix));
        let split = self.chooser.choose_mul(&astats, &bstats, &out_stats);
        let kt = astats.meta.grid().tile_cols;
        let bands = split.k_bands(kt);
        let deps = self.deps_of(&[&aref.name, &bref.name]);
        let mul_idx = self.plan.push(
            PhysJob::Mul {
                a: aref,
                a_stats: astats,
                b: bref,
                b_stats: bstats,
                out: out_name.clone(),
                out_stats,
                split,
            },
            deps,
        );
        let final_idx = if bands > 1 {
            let partials: Vec<String> = (0..bands).map(|k| partial_name(&out_name, k)).collect();
            self.plan.push(
                PhysJob::AddPartials {
                    partials,
                    out: out_name.clone(),
                    out_stats,
                    tiles_per_task: self.chooser.tiles_per_task(&out_stats),
                },
                vec![mul_idx],
            )
        } else {
            mul_idx
        };
        self.producer.insert(out_name.clone(), final_idx);
        let result = (MatRef::plain(out_name), out_stats);
        self.materialized.insert(id, result.clone());
        Ok(result)
    }

    /// Emits a fused job materialising the element-wise region rooted at
    /// `id`.
    fn emit_fused(&mut self, id: ExprId, forced: Option<&str>) -> Result<(MatRef, OperandStats)> {
        let mut inputs: Vec<(MatRef, OperandStats)> = Vec::new();
        let expr = self.fused_tree(id, true, &mut inputs)?;
        let out_stats = self.stats(id);
        let out_name = forced
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}_f{id}", self.temp_prefix));
        let names: Vec<&str> = inputs.iter().map(|(m, _)| m.name.as_str()).collect();
        let deps = self.deps_of(&names);
        let idx = self.plan.push(
            PhysJob::Fused {
                inputs,
                expr,
                out: out_name.clone(),
                out_stats,
                tiles_per_task: self.chooser.tiles_per_task(&out_stats),
            },
            deps,
        );
        self.producer.insert(out_name.clone(), idx);
        let result = (MatRef::plain(out_name), out_stats);
        self.materialized.insert(id, result.clone());
        Ok(result)
    }

    /// Builds the per-tile tree of a fused region; leaves outside the
    /// region are materialised as operands. With fusion disabled
    /// (`options.fuse == false`) only the root operator stays in-tree and
    /// every child materialises as its own job.
    fn fused_tree(
        &mut self,
        id: ExprId,
        root: bool,
        inputs: &mut Vec<(MatRef, OperandStats)>,
    ) -> Result<FusedExpr> {
        let in_region = root || self.options.fuse;
        match self.program.node(id)?.clone() {
            ExprNode::Elem(op, a, b) if in_region => {
                let ta = self.fused_tree(a, false, inputs)?;
                let tb = self.fused_tree(b, false, inputs)?;
                Ok(FusedExpr::Elem(op, Box::new(ta), Box::new(tb)))
            }
            ExprNode::Scale(a, f) if in_region => Ok(FusedExpr::Scale(
                Box::new(self.fused_tree(a, false, inputs)?),
                f,
            )),
            ExprNode::Unary(op, a) if in_region => Ok(FusedExpr::Unary(
                op,
                Box::new(self.fused_tree(a, false, inputs)?),
            )),
            // Region boundary: Input / Transpose / Mul — or any operator
            // when fusion is disabled.
            _ => {
                let (mat, stats) = self.operand(id)?;
                let idx = inputs
                    .iter()
                    .position(|(m, _)| *m == mat)
                    .unwrap_or_else(|| {
                        inputs.push((mat, stats));
                        inputs.len() - 1
                    });
                Ok(FusedExpr::Read(idx))
            }
        }
    }

    fn emit_fused_copy(&mut self, mat: MatRef, stats: OperandStats, out_name: &str) -> Result<()> {
        let deps = self.deps_of(&[&mat.name]);
        let idx = self.plan.push(
            PhysJob::Fused {
                inputs: vec![(mat, stats)],
                expr: FusedExpr::Read(0),
                out: out_name.to_string(),
                out_stats: stats,
                tiles_per_task: self.chooser.tiles_per_task(&stats),
            },
            deps,
        );
        self.producer.insert(out_name.to_string(), idx);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Phase 2: instantiation
// ---------------------------------------------------------------------------

/// Registers the plan's output matrices in the store and builds the
/// executable [`JobDag`].
pub fn instantiate(plan: &PhysPlan, store: &TileStore) -> Result<JobDag> {
    // Register every matrix the plan produces.
    for job in &plan.jobs {
        let meta = match job {
            PhysJob::Mul { out_stats, .. }
            | PhysJob::AddPartials { out_stats, .. }
            | PhysJob::Fused { out_stats, .. } => out_stats.meta,
        };
        for name in job.output_names() {
            store.register(&name, meta)?;
        }
    }
    let mut dag = JobDag::new();
    for (idx, job) in plan.jobs.iter().enumerate() {
        let tasks = match job {
            PhysJob::Mul {
                a,
                a_stats,
                b,
                b_stats,
                out,
                split,
                ..
            } => mul_tasks(a, a_stats, b, b_stats, out, *split),
            PhysJob::AddPartials {
                partials,
                out,
                out_stats,
                tiles_per_task,
            } => add_tasks(partials, out, out_stats, *tiles_per_task),
            PhysJob::Fused {
                inputs,
                expr,
                out,
                out_stats,
                tiles_per_task,
            } => fused_tasks(inputs, expr, out, out_stats, *tiles_per_task),
        };
        dag.push(
            Job::new(format!("{}#{idx}", job.op_label()), job.op_label(), tasks),
            plan.deps[idx].clone(),
        );
    }
    Ok(dag)
}

/// The stored tile `read_ref(_, mat, i, j)` resolves to: `(j, i)` of the
/// underlying matrix when the reference is transposed.
fn stored_coord(mat: &MatRef, i: usize, j: usize) -> (String, usize, usize) {
    if mat.transposed {
        (mat.name.clone(), j, i)
    } else {
        (mat.name.clone(), i, j)
    }
}

/// Reads tile `(i, j)` of a (possibly transposed) matrix reference.
fn read_ref(ctx: &mut TaskCtx, mat: &MatRef, i: usize, j: usize) -> ClusterResult<Arc<Tile>> {
    if mat.transposed {
        let t = ctx.read_tile(&mat.name, j, i)?;
        ctx.charge(mops::transpose_work(&t));
        Ok(Arc::new(t.transpose()))
    } else {
        ctx.read_tile(&mat.name, i, j)
    }
}

fn mul_tasks(
    a: &MatRef,
    a_stats: &OperandStats,
    b: &MatRef,
    b_stats: &OperandStats,
    out: &str,
    split: MulSplit,
) -> Vec<Task> {
    let ga = a_stats.meta.grid();
    let gb = b_stats.meta.grid();
    let (mt, kt, nt) = (ga.tile_rows, ga.tile_cols, gb.tile_cols);
    let bands = split.k_bands(kt);
    let mut tasks = Vec::with_capacity(split.task_count(mt, kt, nt));
    for bi in 0..mt.div_ceil(split.ri) {
        for bj in 0..nt.div_ceil(split.rj) {
            for bk in 0..bands {
                let a_name = a.name.clone();
                let a_transposed = a.transposed;
                let a = a.clone();
                let b = b.clone();
                let out_name = if bands > 1 {
                    partial_name(out, bk)
                } else {
                    out.to_string()
                };
                let i_range = band(bi, split.ri, mt);
                let j_range = band(bj, split.rj, nt);
                let k_range = band(bk, split.rk, kt);
                let hint_i = i_range.start;
                let hint_k = k_range.start;
                // The exact stored tiles the closure below will demand,
                // in read order, so the spill-aware scheduler can
                // prefetch the band instead of guessing from the hint.
                let mut read_set: Vec<(String, usize, usize)> = Vec::new();
                for i in i_range.clone() {
                    for k in k_range.clone() {
                        read_set.push(stored_coord(&a, i, k));
                    }
                }
                for k in k_range.clone() {
                    for j in j_range.clone() {
                        read_set.push(stored_coord(&b, k, j));
                    }
                }
                let task = Task::new(move |ctx| {
                    // Read the A band once (ri × rk tiles).
                    let mut a_tiles: Vec<Vec<Arc<Tile>>> = Vec::with_capacity(i_range.len());
                    for i in i_range.clone() {
                        let mut row = Vec::with_capacity(k_range.len());
                        for k in k_range.clone() {
                            row.push(read_ref(ctx, &a, i, k)?);
                        }
                        a_tiles.push(row);
                    }
                    // Read the B band once (rk × rj tiles).
                    let mut b_tiles: Vec<Vec<Arc<Tile>>> = Vec::with_capacity(k_range.len());
                    for k in k_range.clone() {
                        let mut row = Vec::with_capacity(j_range.len());
                        for j in j_range.clone() {
                            row.push(read_ref(ctx, &b, k, j)?);
                        }
                        b_tiles.push(row);
                    }
                    // Multiply-accumulate each output tile of the band.
                    for (ii, i) in i_range.clone().enumerate() {
                        for (jj, j) in j_range.clone().enumerate() {
                            let mut acc: Option<Tile> = None;
                            for kk in 0..k_range.len() {
                                let at = &a_tiles[ii][kk];
                                let bt = &b_tiles[kk][jj];
                                ctx.charge(mops::mul_work(at, bt));
                                let p = at.mul(bt)?;
                                match &mut acc {
                                    None => acc = Some(p),
                                    Some(c) => {
                                        ctx.charge(mops::add_work(c, &p));
                                        c.add_assign(&p)?;
                                    }
                                }
                            }
                            let acc = acc.expect("k band is never empty");
                            ctx.write_tile(&out_name, i, j, acc)?;
                        }
                    }
                    Ok(())
                });
                // Locality follows the first A tile of the band (A is read
                // ri·rk tiles vs B's rk·rj; close enough for placement).
                let task = if a_transposed {
                    task.with_locality(&a_name, hint_k, hint_i)
                } else {
                    task.with_locality(&a_name, hint_i, hint_k)
                };
                tasks.push(task.with_read_set(read_set));
            }
        }
    }
    tasks
}

fn band(idx: usize, width: usize, total: usize) -> std::ops::Range<usize> {
    let start = idx * width;
    start..((idx + 1) * width).min(total)
}

fn add_tasks(
    partials: &[String],
    out: &str,
    out_stats: &OperandStats,
    tiles_per_task: usize,
) -> Vec<Task> {
    let coords: Vec<(usize, usize)> = out_stats.meta.grid().iter().collect();
    let mut tasks = Vec::new();
    for chunk in coords.chunks(tiles_per_task.max(1)) {
        let chunk: Vec<(usize, usize)> = chunk.to_vec();
        let partials: Vec<String> = partials.to_vec();
        let out = out.to_string();
        let hint = chunk[0];
        let first_partial = partials[0].clone();
        let read_set: Vec<(String, usize, usize)> = chunk
            .iter()
            .flat_map(|&(i, j)| partials.iter().map(move |p| (p.clone(), i, j)))
            .collect();
        tasks.push(
            Task::new(move |ctx| {
                for &(i, j) in &chunk {
                    let mut acc: Option<Tile> = None;
                    for p in &partials {
                        let t = ctx.read_tile(p, i, j)?;
                        match &mut acc {
                            None => acc = Some(Arc::unwrap_or_clone(t)),
                            Some(c) => {
                                ctx.charge(mops::add_work(c, &t));
                                c.add_assign(&t)?;
                            }
                        }
                    }
                    let acc = acc.expect("at least one partial");
                    ctx.write_tile(&out, i, j, acc)?;
                }
                Ok(())
            })
            .with_locality(&first_partial, hint.0, hint.1)
            .with_read_set(read_set),
        );
    }
    tasks
}

fn eval_fused(
    ctx: &mut TaskCtx,
    expr: &FusedExpr,
    inputs: &[(MatRef, OperandStats)],
    i: usize,
    j: usize,
) -> ClusterResult<Tile> {
    match expr {
        FusedExpr::Read(idx) => Ok(Arc::unwrap_or_clone(read_ref(ctx, &inputs[*idx].0, i, j)?)),
        FusedExpr::Elem(op, a, b) => {
            let ta = eval_fused(ctx, a, inputs, i, j)?;
            let tb = eval_fused(ctx, b, inputs, i, j)?;
            ctx.charge(mops::elementwise_work(&ta, &tb));
            Ok(ta.elementwise(&tb, *op)?)
        }
        FusedExpr::Scale(a, f) => {
            let mut t = eval_fused(ctx, a, inputs, i, j)?;
            ctx.charge(mops::map_work(&t));
            t.scale(*f);
            Ok(t)
        }
        FusedExpr::Unary(op, a) => {
            let t = eval_fused(ctx, a, inputs, i, j)?;
            ctx.charge(mops::map_work(&t));
            let op = *op;
            Ok(t.map(move |x| op.apply(x)))
        }
    }
}

fn fused_tasks(
    inputs: &[(MatRef, OperandStats)],
    expr: &FusedExpr,
    out: &str,
    out_stats: &OperandStats,
    tiles_per_task: usize,
) -> Vec<Task> {
    let coords: Vec<(usize, usize)> = out_stats.meta.grid().iter().collect();
    let mut tasks = Vec::new();
    for chunk in coords.chunks(tiles_per_task.max(1)) {
        let chunk: Vec<(usize, usize)> = chunk.to_vec();
        let inputs: Vec<(MatRef, OperandStats)> = inputs.to_vec();
        let expr = expr.clone();
        let out = out.to_string();
        let hint = chunk[0];
        let first = inputs[0].0.clone();
        let read_set: Vec<(String, usize, usize)> = chunk
            .iter()
            .flat_map(|&(i, j)| inputs.iter().map(move |(m, _)| stored_coord(m, i, j)))
            .collect();
        tasks.push(
            Task::new(move |ctx| {
                for &(i, j) in &chunk {
                    let t = eval_fused(ctx, &expr, &inputs, i, j)?;
                    ctx.write_tile(&out, i, j, t)?;
                }
                Ok(())
            })
            .with_locality(
                &first.name,
                if first.transposed { hint.1 } else { hint.0 },
                if first.transposed { hint.0 } else { hint.1 },
            )
            .with_read_set(read_set),
        );
    }
    tasks
}

/// Convenience: build + instantiate in one call with unit splits.
pub fn lower(
    program: &Program,
    inputs: &BTreeMap<String, InputDesc>,
    store: &TileStore,
    temp_prefix: &str,
) -> Result<JobDag> {
    let plan = build_plan(program, inputs, &UnitSplits, temp_prefix)?;
    instantiate(&plan, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ProgramBuilder, UnaryOp};
    use cumulon_cluster::{Cluster, ClusterSpec, ExecMode};
    use cumulon_matrix::gen::Generator;
    use cumulon_matrix::tile::ElemOp;
    use cumulon_matrix::{LocalMatrix, MatrixMeta};

    fn cluster() -> Cluster {
        Cluster::provision(ClusterSpec::named("m1.large", 3, 2).unwrap()).unwrap()
    }

    fn load(c: &Cluster, name: &str, rows: usize, cols: usize, seed: u64) -> LocalMatrix {
        let meta = MatrixMeta::new(rows, cols, 4);
        let m = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform {
                seed,
                lo: -1.0,
                hi: 1.0,
            },
        );
        c.store().put_local(name, &m).unwrap();
        m
    }

    fn descs(c: &Cluster, names: &[&str]) -> BTreeMap<String, InputDesc> {
        names
            .iter()
            .map(|n| {
                let meta = c.store().lookup(n).unwrap().meta;
                (n.to_string(), InputDesc::dense(meta))
            })
            .collect()
    }

    fn run(
        c: &Cluster,
        program: &Program,
        inputs: &BTreeMap<String, InputDesc>,
        chooser: &dyn SplitChooser,
    ) -> cumulon_cluster::RunReport {
        let plan = build_plan(program, inputs, chooser, "tmp").unwrap();
        let dag = instantiate(&plan, c.store()).unwrap();
        c.run(&dag, ExecMode::Real).unwrap()
    }

    #[test]
    fn simple_multiply_unit_split() {
        let c = cluster();
        let a = load(&c, "A", 10, 8, 1);
        let b = load(&c, "B", 8, 6, 2);
        let mut pb = ProgramBuilder::new();
        let (ia, ib) = (pb.input("A"), pb.input("B"));
        let m = pb.mul(ia, ib);
        pb.output("C", m);
        let program = pb.build();
        let inputs = descs(&c, &["A", "B"]);
        run(&c, &program, &inputs, &UnitSplits);
        let got = c.store().get_local("C").unwrap();
        assert!(got.max_abs_diff(&a.matmul(&b).unwrap()).unwrap() < 1e-9);
    }

    #[test]
    fn k_split_produces_add_job_and_same_result() {
        let c = cluster();
        let a = load(&c, "A", 8, 12, 3);
        let b = load(&c, "B", 12, 8, 4);
        let mut pb = ProgramBuilder::new();
        let (ia, ib) = (pb.input("A"), pb.input("B"));
        let m = pb.mul(ia, ib);
        pb.output("C", m);
        let program = pb.build();
        let inputs = descs(&c, &["A", "B"]);
        // Kt = 3 tiles; rk = 1 → 3 bands → Mul + Add jobs.
        let plan = build_plan(&program, &inputs, &FixedSplit(MulSplit::unit(), 2), "tmp").unwrap();
        assert_eq!(plan.jobs.len(), 2);
        assert!(matches!(plan.jobs[1], PhysJob::AddPartials { .. }));
        let dag = instantiate(&plan, c.store()).unwrap();
        c.run(&dag, ExecMode::Real).unwrap();
        let got = c.store().get_local("C").unwrap();
        assert!(got.max_abs_diff(&a.matmul(&b).unwrap()).unwrap() < 1e-9);
    }

    #[test]
    fn banded_split_fewer_tasks_same_result() {
        let c = cluster();
        let a = load(&c, "A", 12, 12, 5);
        let b = load(&c, "B", 12, 12, 6);
        let mut pb = ProgramBuilder::new();
        let (ia, ib) = (pb.input("A"), pb.input("B"));
        let m = pb.mul(ia, ib);
        pb.output("C", m);
        let program = pb.build();
        let inputs = descs(&c, &["A", "B"]);
        let split = MulSplit {
            ri: 2,
            rj: 3,
            rk: 2,
        };
        let plan = build_plan(&program, &inputs, &FixedSplit(split, 1), "tmp").unwrap();
        // 3 tile-rows/2 → 2;  3 tile-cols/3 → 1;  3 k/2 → 2 bands.
        #[allow(clippy::identity_op)]
        {
            assert_eq!(plan.jobs[0].task_count(), 2 * 1 * 2);
        }
        let dag = instantiate(&plan, c.store()).unwrap();
        c.run(&dag, ExecMode::Real).unwrap();
        let got = c.store().get_local("C").unwrap();
        assert!(got.max_abs_diff(&a.matmul(&b).unwrap()).unwrap() < 1e-9);
    }

    #[test]
    fn transposed_reads_gram_matrix() {
        let c = cluster();
        let a = load(&c, "A", 10, 6, 7);
        let mut pb = ProgramBuilder::new();
        let ia = pb.input("A");
        let at = pb.transpose(ia);
        let g = pb.mul(at, ia); // AᵀA
        pb.output("G", g);
        let program = pb.build();
        let inputs = descs(&c, &["A"]);
        run(&c, &program, &inputs, &UnitSplits);
        let got = c.store().get_local("G").unwrap();
        let expect = a.transpose().matmul(&a).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
    }

    #[test]
    fn fused_elementwise_single_job() {
        let c = cluster();
        let a = load(&c, "A", 9, 7, 8);
        let b = load(&c, "B", 9, 7, 9);
        let mut pb = ProgramBuilder::new();
        let (ia, ib) = (pb.input("A"), pb.input("B"));
        // |2(A + B)| ⊙ A — one fused job.
        let s = pb.add(ia, ib);
        let sc = pb.scale(s, 2.0);
        let ab = pb.unary(UnaryOp::Abs, sc);
        let m = pb.elem_mul(ab, ia);
        pb.output("O", m);
        let program = pb.build();
        let inputs = descs(&c, &["A", "B"]);
        let plan = build_plan(&program, &inputs, &UnitSplits, "tmp").unwrap();
        assert_eq!(plan.jobs.len(), 1, "whole element-wise region fuses");
        let dag = instantiate(&plan, c.store()).unwrap();
        c.run(&dag, ExecMode::Real).unwrap();
        let got = c.store().get_local("O").unwrap();
        let mut expect = a.elementwise(&b, ElemOp::Add).unwrap();
        expect.scale(2.0);
        let expect = expect.map(f64::abs).elementwise(&a, ElemOp::Mul).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
    }

    #[test]
    fn mul_inside_elementwise_materializes() {
        let c = cluster();
        let a = load(&c, "A", 8, 8, 10);
        let mut pb = ProgramBuilder::new();
        let ia = pb.input("A");
        let sq = pb.mul(ia, ia); // A²
        let diff = pb.sub(sq, ia); // A² − A : fused over materialised A²
        pb.output("D", diff);
        let program = pb.build();
        let inputs = descs(&c, &["A"]);
        let plan = build_plan(&program, &inputs, &UnitSplits, "tmp").unwrap();
        assert_eq!(plan.jobs.len(), 2);
        assert!(matches!(plan.jobs[0], PhysJob::Mul { .. }));
        assert!(matches!(plan.jobs[1], PhysJob::Fused { .. }));
        assert_eq!(plan.deps[1], vec![0], "fused job depends on the multiply");
        let dag = instantiate(&plan, c.store()).unwrap();
        c.run(&dag, ExecMode::Real).unwrap();
        let got = c.store().get_local("D").unwrap();
        let expect = a.matmul(&a).unwrap().elementwise(&a, ElemOp::Sub).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
    }

    #[test]
    fn output_aliasing_input_copies() {
        let c = cluster();
        let a = load(&c, "A", 4, 4, 11);
        let mut pb = ProgramBuilder::new();
        let ia = pb.input("A");
        pb.output("ACopy", ia);
        let program = pb.build();
        let inputs = descs(&c, &["A"]);
        run(&c, &program, &inputs, &UnitSplits);
        let got = c.store().get_local("ACopy").unwrap();
        assert_eq!(got.max_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn two_outputs_sharing_intermediate() {
        let c = cluster();
        let a = load(&c, "A", 6, 6, 12);
        let mut pb = ProgramBuilder::new();
        let ia = pb.input("A");
        let sq = pb.mul(ia, ia);
        pb.output("SQ", sq);
        let cube = pb.mul(sq, ia);
        pb.output("CUBE", cube);
        let program = pb.build();
        let inputs = descs(&c, &["A"]);
        run(&c, &program, &inputs, &UnitSplits);
        let sq_m = a.matmul(&a).unwrap();
        assert!(
            c.store()
                .get_local("SQ")
                .unwrap()
                .max_abs_diff(&sq_m)
                .unwrap()
                < 1e-9
        );
        let cube_m = sq_m.matmul(&a).unwrap();
        assert!(
            c.store()
                .get_local("CUBE")
                .unwrap()
                .max_abs_diff(&cube_m)
                .unwrap()
                < 1e-9
        );
    }

    #[test]
    fn phantom_mode_end_to_end() {
        let c = cluster();
        let meta = MatrixMeta::new(4000, 4000, 1000);
        c.store()
            .register_generated("BIG", meta, Generator::DenseGaussian { seed: 1 })
            .unwrap();
        let mut pb = ProgramBuilder::new();
        let ia = pb.input("BIG");
        let m = pb.mul(ia, ia);
        pb.output("BIG2", m);
        let program = pb.build();
        let mut inputs = BTreeMap::new();
        inputs.insert("BIG".into(), InputDesc::dense(meta));
        let plan = build_plan(&program, &inputs, &UnitSplits, "tmp").unwrap();
        let dag = instantiate(&plan, c.store()).unwrap();
        let report = c.run(&dag, ExecMode::Simulated).unwrap();
        // 1.28e11 flops over six m1.large slots: tens of simulated seconds.
        assert!(report.makespan_s > 10.0, "makespan {}", report.makespan_s);
        let job = &report.jobs[0];
        assert!(job.receipt.work.flops > 1e11);
        assert!(job.receipt.write.bytes > 100_000_000);
    }

    #[test]
    fn fused_chain_on_transposed_input() {
        let c = cluster();
        let a = load(&c, "A", 6, 9, 13);
        let mut pb = ProgramBuilder::new();
        let ia = pb.input("A");
        let t = pb.transpose(ia);
        let sc = pb.scale(t, -1.0);
        pb.output("NT", sc);
        let program = pb.build();
        let inputs = descs(&c, &["A"]);
        run(&c, &program, &inputs, &UnitSplits);
        let got = c.store().get_local("NT").unwrap();
        let mut expect = a.transpose();
        expect.scale(-1.0);
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-12);
    }
}

#[cfg(test)]
mod fusion_ablation_tests {
    use super::*;
    use crate::expr::{ProgramBuilder, UnaryOp};
    use cumulon_cluster::{Cluster, ClusterSpec, ExecMode};
    use cumulon_matrix::gen::Generator;
    use cumulon_matrix::{LocalMatrix, MatrixMeta};

    #[test]
    fn no_fusion_materialises_every_operator() {
        let meta = MatrixMeta::new(8, 8, 4);
        let mut pb = ProgramBuilder::new();
        let a = pb.input("A");
        let b = pb.input("B");
        // abs(2(A + B)) ⊙ A: four element-wise operators.
        let s = pb.add(a, b);
        let sc = pb.scale(s, 2.0);
        let ab = pb.unary(UnaryOp::Abs, sc);
        let m = pb.elem_mul(ab, a);
        pb.output("O", m);
        let program = pb.build();
        let mut inputs = BTreeMap::new();
        inputs.insert("A".to_string(), InputDesc::dense(meta));
        inputs.insert("B".to_string(), InputDesc::dense(meta));

        let fused = build_plan(&program, &inputs, &UnitSplits, "t").unwrap();
        assert_eq!(fused.jobs.len(), 1);
        let unfused = build_plan_with(
            &program,
            &inputs,
            &UnitSplits,
            "u",
            PlanOptions { fuse: false },
        )
        .unwrap();
        assert_eq!(unfused.jobs.len(), 4, "one job per element-wise operator");

        // Same numbers either way.
        let cluster = Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        let am = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 1 });
        let bm = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 2 });
        cluster.store().put_local("A", &am).unwrap();
        cluster.store().put_local("B", &bm).unwrap();

        let dag_f = instantiate(&fused, cluster.store()).unwrap();
        let rf = cluster.run(&dag_f, ExecMode::Real).unwrap();
        let out_fused = cluster.store().get_local("O").unwrap();
        cluster.store().drop_matrix("O").unwrap();
        let dag_u = instantiate(&unfused, cluster.store()).unwrap();
        let ru = cluster.run(&dag_u, ExecMode::Real).unwrap();
        let out_unfused = cluster.store().get_local("O").unwrap();
        assert!(out_fused.max_abs_diff(&out_unfused).unwrap() < 1e-12);
        // And the unfused plan pays for it in time (extra materialisation
        // + extra task startups).
        assert!(
            ru.makespan_s > rf.makespan_s,
            "{} !> {}",
            ru.makespan_s,
            rf.makespan_s
        );
    }
}
