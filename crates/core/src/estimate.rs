//! Analytic cost estimation: physical plans → predicted time and cost.
//!
//! The estimator never looks inside the cluster simulator. It combines:
//!
//! * **analytic per-task features** derived from the physical plan (tile
//!   counts, densities, split parameters, replication, a locality
//!   assumption);
//! * a **fitted task-time model** ([`crate::calibrate::CostModel`]) —
//!   coefficients regressed from benchmark runs;
//! * a **wave model** of job completion: `⌈tasks / slots⌉` waves of the
//!   mean task time plus a straggler tail correction
//!   `σ·√(2·ln(min(tasks, slots)))` from extreme-value theory;
//! * **plan composition** over topological levels, with jobs in a level
//!   sharing the slot pool;
//! * **hour-quantized billing** for the dollar figure.

use cumulon_cluster::billing::{cluster_cost, BillingPolicy};
use cumulon_cluster::instances::InstanceType;
use cumulon_cluster::job::GEN_FLOPS_PER_CELL;
use serde::{Deserialize, Serialize};

use crate::calibrate::{CostModel, OpCoefficients};
use crate::error::{CoreError, Result};
use crate::physical::{MulSplit, OperandStats, PhysJob, PhysPlan};

/// The deployment a plan is being estimated for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterView {
    /// Instance type.
    pub instance: InstanceType,
    /// Number of nodes.
    pub nodes: u32,
    /// Task slots per node.
    pub slots: u32,
    /// DFS replication factor.
    pub replication: u32,
}

impl ClusterView {
    /// Total slots in the cluster.
    pub fn total_slots(&self) -> u32 {
        self.nodes * self.slots
    }

    /// Probability an arbitrary stored tile has a replica on a given node.
    pub fn base_locality(&self) -> f64 {
        (self.replication as f64 / self.nodes as f64).min(1.0)
    }

    /// Locality assumed for a task's *hinted* input: the scheduler prefers
    /// node-local tasks, so hinted reads are local far more often than
    /// chance. The boost is an empirical constant validated by E5.
    pub fn hinted_locality(&self) -> f64 {
        (self.base_locality() + 0.6).min(1.0)
    }
}

/// Analytic per-task resource features, mirroring
/// [`cumulon_cluster::TaskReceipt`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskFeatures {
    /// Kernel flops.
    pub flops: f64,
    /// Bytes read from node-local replicas.
    pub local_read: f64,
    /// Bytes read over the network.
    pub remote_read: f64,
    /// Bytes written to the local replica.
    pub local_write: f64,
    /// Bytes written to remote replicas.
    pub remote_write: f64,
    /// Peak resident memory, MB.
    pub mem_mb: f64,
    /// DFS file operations (tile reads + writes; generated reads are free).
    pub io_ops: f64,
    /// Out-of-core traffic: bytes re-read from the local-disk spill tier
    /// when the working set exceeds the memory budget (zero when tiles
    /// stay resident). Priced by the disk-tier coefficient `c₇`.
    pub spill_bytes: f64,
}

/// Bytes one tile of a matrix occupies, on average, given its stats.
fn avg_tile_bytes(s: &OperandStats) -> f64 {
    s.meta.stored_bytes_at_density(s.density) as f64 / s.meta.tile_count() as f64
}

/// Average megabytes per tile of an operand at its density.
pub fn tile_mb(s: &OperandStats) -> f64 {
    avg_tile_bytes(s) / 1e6
}

/// Splits `bytes` of reads into (local, remote) under locality `rho`.
fn split_read(bytes: f64, rho: f64) -> (f64, f64) {
    (bytes * rho, bytes * (1.0 - rho))
}

/// Read features of `tiles` tiles of an operand: generated operands cost
/// generation flops instead of I/O.
fn read_cost(s: &OperandStats, tiles: f64, rho: f64) -> TaskFeatures {
    let tile_cells = (s.meta.rows as f64 * s.meta.cols as f64) / s.meta.tile_count() as f64;
    if s.generated {
        return TaskFeatures {
            flops: GEN_FLOPS_PER_CELL * tile_cells * tiles,
            mem_mb: avg_tile_bytes(s) * tiles / 1e6,
            ..Default::default()
        };
    }
    let bytes = avg_tile_bytes(s) * tiles;
    let (local, remote) = split_read(bytes, rho);
    TaskFeatures {
        local_read: local,
        remote_read: remote,
        mem_mb: bytes / 1e6,
        io_ops: tiles,
        ..Default::default()
    }
}

/// Write features of `tiles` output tiles: one local replica plus
/// `replication − 1` remote copies (capped by the node count).
fn write_cost(s: &OperandStats, tiles: f64, view: &ClusterView) -> TaskFeatures {
    let bytes = avg_tile_bytes(s) * tiles;
    let replicas = view.replication.min(view.nodes).max(1) as f64;
    TaskFeatures {
        local_write: bytes,
        remote_write: bytes * (replicas - 1.0),
        mem_mb: bytes / 1e6,
        io_ops: tiles,
        ..Default::default()
    }
}

fn add_features(a: TaskFeatures, b: TaskFeatures) -> TaskFeatures {
    TaskFeatures {
        flops: a.flops + b.flops,
        local_read: a.local_read + b.local_read,
        remote_read: a.remote_read + b.remote_read,
        local_write: a.local_write + b.local_write,
        remote_write: a.remote_write + b.remote_write,
        mem_mb: a.mem_mb + b.mem_mb,
        io_ops: a.io_ops + b.io_ops,
        spill_bytes: a.spill_bytes + b.spill_bytes,
    }
}

/// Average dimensions of one tile of an operand (tiles may be rectangular
/// when a matrix dimension is narrower than the tile size, and ragged at
/// the trailing edges).
fn avg_tile_dims(s: &OperandStats) -> (f64, f64) {
    let g = s.meta.grid();
    (
        s.meta.rows as f64 / g.tile_rows as f64,
        s.meta.cols as f64 / g.tile_cols as f64,
    )
}

/// Average cells per tile.
fn avg_tile_cells(s: &OperandStats) -> f64 {
    let (r, c) = avg_tile_dims(s);
    r * c
}

/// Estimated flops of multiplying one tile of `a` by one tile of `b` at
/// the operands' densities (mirrors [`cumulon_matrix::ops::mul_work`]).
fn tile_mul_flops(a: &OperandStats, b: &OperandStats) -> f64 {
    let (ar, ac) = avg_tile_dims(a);
    let (_, bc) = avg_tile_dims(b);
    2.0 * ar * ac * bc * (a.density * b.density).clamp(0.0, 1.0)
}

/// Per-task features and task count for one physical job.
pub fn job_features(job: &PhysJob, view: &ClusterView) -> (usize, TaskFeatures) {
    match job {
        PhysJob::Mul {
            a_stats,
            b_stats,
            out_stats,
            split,
            ..
        } => mul_features(a_stats, b_stats, out_stats, *split, view),
        PhysJob::AddPartials {
            partials,
            out_stats,
            tiles_per_task,
            ..
        } => {
            let n_tasks = out_stats
                .meta
                .tile_count()
                .div_ceil((*tiles_per_task).max(1));
            let tiles = (*tiles_per_task).max(1) as f64;
            let reads = read_cost(
                out_stats,
                tiles * partials.len() as f64,
                view.hinted_locality(),
            );
            let writes = write_cost(out_stats, tiles, view);
            let flops = TaskFeatures {
                flops: tiles
                    * partials.len() as f64
                    * out_stats.density
                    * avg_tile_cells(out_stats),
                ..Default::default()
            };
            (n_tasks, add_features(add_features(reads, writes), flops))
        }
        PhysJob::Fused {
            inputs,
            expr,
            out_stats,
            tiles_per_task,
            ..
        } => {
            let n_tasks = out_stats
                .meta
                .tile_count()
                .div_ceil((*tiles_per_task).max(1));
            let tiles = (*tiles_per_task).max(1) as f64;
            let mut f = TaskFeatures::default();
            for (idx, (_, s)) in inputs.iter().enumerate() {
                let rho = if idx == 0 {
                    view.hinted_locality()
                } else {
                    view.base_locality()
                };
                f = add_features(f, read_cost(s, tiles, rho));
            }
            f = add_features(f, write_cost(out_stats, tiles, view));
            f.flops += expr.op_count() as f64 * tiles * avg_tile_cells(out_stats);
            (n_tasks, f)
        }
    }
}

fn mul_features(
    a: &OperandStats,
    b: &OperandStats,
    out: &OperandStats,
    split: MulSplit,
    view: &ClusterView,
) -> (usize, TaskFeatures) {
    let ga = a.meta.grid();
    let gb = b.meta.grid();
    let (mt, kt, nt) = (ga.tile_rows, ga.tile_cols, gb.tile_cols);
    let n_tasks = split.task_count(mt, kt, nt);
    // Effective band extents (last bands may be ragged; use the average).
    let ri = mt as f64 / mt.div_ceil(split.ri) as f64;
    let rj = nt as f64 / nt.div_ceil(split.rj) as f64;
    let rk = kt as f64 / kt.div_ceil(split.rk) as f64;

    let a_reads = read_cost(a, ri * rk, view.hinted_locality());
    let b_reads = read_cost(b, rk * rj, view.base_locality());
    let writes = write_cost(out, ri * rj, view);
    let mul_flops = TaskFeatures {
        flops: tile_mul_flops(a, b) * ri * rj * rk
            // accumulating rk partial tiles into each output tile
            + (rk - 1.0).max(0.0) * ri * rj * out.density * avg_tile_cells(out),
        ..Default::default()
    };
    let f = add_features(
        add_features(a_reads, b_reads),
        add_features(writes, mul_flops),
    );
    (n_tasks, f)
}

/// The flop rate a fitted model *implies* for pure compute on one
/// uncontended slot, in GFLOP/s: the marginal seconds per flop is read
/// off as `predict(10⁹ flops) − predict(0)` so the startup intercept
/// cancels. Lets callers compare the cost model's CPU coefficient
/// directly against measured kernel rates (see
/// [`crate::calibrate::KernelProfile`]) — if the two disagree, plan
/// estimates are systematically skewed.
pub fn model_implied_gflops(coeffs: &OpCoefficients, instance: &InstanceType) -> f64 {
    let flops_f = TaskFeatures {
        flops: 1e9,
        ..Default::default()
    };
    let zero_f = TaskFeatures::default();
    let per_gigaflop = coeffs.predict(instance, 1, &flops_f) - coeffs.predict(instance, 1, &zero_f);
    if per_gigaflop <= 0.0 {
        return f64::INFINITY;
    }
    1.0 / per_gigaflop
}

/// Wave-model job completion time given a mean task time, the task count
/// and the fitted straggler sigma (closed-form approximation).
pub fn job_time_s(mean_task_s: f64, n_tasks: usize, total_slots: u32, sigma: f64) -> f64 {
    if n_tasks == 0 {
        return 0.0;
    }
    let s = total_slots.max(1) as usize;
    let waves = n_tasks.div_ceil(s) as f64;
    let tail_k = n_tasks.min(s) as f64;
    let tail = sigma * (2.0 * tail_k.max(1.0).ln()).sqrt();
    mean_task_s * (waves + tail)
}

/// Monte-Carlo job completion time: simulates greedy list scheduling of
/// `n_tasks` lognormal task durations over `total_slots` slots, averaged
/// over `trials` — the paper's *simulation* technique for job-time
/// prediction, as opposed to the closed-form wave model above. More
/// accurate when waves are ragged or sigma is large; costs O(trials · n).
pub fn job_time_mc(
    mean_task_s: f64,
    n_tasks: usize,
    total_slots: u32,
    sigma: f64,
    seed: u64,
    trials: usize,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    if n_tasks == 0 {
        return 0.0;
    }
    let s = (total_slots.max(1) as usize).min(n_tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    // Greedy list scheduling: each task goes to the earliest-free slot.
    let mut free_at = vec![0.0f64; s];
    for _ in 0..trials.max(1) {
        free_at.iter_mut().for_each(|t| *t = 0.0);
        for _ in 0..n_tasks {
            let duration = if sigma == 0.0 {
                mean_task_s
            } else {
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random_range(0.0f64..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean_task_s * (sigma * z - sigma * sigma / 2.0).exp()
            };
            // Earliest-free slot.
            let (slot, _) = free_at
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("at least one slot");
            free_at[slot] += duration;
        }
        total += free_at.iter().copied().fold(0.0, f64::max);
    }
    total / trials.max(1) as f64
}

/// Which job-completion-time predictor [`estimate_plan`] composes with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobTimeModel {
    /// Closed-form wave approximation (fast; the default).
    WaveApprox,
    /// Monte-Carlo list-scheduling simulation with this many trials.
    MonteCarlo {
        /// Simulation trials per job.
        trials: usize,
        /// RNG seed (deterministic predictions).
        seed: u64,
    },
}

impl JobTimeModel {
    /// Predicted completion time for one job under this model.
    pub fn job_time(&self, mean_task_s: f64, n_tasks: usize, slots: u32, sigma: f64) -> f64 {
        match *self {
            JobTimeModel::WaveApprox => job_time_s(mean_task_s, n_tasks, slots, sigma),
            JobTimeModel::MonteCarlo { trials, seed } => {
                job_time_mc(mean_task_s, n_tasks, slots, sigma, seed, trials)
            }
        }
    }
}

/// Expected-failure model for deployment planning: how often nodes die
/// and tasks flake, so the optimizer can price the *expected* rework of
/// lineage recovery into a plan instead of assuming a perfect cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures of a single node, seconds. Cluster-wide
    /// failure rate scales with the node count.
    pub node_mtbf_s: f64,
    /// Independent probability that any task attempt fails and is retried.
    pub task_failure_prob: f64,
}

impl FailureModel {
    /// A perfectly reliable cluster (no overhead).
    pub fn none() -> Self {
        FailureModel {
            node_mtbf_s: f64::INFINITY,
            task_failure_prob: 0.0,
        }
    }

    /// Expected node failures over a run of `makespan_s` on `nodes` nodes.
    pub fn expected_node_failures(&self, nodes: u32, makespan_s: f64) -> f64 {
        if !self.node_mtbf_s.is_finite() || self.node_mtbf_s <= 0.0 {
            return 0.0;
        }
        nodes as f64 * makespan_s / self.node_mtbf_s
    }

    /// Expected makespan under failures, from the failure-free estimate.
    ///
    /// Two terms:
    /// * task retries inflate every task by the expected attempt count
    ///   `1 / (1 − p)`;
    /// * each node death forces rework. At replication 1 a death loses
    ///   `1/nodes` of the stored intermediates, and the average death
    ///   lands mid-run, so the expected rework per failure is
    ///   `T / (2·nodes)` — multiplied by the expected failure count the
    ///   per-node term cancels and overhead grows with `T²/mtbf`, which
    ///   is exactly why long uncheckpointed runs are priced badly. At
    ///   replication ≥ 2 stored data survives a single death and only
    ///   in-flight work and re-replication are lost (a small fixed
    ///   fraction per failure).
    pub fn expected_makespan(&self, fail_free_s: f64, view: &ClusterView) -> f64 {
        let p = self.task_failure_prob.clamp(0.0, 0.95);
        let t = fail_free_s / (1.0 - p);
        let failures = self.expected_node_failures(view.nodes, t);
        if failures == 0.0 {
            return t;
        }
        let rework_frac = if view.replication <= 1 { 0.5 } else { 0.05 };
        t * (1.0 + failures * rework_frac / view.nodes as f64)
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel::none()
    }
}

/// Spot-market revocation hazard for deployment planning: how often the
/// market reclaims a spot cluster, as a function of bid headroom over the
/// mean spot price. Exponential in the headroom — bidding exactly the
/// mean price means riding every excursion (the base rate); each unit of
/// headroom (as a fraction of the on-demand price) damps the rate by
/// `exp(-decay · headroom)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotHazard {
    /// Mean spot price as a fraction of the on-demand price (what you
    /// actually pay while running).
    pub mean_price_fraction: f64,
    /// Bulk revocations per hour when bidding exactly the mean price.
    pub base_rate_per_hour: f64,
    /// Exponential damping of the rate per unit of bid headroom.
    pub decay: f64,
    /// Seconds to reacquire capacity and resume after a revocation.
    pub restart_overhead_s: f64,
}

impl SpotHazard {
    /// A typical 2013-era spot market: spot trades around a third of
    /// on-demand, bidding at the mean gets revoked roughly once every
    /// five hours, and headroom pays off quickly.
    pub fn typical() -> Self {
        SpotHazard {
            mean_price_fraction: 0.35,
            base_rate_per_hour: 0.2,
            decay: 6.0,
            restart_overhead_s: 120.0,
        }
    }

    /// Revocations per hour for a bid at `bid_fraction` of the on-demand
    /// price. Bidding below the mean price is treated as bidding at it
    /// (the cluster would never start otherwise).
    pub fn revocation_rate(&self, bid_fraction: f64) -> f64 {
        let headroom = (bid_fraction - self.mean_price_fraction).max(0.0);
        self.base_rate_per_hour * (-self.decay * headroom).exp()
    }

    /// Expected `(makespan_s, rework_s)` of a run whose failure-free
    /// makespan is `fail_free_s`, on spot capacity at `bid_fraction` with
    /// checkpoints every `checkpoint_interval_s` costing
    /// `checkpoint_write_s` each.
    ///
    /// First-order model: the run pays every checkpoint write, and each
    /// expected revocation costs half a checkpoint interval of redone
    /// work (the average revocation lands mid-interval) plus the restart
    /// overhead. A zero or negative interval means no checkpoints — a
    /// revocation then redoes half the *whole run*.
    pub fn expected_spot_makespan(
        &self,
        fail_free_s: f64,
        bid_fraction: f64,
        checkpoint_interval_s: f64,
        checkpoint_write_s: f64,
    ) -> (f64, f64) {
        let (n_ckpts, exposure_s) = if checkpoint_interval_s > 0.0 {
            (
                (fail_free_s / checkpoint_interval_s).floor(),
                checkpoint_interval_s,
            )
        } else {
            (0.0, fail_free_s)
        };
        let base = fail_free_s + n_ckpts * checkpoint_write_s.max(0.0);
        let rate = self.revocation_rate(bid_fraction);
        let expected_revocations = rate * base / 3600.0;
        let rework_s = expected_revocations * (exposure_s / 2.0 + self.restart_overhead_s);
        (base + rework_s, rework_s)
    }
}

impl Default for SpotHazard {
    fn default() -> Self {
        SpotHazard::typical()
    }
}

/// Full plan estimate on a deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEstimate {
    /// Per-job `(mean task seconds, task count)` in plan order.
    pub jobs: Vec<(f64, usize)>,
    /// Estimated end-to-end makespan, seconds.
    pub makespan_s: f64,
    /// Estimated cost, dollars (hourly billing).
    pub cost_dollars: f64,
}

/// Estimates a physical plan on a deployment with a fitted cost model,
/// priced under hourly billing.
pub fn estimate_plan(
    plan: &PhysPlan,
    view: &ClusterView,
    model: &CostModel,
) -> Result<PlanEstimate> {
    estimate_plan_with(plan, view, model, BillingPolicy::HourlyCeil)
}

/// [`estimate_plan`] under an explicit billing policy (the per-second
/// ablation removes the step structure from cost curves).
pub fn estimate_plan_with(
    plan: &PhysPlan,
    view: &ClusterView,
    model: &CostModel,
    billing: BillingPolicy,
) -> Result<PlanEstimate> {
    estimate_plan_full(plan, view, model, billing, JobTimeModel::WaveApprox)
}

/// The fully-general estimator: explicit billing *and* job-time model.
pub fn estimate_plan_full(
    plan: &PhysPlan,
    view: &ClusterView,
    model: &CostModel,
    billing: BillingPolicy,
    job_model: JobTimeModel,
) -> Result<PlanEstimate> {
    let coeffs = model
        .for_instance(view.instance.name)
        .ok_or_else(|| CoreError::Calibration(format!("no model for {}", view.instance.name)))?;
    let mut per_job = Vec::with_capacity(plan.jobs.len());
    for job in &plan.jobs {
        let (n_tasks, features) = job_features(job, view);
        let mean = coeffs.predict(&view.instance, view.slots, &features);
        per_job.push((mean, n_tasks));
    }
    // Compose over topological levels: jobs in a level share the slot pool.
    let total_slots = view.total_slots();
    let mut makespan = 0.0;
    for level in plan.levels() {
        let pooled_tasks: usize = level.iter().map(|&j| per_job[j].1).sum();
        let max_mean = level.iter().map(|&j| per_job[j].0).fold(0.0, f64::max);
        let weighted_mean = if pooled_tasks == 0 {
            0.0
        } else {
            level
                .iter()
                .map(|&j| per_job[j].0 * per_job[j].1 as f64)
                .sum::<f64>()
                / pooled_tasks as f64
        };
        let level_time = job_model
            .job_time(weighted_mean, pooled_tasks, total_slots, coeffs.sigma)
            .max(max_mean);
        makespan += level_time;
    }
    let cost = cluster_cost(billing, view.nodes, view.instance.price_per_hour, makespan);
    Ok(PlanEstimate {
        jobs: per_job,
        makespan_s: makespan,
        cost_dollars: cost,
    })
}

/// Splits one task's fitted time prediction into the trace subsystem's
/// phase categories by coefficient group of the calibration model
/// (see [`crate::calibrate::featurize`]): startup is the launch
/// intercept (`c₀`), overhead is the per-file-operation term (`c₆·ops`),
/// compute is
/// the contention-adjusted flop term (`c₁`), read is local + remote read
/// bandwidth plus the disk-tier spill term (`c₂ + c₃ + c₇` — re-reading a
/// demoted tile from the local spill segments is a read, wherever the
/// byte physically came from), write is local + remote write bandwidth
/// (`c₄ + c₅`). Comparable against a traced run's measured
/// [`cumulon_trace::PhaseBreakdown`] per span.
pub fn predicted_task_phases(
    coeffs: &crate::calibrate::OpCoefficients,
    instance: &InstanceType,
    slots: u32,
    f: &TaskFeatures,
) -> cumulon_trace::PhaseBreakdown {
    let x = crate::calibrate::featurize(instance, slots, f);
    let c = &coeffs.c;
    cumulon_trace::PhaseBreakdown {
        startup_s: c[0] * x[0],
        overhead_s: c[6] * x[6],
        compute_s: c[1] * x[1],
        read_s: c[2] * x[2] + c[3] * x[3] + c[7] * x[7],
        write_s: c[4] * x[4] + c[5] * x[5],
    }
}

/// Predicted aggregate phase breakdown of a whole plan: per-task
/// predicted phases times the task count, summed over jobs. This is the
/// analytic counterpart of [`cumulon_trace::TraceLog::phase_totals`], so
/// `log.diff_against(predict_plan_phases(..)?, est.makespan_s)` lines the
/// optimizer's model up against what a traced run actually spent.
pub fn predict_plan_phases(
    plan: &PhysPlan,
    view: &ClusterView,
    model: &CostModel,
) -> Result<cumulon_trace::PhaseBreakdown> {
    let coeffs = model
        .for_instance(view.instance.name)
        .ok_or_else(|| CoreError::Calibration(format!("no model for {}", view.instance.name)))?;
    let mut total = cumulon_trace::PhaseBreakdown::default();
    for job in &plan.jobs {
        let (n_tasks, features) = job_features(job, view);
        let p = predicted_task_phases(coeffs, &view.instance, view.slots, &features);
        let k = n_tasks as f64;
        total.add(&cumulon_trace::PhaseBreakdown {
            compute_s: p.compute_s * k,
            read_s: p.read_s * k,
            write_s: p.write_s * k,
            startup_s: p.startup_s * k,
            overhead_s: p.overhead_s * k,
        });
    }
    Ok(total)
}

/// [`estimate_plan_full`] plus the expected overhead of failures: the
/// makespan is inflated by [`FailureModel::expected_makespan`] and the
/// dollar figure re-priced from the inflated time.
pub fn estimate_plan_under_failures(
    plan: &PhysPlan,
    view: &ClusterView,
    model: &CostModel,
    billing: BillingPolicy,
    job_model: JobTimeModel,
    failure: &FailureModel,
) -> Result<PlanEstimate> {
    let mut est = estimate_plan_full(plan, view, model, billing, job_model)?;
    est.makespan_s = failure.expected_makespan(est.makespan_s, view);
    est.cost_dollars = cluster_cost(
        billing,
        view.nodes,
        view.instance.price_per_hour,
        est.makespan_s,
    );
    Ok(est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::OpCoefficients;
    use crate::physical::MatRef;
    use cumulon_cluster::instances::by_name;
    use cumulon_matrix::MatrixMeta;

    fn view(nodes: u32, slots: u32) -> ClusterView {
        ClusterView {
            instance: by_name("m1.large").unwrap(),
            nodes,
            slots,
            replication: 3,
        }
    }

    fn stats(rows: usize, cols: usize, density: f64) -> OperandStats {
        OperandStats {
            meta: MatrixMeta::new(rows, cols, 10),
            density,
            generated: false,
        }
    }

    fn mul_job(split: MulSplit) -> PhysJob {
        PhysJob::Mul {
            a: MatRef::plain("A"),
            a_stats: stats(40, 60, 1.0),
            b: MatRef::plain("B"),
            b_stats: stats(60, 20, 1.0),
            out: "C".into(),
            out_stats: stats(40, 20, 1.0),
            split,
        }
    }

    #[test]
    fn implied_gflops_inverts_idealized_rate() {
        let t = by_name("m1.large").unwrap();
        let eff = 0.85;
        let coeffs = OpCoefficients::idealized(&t, 2.0, eff);
        let implied = model_implied_gflops(&coeffs, &t);
        let expect = t.gflops_per_core as f64 * eff;
        assert!(
            (implied - expect).abs() < 1e-6 * expect,
            "implied {implied} vs spec {expect}"
        );
    }

    #[test]
    fn locality_model() {
        let v = view(10, 2);
        assert!((v.base_locality() - 0.3).abs() < 1e-12);
        assert!((v.hinted_locality() - 0.9).abs() < 1e-12);
        let tiny = view(2, 2);
        assert_eq!(tiny.base_locality(), 1.0);
        assert_eq!(tiny.hinted_locality(), 1.0);
    }

    #[test]
    fn mul_feature_scaling() {
        let v = view(10, 2);
        let (n1, f1) = job_features(&mul_job(MulSplit::unit()), &v);
        let (n2, f2) = job_features(
            &mul_job(MulSplit {
                ri: 2,
                rj: 2,
                rk: 2,
            }),
            &v,
        );
        assert_eq!(n1, 4 * 2 * 6);
        // Factored as rows × k-bands × cols to mirror the split geometry.
        #[allow(clippy::identity_op)]
        {
            assert_eq!(n2, 2 * 1 * 3);
        }
        // Bigger bands per task → more flops per task.
        assert!(f2.flops > 3.0 * f1.flops);
        // Total flops across the job roughly conserved.
        let t1 = f1.flops * n1 as f64;
        let t2 = f2.flops * n2 as f64;
        assert!((t1 / t2 - 1.0).abs() < 0.3, "{t1} vs {t2}");
    }

    #[test]
    fn k_split_amortizes_b_reads() {
        // rk = Kt reads B's band once per task; rk = 1 re-reads per k.
        let v = view(10, 2);
        let (n_whole, f_whole) = job_features(
            &mul_job(MulSplit {
                ri: 1,
                rj: 1,
                rk: 6,
            }),
            &v,
        );
        let (n_split, f_split) = job_features(
            &mul_job(MulSplit {
                ri: 1,
                rj: 1,
                rk: 1,
            }),
            &v,
        );
        let whole_reads = (f_whole.local_read + f_whole.remote_read) * n_whole as f64;
        let split_reads = (f_split.local_read + f_split.remote_read) * n_split as f64;
        assert!(
            (whole_reads - split_reads).abs() < 1.0,
            "total read bytes equal"
        );
        // But the split version writes 6× the partial output volume.
        let whole_writes = f_whole.local_write * n_whole as f64;
        let split_writes = f_split.local_write * n_split as f64;
        assert!((split_writes / whole_writes - 6.0).abs() < 0.01);
    }

    #[test]
    fn generated_inputs_read_free() {
        let v = view(4, 2);
        let mut gen = stats(40, 60, 1.0);
        gen.generated = true;
        let job = PhysJob::Mul {
            a: MatRef::plain("G"),
            a_stats: gen,
            b: MatRef::plain("B"),
            b_stats: stats(60, 20, 1.0),
            out: "C".into(),
            out_stats: stats(40, 20, 1.0),
            split: MulSplit::unit(),
        };
        let (_, f) = job_features(&job, &v);
        let (_, f_stored) = job_features(&mul_job(MulSplit::unit()), &v);
        assert!(f.local_read + f.remote_read < f_stored.local_read + f_stored.remote_read);
        assert!(f.flops > f_stored.flops, "generation flops charged instead");
    }

    #[test]
    fn sparse_mul_cheaper() {
        let sparse = PhysJob::Mul {
            a: MatRef::plain("S"),
            a_stats: stats(40, 60, 0.01),
            b: MatRef::plain("B"),
            b_stats: stats(60, 20, 1.0),
            out: "C".into(),
            out_stats: stats(40, 20, 0.5),
            split: MulSplit::unit(),
        };
        let v = view(4, 2);
        let (_, fs) = job_features(&sparse, &v);
        let (_, fd) = job_features(&mul_job(MulSplit::unit()), &v);
        assert!(fs.flops < fd.flops / 20.0);
        assert!(fs.local_read + fs.remote_read < fd.local_read + fd.remote_read);
    }

    #[test]
    fn wave_model_shapes() {
        // 100 tasks of 10s on 10 slots, no noise: exactly 10 waves.
        assert_eq!(job_time_s(10.0, 100, 10, 0.0), 100.0);
        // Remainder adds a wave.
        assert_eq!(job_time_s(10.0, 101, 10, 0.0), 110.0);
        // Noise adds a tail.
        assert!(job_time_s(10.0, 100, 10, 0.1) > 100.0);
        // Empty job takes no time.
        assert_eq!(job_time_s(10.0, 0, 10, 0.1), 0.0);
        // More slots never slower.
        assert!(job_time_s(10.0, 100, 20, 0.05) <= job_time_s(10.0, 100, 10, 0.05));
    }

    #[test]
    fn estimate_plan_composes_levels() {
        let mut plan = PhysPlan::default();
        let j0 = plan.push(
            mul_job(MulSplit {
                ri: 1,
                rj: 1,
                rk: 1,
            }),
            vec![],
        );
        plan.push(
            PhysJob::AddPartials {
                partials: (0..6).map(|k| format!("C__p{k}")).collect(),
                out: "C".into(),
                out_stats: stats(40, 20, 1.0),
                tiles_per_task: 2,
            },
            vec![j0],
        );
        let v = view(4, 2);
        let model = CostModel::single(
            v.instance.name,
            OpCoefficients::idealized(&v.instance, 2.0, 0.85),
        );
        let est = estimate_plan(&plan, &v, &model).unwrap();
        assert_eq!(est.jobs.len(), 2);
        assert!(est.makespan_s > 0.0);
        assert!(est.cost_dollars > 0.0);
        // Levels serialize: makespan at least the sum of single-task times.
        assert!(est.makespan_s >= est.jobs[0].0);
    }

    #[test]
    fn predicted_phases_sum_to_the_fitted_prediction() {
        let v = view(4, 2);
        let coeffs = OpCoefficients::idealized(&v.instance, 2.0, 0.85);
        let (n_tasks, f) = job_features(&mul_job(MulSplit::unit()), &v);
        let phases = predicted_task_phases(&coeffs, &v.instance, v.slots, &f);
        let pred = coeffs.predict(&v.instance, v.slots, &f);
        assert!(
            (phases.total_s() - pred).abs() / pred < 1e-9,
            "phase groups must partition the prediction: {} vs {pred}",
            phases.total_s()
        );
        assert!(phases.compute_s > 0.0 && phases.read_s > 0.0 && phases.write_s > 0.0);

        let mut plan = PhysPlan::default();
        plan.push(mul_job(MulSplit::unit()), vec![]);
        let model = CostModel::single(v.instance.name, coeffs);
        let total = predict_plan_phases(&plan, &v, &model).unwrap();
        assert!((total.total_s() - pred * n_tasks as f64).abs() / total.total_s() < 1e-9);
        assert!(predict_plan_phases(&plan, &v, &CostModel::default()).is_err());
    }

    #[test]
    fn failure_model_overheads() {
        let v = view(10, 2);
        // No failures: identity.
        assert_eq!(FailureModel::none().expected_makespan(100.0, &v), 100.0);
        assert_eq!(FailureModel::default().expected_node_failures(10, 1e6), 0.0);
        // Task retries inflate by expected attempts.
        let flaky = FailureModel {
            node_mtbf_s: f64::INFINITY,
            task_failure_prob: 0.5,
        };
        assert!((flaky.expected_makespan(100.0, &v) - 200.0).abs() < 1e-9);
        // Node deaths: replication-1 clusters pay much more rework than
        // replicated ones, and overhead grows superlinearly with runtime.
        let dying = FailureModel {
            node_mtbf_s: 100_000.0,
            task_failure_prob: 0.0,
        };
        let mut v1 = v;
        v1.replication = 1;
        let t1 = dying.expected_makespan(1_000.0, &v1);
        let t3 = dying.expected_makespan(1_000.0, &v);
        assert!(t1 > t3, "replication 1 must pay more rework: {t1} vs {t3}");
        let short = dying.expected_makespan(1_000.0, &v1) / 1_000.0;
        let long = dying.expected_makespan(10_000.0, &v1) / 10_000.0;
        assert!(long > short, "overhead fraction grows with runtime");
    }

    #[test]
    fn spot_hazard_rates_and_makespan() {
        let h = SpotHazard::typical();
        // Headroom damps the revocation rate, monotonically.
        let at_mean = h.revocation_rate(h.mean_price_fraction);
        assert_eq!(at_mean, h.base_rate_per_hour);
        let r_low = h.revocation_rate(0.5);
        let r_high = h.revocation_rate(0.9);
        assert!(r_low < at_mean && r_high < r_low);
        // Bidding below the mean is clamped to the base rate.
        assert_eq!(h.revocation_rate(0.0), h.base_rate_per_hour);

        // Checkpoints trade write overhead for bounded rework exposure.
        let fail_free = 7_200.0;
        let (t_ckpt, rework_ckpt) = h.expected_spot_makespan(fail_free, 0.5, 600.0, 10.0);
        let (t_none, rework_none) = h.expected_spot_makespan(fail_free, 0.5, 0.0, 10.0);
        assert!(t_ckpt >= fail_free && t_none >= fail_free);
        assert!(
            rework_ckpt < rework_none,
            "checkpoints must bound rework: {rework_ckpt} vs {rework_none}"
        );
        // A safe bid reworks less than a risky one at the same interval.
        let (_, rework_risky) =
            h.expected_spot_makespan(fail_free, h.mean_price_fraction, 600.0, 10.0);
        assert!(rework_ckpt < rework_risky);
        // Zero hazard: only the checkpoint writes remain.
        let calm = SpotHazard {
            base_rate_per_hour: 0.0,
            ..h
        };
        let (t, rework) = calm.expected_spot_makespan(fail_free, 0.4, 600.0, 10.0);
        assert_eq!(rework, 0.0);
        assert!((t - (fail_free + 12.0 * 10.0)).abs() < 1e-9);
    }

    #[test]
    fn failure_aware_estimate_costs_more() {
        let mut plan = PhysPlan::default();
        plan.push(mul_job(MulSplit::unit()), vec![]);
        let v = view(4, 2);
        let model = CostModel::single(
            v.instance.name,
            OpCoefficients::idealized(&v.instance, 2.0, 0.85),
        );
        let base = estimate_plan(&plan, &v, &model).unwrap();
        let under = estimate_plan_under_failures(
            &plan,
            &v,
            &model,
            BillingPolicy::PerSecond,
            JobTimeModel::WaveApprox,
            &FailureModel {
                node_mtbf_s: 50_000.0,
                task_failure_prob: 0.1,
            },
        )
        .unwrap();
        assert!(under.makespan_s > base.makespan_s);
        let base_ps = estimate_plan_with(&plan, &v, &model, BillingPolicy::PerSecond).unwrap();
        assert!(under.cost_dollars > base_ps.cost_dollars);
        // A perfect cluster adds nothing.
        let same = estimate_plan_under_failures(
            &plan,
            &v,
            &model,
            BillingPolicy::HourlyCeil,
            JobTimeModel::WaveApprox,
            &FailureModel::none(),
        )
        .unwrap();
        assert_eq!(same.makespan_s, base.makespan_s);
    }

    #[test]
    fn missing_instance_model_errors() {
        let plan = {
            let mut p = PhysPlan::default();
            p.push(mul_job(MulSplit::unit()), vec![]);
            p
        };
        let v = view(2, 1);
        let model = CostModel::default();
        assert!(matches!(
            estimate_plan(&plan, &v, &model),
            Err(CoreError::Calibration(_))
        ));
    }
}

#[cfg(test)]
mod mc_tests {
    use super::*;

    #[test]
    fn mc_matches_closed_form_without_noise() {
        // No noise: greedy scheduling of equal tasks = exact waves.
        let wave = job_time_s(10.0, 25, 8, 0.0);
        let mc = job_time_mc(10.0, 25, 8, 0.0, 1, 5);
        assert!((wave - mc).abs() < 1e-9, "wave {wave} vs mc {mc}");
    }

    #[test]
    fn mc_is_deterministic_given_seed() {
        let a = job_time_mc(5.0, 40, 6, 0.2, 99, 50);
        let b = job_time_mc(5.0, 40, 6, 0.2, 99, 50);
        assert_eq!(a, b);
        let c = job_time_mc(5.0, 40, 6, 0.2, 100, 50);
        assert_ne!(a, c);
    }

    #[test]
    fn mc_close_to_wave_model_at_mild_noise() {
        let wave = job_time_s(10.0, 64, 16, 0.08);
        let mc = job_time_mc(10.0, 64, 16, 0.08, 7, 200);
        let rel = (wave - mc).abs() / mc;
        assert!(rel < 0.1, "wave {wave} vs mc {mc} (rel {rel})");
    }

    #[test]
    fn mc_captures_heavy_tails_better() {
        // With huge sigma the closed-form underestimates the tail; MC should
        // exceed the no-noise floor substantially.
        let floor = job_time_s(10.0, 16, 16, 0.0);
        let mc = job_time_mc(10.0, 16, 16, 1.0, 3, 300);
        assert!(
            mc > 1.3 * floor,
            "heavy tails must show: {mc} vs floor {floor}"
        );
    }

    #[test]
    fn mc_empty_job_is_free() {
        assert_eq!(job_time_mc(10.0, 0, 4, 0.5, 1, 10), 0.0);
    }

    #[test]
    fn job_time_model_dispatch() {
        let wave = JobTimeModel::WaveApprox.job_time(10.0, 25, 8, 0.0);
        let mc = JobTimeModel::MonteCarlo { trials: 5, seed: 1 }.job_time(10.0, 25, 8, 0.0);
        assert!((wave - mc).abs() < 1e-9);
    }

    /// Pins the wave model to the Monte-Carlo reference across a
    /// (tasks, slots, sigma) grid. At σ = 0 the two must agree exactly
    /// (both reduce to waves × mean); otherwise the closed form must stay
    /// inside a sigma-widening relative envelope. This is the same
    /// estimate-sanity invariant `cumulon check` enforces — kept here as
    /// a unit-level regression so an estimator drift is caught next to
    /// the code that caused it.
    #[test]
    fn wave_model_stays_inside_mc_envelope_on_grid() {
        let mean = 10.0;
        let trials = 600;
        for &sigma in &[0.0, 0.1, 0.3] {
            // Exact at zero noise; 5% base + 0.75·σ slack otherwise —
            // the wave tail term is an approximation, not a bound.
            let tol_rel = if sigma == 0.0 {
                1e-12
            } else {
                0.05 + 0.75 * sigma
            };
            let mut worst = (0.0f64, 0usize, 0u32);
            for &tasks in &[1usize, 4, 7, 32, 96] {
                for &slots in &[1u32, 8, 24] {
                    let wave = job_time_s(mean, tasks, slots, sigma);
                    let mc = job_time_mc(mean, tasks, slots, sigma, 0x5eed, trials);
                    let rel = (wave - mc).abs() / mc.abs().max(wave.abs()).max(1e-12);
                    if rel > worst.0 {
                        worst = (rel, tasks, slots);
                    }
                }
            }
            assert!(
                worst.0 <= tol_rel,
                "sigma {sigma}: worst rel deviation {:.4} at {} tasks / {} slots \
                 exceeds tolerance {tol_rel:.4}",
                worst.0,
                worst.1,
                worst.2
            );
        }
    }
}
