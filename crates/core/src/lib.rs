//! # cumulon-core
//!
//! The core of Cumulon-RS: everything between "a statistician writes a
//! matrix program" and "tasks run on a (simulated) cloud cluster".
//!
//! The pipeline mirrors the paper:
//!
//! 1. **Programs** ([`expr`]): matrix expressions over named inputs —
//!    multiply, element-wise arithmetic, transpose, scaling, scalar maps —
//!    with shape and density inference.
//! 2. **Logical rewrites** ([`rewrite`]): transpose pushdown (so physical
//!    operators read transposed tiles directly), common-subexpression
//!    elimination, and cost-based matrix-chain reordering.
//! 3. **Physical plans** ([`physical`], [`mod@lower`]): map-only job DAGs. The
//!    flagship operator is the split multiply — each task multiplies an
//!    `ri × rk` band of A by an `rk × rj` band of B; when the shared
//!    dimension is split (`rk < Kt`) partial results are summed by a
//!    follow-up Add job. Element-wise chains **fuse** into single jobs.
//!    Splits are optimizer-chosen parameters.
//! 4. **Cost models** ([`estimate`], [`calibrate`]): per-operator task-time
//!    models *fitted from benchmark runs* (never read off the simulator's
//!    internals), a wave-based job-completion-time estimator with a
//!    straggler correction, and plan-level composition.
//! 5. **Deployment optimization** ([`deploy`]): search over instance type ×
//!    cluster size × slots × plan parameters for minimum dollar cost under
//!    a deadline, minimum time under a budget, or the full time/cost
//!    Pareto skyline — under hour-quantized billing.
//!
//! The [`optimizer`] module ties it all together behind a small facade.

pub mod aggregate;
pub mod calibrate;
pub mod deploy;
pub mod error;
pub mod estimate;
pub mod expr;
pub mod lower;
pub mod optimizer;
pub mod physical;
pub mod recovery;
pub mod rewrite;

pub use calibrate::{CostModel, OpCoefficients};
pub use deploy::{
    Constraint, DeploymentPlan, DeploymentSearch, Procurement, SearchSpace, SpotChoice,
    SpotSearchSpace,
};
pub use error::{CoreError, Result};
pub use estimate::{FailureModel, SpotHazard};
pub use expr::{ExprId, InputDesc, Program, ProgramBuilder, UnaryOp};
pub use lower::lower;
pub use optimizer::Optimizer;
pub use physical::{MatRef, MulSplit, PhysJob, PhysPlan};
pub use recovery::{run_with_recovery, run_with_recovery_traced, RecoveryConfig};
// Re-exported so traced execution drivers need not name the trace crate.
pub use cumulon_trace::{PhaseBreakdown, Trace, TraceLog};
