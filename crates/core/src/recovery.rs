//! Lineage-based recovery: re-run only the work whose outputs were lost.
//!
//! The physical plan *is* the lineage graph: every
//! [`PhysJob`](crate::physical::PhysJob) records which matrices it reads
//! and which it writes, and
//! [`tasks_for_tile`](crate::physical::PhysJob::tasks_for_tile) maps a
//! lost output tile back to the task
//! that produced it. When a run fails — a node death took the only
//! replica of some intermediate tiles, say — the driver here does not
//! restart the program. It reads the scheduler's structured
//! [`RunFailure`], resolves each lost tile to its producing job and task,
//! and re-executes a minimal sub-DAG: the not-yet-completed jobs in full,
//! plus just the affected tasks of completed producer jobs. Cascading
//! losses (a re-run task reads a tile that is *also* gone) resolve across
//! rounds: each round pushes the frontier of missing data one producer up
//! the DAG, up to [`RecoveryConfig::max_rounds`].
//!
//! Losses nothing can recompute — a source input's tiles, or data whose
//! lineage was truncated by a checkpoint — surface as
//! [`CoreError::Unrecoverable`], which iterative drivers catch to rewind
//! to their last checkpoint (see `cumulon-workloads`).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cumulon_cluster::billing::{billed_hours, cluster_cost};
use cumulon_cluster::metrics::FaultStats;
use cumulon_cluster::scheduler::{FailurePlan, RunFailure};
use cumulon_cluster::Cluster;
use cumulon_cluster::{ClusterError, ExecMode, Job, JobDag, JobStats, RunReport, SchedulerConfig};

use crate::error::{CoreError, Result};
use crate::physical::PhysPlan;

/// Recovery knobs.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Maximum recovery rounds before giving up. Each round re-runs one
    /// sub-DAG; cascading losses consume one round per lineage level.
    pub max_rounds: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { max_rounds: 8 }
    }
}

/// Parses a tile path `/matrix/{name}/{ti}_{tj}`.
fn parse_tile_path(path: &str) -> Option<(String, usize, usize)> {
    let rest = path.strip_prefix("/matrix/")?;
    let (name, tile) = rest.rsplit_once('/')?;
    let (ti, tj) = tile.split_once('_')?;
    Some((name.to_string(), ti.parse().ok()?, tj.parse().ok()?))
}

/// Plan-job index encoded in a DAG job name (`"{op}#{idx}"`).
fn plan_index(job_name: &str) -> Option<usize> {
    job_name.rsplit_once('#').and_then(|(_, i)| i.parse().ok())
}

/// Runs `dag` (lowered from `plan`) on `cluster`, recovering from data
/// loss via lineage re-execution. Returns the merged report: makespan and
/// cost cover *all* rounds (recovery overhead is visible, not hidden),
/// `jobs` lists every job execution in completion order (re-executed jobs
/// appear once per round that ran them), and `faults.recovered_jobs`
/// counts job re-executions.
pub fn run_with_recovery(
    cluster: &Cluster,
    plan: &PhysPlan,
    dag: &JobDag,
    mode: ExecMode,
    config: SchedulerConfig,
    failures: &FailurePlan,
    recovery: RecoveryConfig,
) -> Result<RunReport> {
    run_with_recovery_traced(
        cluster,
        plan,
        dag,
        mode,
        config,
        failures,
        recovery,
        &cumulon_trace::Trace::disabled(),
    )
}

/// [`run_with_recovery`] recording the whole multi-round execution into
/// `trace`. Each round's spans are shifted onto the global timeline (round
/// `r` starts at the accumulated makespan of rounds `0..r`) and tagged
/// with the round number; every aborted round additionally emits a
/// [`cumulon_trace::TraceEvent::RecoveryRound`] instant at the abort
/// time. Tracing is observational: results are bitwise-identical with a
/// disabled handle.
#[allow(clippy::too_many_arguments)]
pub fn run_with_recovery_traced(
    cluster: &Cluster,
    plan: &PhysPlan,
    dag: &JobDag,
    mode: ExecMode,
    config: SchedulerConfig,
    failures: &FailurePlan,
    recovery: RecoveryConfig,
    trace: &cumulon_trace::Trace,
) -> Result<RunReport> {
    let n = plan.jobs.len();
    debug_assert_eq!(n, dag.jobs.len(), "dag must be instantiated from plan");
    // done[i]: plan job i's outputs are fully materialised.
    let mut done = vec![false; n];
    // Affected tasks of completed jobs still awaiting re-execution.
    let mut partial: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut all_jobs: Vec<JobStats> = Vec::new();
    let mut faults = FaultStats::default();
    let mut total_makespan = 0.0f64;
    let mut round = 0usize;
    let mut sub: Option<JobDag> = None; // None = run the full original DAG

    loop {
        let failures_round = FailurePlan {
            // Vary the coin-flip seed per round so a task that burned its
            // attempt budget on injected failures gets fresh draws. Node
            // failures re-fire but dead nodes are skipped by the scheduler.
            seed: failures.seed.wrapping_add(round as u64),
            ..failures.clone()
        };
        let run_dag = sub.as_ref().unwrap_or(dag);
        trace.set_round(round as u32, total_makespan);
        match cluster.try_run_with_traced(run_dag, mode, config, &failures_round, trace) {
            Ok(report) => {
                for js in &report.jobs {
                    if let Some(i) = plan_index(&js.name) {
                        done[i] = true;
                        partial.remove(&i);
                    }
                }
                all_jobs.extend(report.jobs);
                let mut round_faults = report.faults;
                if round > 0 {
                    // Everything a recovery round executes re-does work an
                    // earlier round already ran.
                    round_faults.rework_task_s = round_faults.total_task_s;
                }
                faults.merge(&round_faults);
                total_makespan += report.makespan_s;
                let spec = cluster.spec();
                let billing = cluster.billing();
                return Ok(RunReport {
                    instance: report.instance,
                    nodes: report.nodes,
                    slots: report.slots,
                    jobs: all_jobs,
                    makespan_s: total_makespan,
                    billed_hours: billed_hours(billing, total_makespan),
                    cost_dollars: cluster_cost(
                        billing,
                        spec.nodes,
                        spec.instance.price_per_hour,
                        total_makespan,
                    ),
                    faults,
                });
            }
            Err(failure) => {
                round += 1;
                // Recorded before the next `set_round`, so the handle's
                // offset is still this round's start and the instant lands
                // at the global abort time.
                trace.record_event(cumulon_trace::TraceEvent::RecoveryRound {
                    t_s: failure.makespan_s,
                    round: round as u32,
                    lost_blocks: failure.lost_blocks.len(),
                });
                total_makespan += failure.makespan_s;
                let mut round_faults = failure.faults;
                if round > 1 {
                    // `round` was just incremented; the aborted round was
                    // `round - 1`, a recovery round iff that is ≥ 1.
                    round_faults.rework_task_s = round_faults.total_task_s;
                }
                faults.merge(&round_faults);
                for js in &failure.completed_jobs {
                    if let Some(i) = plan_index(&js.name) {
                        done[i] = true;
                        partial.remove(&i);
                    }
                }
                all_jobs.extend(failure.completed_jobs.iter().cloned());
                if round > recovery.max_rounds {
                    return Err(CoreError::Exec(format!(
                        "lineage recovery gave up after {} rounds: {failure}",
                        recovery.max_rounds
                    )));
                }
                if !recoverable(&failure) {
                    return Err(CoreError::from(failure.error));
                }
                // Resolve each lost tile to its producing job's tasks.
                for path in &failure.lost_blocks {
                    let Some((name, ti, tj)) = parse_tile_path(path) else {
                        continue;
                    };
                    match plan.producer_of(&name) {
                        Some(p) => {
                            if done[p] {
                                let tasks = plan.jobs[p].tasks_for_tile(&name, ti, tj);
                                partial.entry(p).or_default().extend(tasks);
                            }
                            // Not done: the job re-runs in full anyway.
                        }
                        None => {
                            // No plan job writes this matrix: a source
                            // input (or checkpoint-truncated lineage).
                            return Err(CoreError::Unrecoverable {
                                matrix: name,
                                detail: format!(
                                    "tile ({ti}, {tj}) lost and no plan job produces it"
                                ),
                            });
                        }
                    }
                }
                sub = Some(build_sub_dag(plan, dag, &done, &partial, &mut faults));
            }
        }
    }
}

/// Whether lineage re-execution can make progress on this failure.
/// Task-level failures (including those caused by lost blocks) can; a
/// stalled or node-less cluster cannot.
fn recoverable(failure: &RunFailure) -> bool {
    matches!(
        failure.error,
        ClusterError::TaskFailed { .. } | ClusterError::BlockLost { .. }
    )
}

/// Builds the recovery sub-DAG: not-done jobs in full, plus the affected
/// tasks of done jobs, with dependencies filtered to included jobs.
fn build_sub_dag(
    plan: &PhysPlan,
    dag: &JobDag,
    done: &[bool],
    partial: &BTreeMap<usize, BTreeSet<usize>>,
    faults: &mut FaultStats,
) -> JobDag {
    let mut sub = JobDag::new();
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for (i, &job_done) in done.iter().enumerate() {
        let tasks: Vec<_> = if !job_done {
            dag.jobs[i].tasks.clone()
        } else if let Some(ts) = partial.get(&i) {
            ts.iter()
                .filter(|&&t| t < dag.jobs[i].tasks.len())
                .map(|&t| dag.jobs[i].tasks[t].clone())
                .collect()
        } else {
            continue;
        };
        faults.recovered_jobs += 1;
        let deps: Vec<usize> = plan.deps[i]
            .iter()
            .filter_map(|d| remap.get(d).copied())
            .collect();
        let idx = sub.push(
            Job::new(
                dag.jobs[i].name.clone(),
                dag.jobs[i].op_label.clone(),
                tasks,
            ),
            deps,
        );
        remap.insert(i, idx);
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_path_parsing() {
        assert_eq!(
            parse_tile_path("/matrix/gnmf3_m5__p0/2_7"),
            Some(("gnmf3_m5__p0".to_string(), 2, 7))
        );
        assert_eq!(
            parse_tile_path("/matrix/W_3/0_0"),
            Some(("W_3".into(), 0, 0))
        );
        assert_eq!(parse_tile_path("/other/W/0_0"), None);
        assert_eq!(parse_tile_path("/matrix/W"), None);
        assert_eq!(parse_tile_path("/matrix/W/x_y"), None);
    }

    #[test]
    fn plan_index_parsing() {
        assert_eq!(plan_index("mul#3"), Some(3));
        assert_eq!(plan_index("fused#0"), Some(0));
        assert_eq!(plan_index("noindex"), None);
    }
}
