//! End-to-end lineage recovery: runs with a mid-run node death at
//! replication 1 (so the death actually loses tiles) must complete via
//! re-execution and produce bitwise-identical results to failure-free runs.

use std::collections::BTreeMap;

use cumulon_cluster::instances::catalog;
use cumulon_cluster::{Cluster, ClusterSpec, ExecMode, FailurePlan, SchedulerConfig};
use cumulon_core::calibrate::{CostModel, OpCoefficients};
use cumulon_core::{InputDesc, Optimizer, Program, ProgramBuilder, RecoveryConfig};
use cumulon_dfs::DfsConfig;
use cumulon_matrix::gen::Generator;
use cumulon_matrix::{LocalMatrix, MatrixMeta};

const META: MatrixMeta = MatrixMeta {
    rows: 12,
    cols: 12,
    tile_size: 4,
};

fn optimizer() -> Optimizer {
    let mut m = CostModel::default();
    for i in catalog() {
        m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    Optimizer::new(m)
}

fn input_gen(seed: u64) -> Generator {
    Generator::DenseUniform {
        seed,
        lo: -1.0,
        hi: 1.0,
    }
}

/// A replication-1 cluster with A, B, C registered as *generated* inputs:
/// immune to node death, so a mid-run kill loses only intermediates.
fn repl1_cluster(nodes: u32) -> Cluster {
    let spec = ClusterSpec::named("m1.large", nodes, 2).unwrap();
    let cluster = Cluster::provision_with(
        spec,
        Default::default(),
        DfsConfig {
            replication: 1,
            ..Default::default()
        },
    )
    .unwrap();
    for (i, name) in ["A", "B", "C"].iter().enumerate() {
        cluster
            .store()
            .register_generated(name, META, input_gen(i as u64 + 1))
            .unwrap();
    }
    cluster
}

fn chain_program() -> (Program, BTreeMap<String, InputDesc>) {
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let bm = b.input("B");
    let cm = b.input("C");
    let ab = b.mul(a, bm);
    let abc = b.mul(ab, cm);
    b.output("ABC", abc);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    for name in ["A", "B", "C"] {
        inputs.insert(
            name.to_string(),
            InputDesc {
                meta: META,
                density: 1.0,
                sparse: false,
                generated: true,
            },
        );
    }
    (program, inputs)
}

#[test]
fn multiply_chain_recovers_from_midrun_node_death() {
    let opt = optimizer();
    let (program, inputs) = chain_program();

    // Failure-free baseline on its own cluster.
    let baseline = repl1_cluster(4);
    let clean = opt
        .execute_on(&baseline, &program, &inputs, "t", ExecMode::Real)
        .unwrap();
    let expect = baseline.store().get_local("ABC").unwrap();
    let (a, b, c) = (
        LocalMatrix::generate(META, &input_gen(1)),
        LocalMatrix::generate(META, &input_gen(2)),
        LocalMatrix::generate(META, &input_gen(3)),
    );
    let local = a.matmul(&b).unwrap().matmul(&c).unwrap();
    assert!(expect.max_abs_diff(&local).unwrap() < 1e-9);

    // Kill each node in turn mid-run: after the first job has produced
    // intermediate tiles, before the run completes. At replication 1 the
    // death loses whatever intermediates that node held; the generated
    // inputs are immune, so recovery always has a path back.
    let mid = clean.makespan_s * 0.6;
    let mut recovered_any = false;
    for node in 0..4u32 {
        let cluster = repl1_cluster(4);
        let failures = FailurePlan {
            node_failures: vec![(mid, node)],
            ..Default::default()
        };
        let report = opt
            .execute_on_with(
                &cluster,
                &program,
                &inputs,
                "t",
                ExecMode::Real,
                SchedulerConfig::default(),
                &failures,
                RecoveryConfig::default(),
            )
            .unwrap();
        assert_eq!(report.faults.node_deaths, 1, "node {node} death not seen");
        let got = cluster.store().get_local("ABC").unwrap();
        assert_eq!(
            got.max_abs_diff(&expect).unwrap(),
            0.0,
            "recovered result differs from failure-free run (node {node} killed)"
        );
        if report.faults.recovered_jobs > 0 {
            recovered_any = true;
            assert!(
                report.makespan_s > clean.makespan_s,
                "recovery overhead must show in the merged makespan"
            );
        }
    }
    // Across killing each of the 4 nodes at replication 1 mid-run, at
    // least one death must have actually forced lineage re-execution.
    assert!(recovered_any, "no node death exercised the recovery path");
}

#[test]
fn unrecoverable_when_source_input_lost() {
    let opt = optimizer();
    let (program, _) = chain_program();
    // Stored (non-generated) inputs this time: source tiles can be lost.
    let spec = ClusterSpec::named("m1.large", 2, 2).unwrap();
    let cluster = Cluster::provision_with(
        spec,
        Default::default(),
        DfsConfig {
            replication: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut inputs = BTreeMap::new();
    for (i, name) in ["A", "B", "C"].iter().enumerate() {
        let m = LocalMatrix::generate(META, &input_gen(i as u64 + 1));
        cluster.store().put_local(name, &m).unwrap();
        inputs.insert(name.to_string(), InputDesc::dense(META));
    }
    // Kill a node immediately: with replication 1 over 2 nodes some source
    // input blocks die with it, and no plan job can recompute those.
    let failures = FailurePlan {
        node_failures: vec![(0.0, 1)],
        ..Default::default()
    };
    let err = opt
        .execute_on_with(
            &cluster,
            &program,
            &inputs,
            "t",
            ExecMode::Real,
            SchedulerConfig::default(),
            &failures,
            RecoveryConfig::default(),
        )
        .unwrap_err();
    assert!(
        matches!(err, cumulon_core::CoreError::Unrecoverable { .. }),
        "expected Unrecoverable, got: {err}"
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Whatever node dies, whenever it dies, a recovered multiply
        /// chain is bitwise-equal to the failure-free run.
        #[test]
        fn recovered_run_bitwise_equals_failure_free(node in 0u32..4, frac in 0.05f64..0.95) {
            let opt = optimizer();
            let (program, inputs) = chain_program();
            let baseline = repl1_cluster(4);
            let clean = opt
                .execute_on(&baseline, &program, &inputs, "t", ExecMode::Real)
                .unwrap();
            let expect = baseline.store().get_local("ABC").unwrap();

            let cluster = repl1_cluster(4);
            let failures = FailurePlan {
                node_failures: vec![(clean.makespan_s * frac, node)],
                ..Default::default()
            };
            let report = opt
                .execute_on_with(
                    &cluster,
                    &program,
                    &inputs,
                    "t",
                    ExecMode::Real,
                    SchedulerConfig::default(),
                    &failures,
                    RecoveryConfig::default(),
                )
                .unwrap();
            prop_assert_eq!(report.faults.node_deaths, 1);
            let got = cluster.store().get_local("ABC").unwrap();
            prop_assert_eq!(got.max_abs_diff(&expect).unwrap(), 0.0);
        }

        /// Lineage recovery composed with the worker pool: a mid-run node
        /// death recovered at N threads matches the sequential recovery
        /// run bitwise — same makespan, same fault counters, same output.
        #[test]
        fn parallel_recovery_bitwise_equals_sequential(
            node in 0u32..4,
            frac in 0.05f64..0.95,
            threads in 2usize..6,
        ) {
            let opt = optimizer();
            let (program, inputs) = chain_program();
            let run = |threads: usize| {
                let cluster = repl1_cluster(4);
                let failures = FailurePlan {
                    node_failures: vec![(40.0 * frac, node)],
                    ..Default::default()
                };
                let report = opt
                    .execute_on_with(
                        &cluster,
                        &program,
                        &inputs,
                        "t",
                        ExecMode::Real,
                        SchedulerConfig::default().with_threads(threads),
                        &failures,
                        RecoveryConfig::default(),
                    )
                    .unwrap();
                let out = cluster.store().get_local("ABC").unwrap();
                (report, out)
            };
            let (seq, seq_out) = run(1);
            let (par, par_out) = run(threads);
            prop_assert_eq!(seq.makespan_s.to_bits(), par.makespan_s.to_bits());
            prop_assert_eq!(seq.cost_dollars.to_bits(), par.cost_dollars.to_bits());
            prop_assert_eq!(seq.faults, par.faults);
            prop_assert_eq!(seq.jobs.len(), par.jobs.len());
            prop_assert_eq!(seq_out.max_abs_diff(&par_out).unwrap(), 0.0);
        }
    }
}

#[test]
fn failure_free_run_report_is_clean() {
    let opt = optimizer();
    let (program, inputs) = chain_program();
    let cluster = repl1_cluster(3);
    let report = opt
        .execute_on(&cluster, &program, &inputs, "t", ExecMode::Real)
        .unwrap();
    assert!(report.faults.is_clean());
    assert_eq!(report.faults.recovered_jobs, 0);
    assert!(!report.summary().contains("faults"));
}
