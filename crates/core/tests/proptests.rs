//! Property tests for the planning stack, including the strongest
//! invariant we have: *any* valid program executed on the simulated
//! cluster produces exactly the numbers a driver-side reference
//! evaluation produces.

use std::collections::{BTreeMap, BTreeSet};

use cumulon_cluster::billing::BillingPolicy;
use cumulon_cluster::{Cluster, ClusterSpec, ExecMode};
use cumulon_core::expr::{ExprId, InputDesc, ProgramBuilder, UnaryOp};
use cumulon_core::lower::{build_plan, build_plan_with, instantiate, PlanOptions, UnitSplits};
use cumulon_core::physical::{MatRef, PhysJob};
use cumulon_core::{CostModel, DeploymentSearch, OpCoefficients, Program, SearchSpace};
use cumulon_matrix::gen::Generator;
use cumulon_matrix::tile::ElemOp;
use cumulon_matrix::{LocalMatrix, MatrixMeta};
use proptest::prelude::*;

/// A recipe for building a random n×n program over two inputs.
#[derive(Debug, Clone)]
enum Step {
    Mul(usize, usize),
    Elem(u8, usize, usize),
    Transpose(usize),
    Scale(usize, i8),
    Unary(u8, usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    // Operand indices are taken modulo the current frontier length.
    let step = prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Mul(a, b)),
        (0u8..4, any::<usize>(), any::<usize>()).prop_map(|(op, a, b)| Step::Elem(op, a, b)),
        any::<usize>().prop_map(Step::Transpose),
        (any::<usize>(), -3i8..4).prop_map(|(a, f)| Step::Scale(a, f)),
        (0u8..3, any::<usize>()).prop_map(|(op, a)| Step::Unary(op, a)),
    ];
    proptest::collection::vec(step, 1..8)
}

fn elem_op(tag: u8) -> ElemOp {
    match tag % 4 {
        0 => ElemOp::Add,
        1 => ElemOp::Sub,
        2 => ElemOp::Mul,
        _ => ElemOp::Div,
    }
}

fn unary_op(tag: u8) -> UnaryOp {
    match tag % 3 {
        0 => UnaryOp::Abs,
        1 => UnaryOp::Square,
        // Sqrt over possibly-negative data produces NaN; use Abs ∘ Sqrt
        // composition only through Square to keep values real.
        _ => UnaryOp::Abs,
    }
}

/// Builds the program and a parallel reference evaluator plan.
fn build(steps: &[Step]) -> (Program, Vec<Step>) {
    let mut b = ProgramBuilder::new();
    let x = b.input("X");
    let y = b.input("Y");
    let mut frontier: Vec<ExprId> = vec![x, y];
    for s in steps {
        let pick = |i: usize| frontier[i % frontier.len()];
        let id = match s {
            Step::Mul(a, bb) => {
                let (a, bb) = (pick(*a), pick(*bb));
                b.mul(a, bb)
            }
            Step::Elem(op, a, bb) => {
                let (a, bb) = (pick(*a), pick(*bb));
                b.elem(elem_op(*op), a, bb)
            }
            Step::Transpose(a) => {
                let a = pick(*a);
                b.transpose(a)
            }
            Step::Scale(a, f) => {
                let a = pick(*a);
                b.scale(a, *f as f64 / 2.0)
            }
            Step::Unary(op, a) => {
                let a = pick(*a);
                b.unary(unary_op(*op), a)
            }
        };
        frontier.push(id);
    }
    b.output("OUT", *frontier.last().expect("non-empty"));
    (b.build(), steps.to_vec())
}

/// Reference evaluation with LocalMatrix, mirroring `build`.
fn reference(steps: &[Step], x: &LocalMatrix, y: &LocalMatrix) -> LocalMatrix {
    let mut frontier: Vec<LocalMatrix> = vec![x.clone(), y.clone()];
    for s in steps {
        let pick = |i: usize| frontier[i % frontier.len()].clone();
        let m = match s {
            Step::Mul(a, b) => pick(*a).matmul(&pick(*b)).expect("square mul"),
            Step::Elem(op, a, b) => pick(*a)
                .elementwise(&pick(*b), elem_op(*op))
                .expect("square elem"),
            Step::Transpose(a) => pick(*a).transpose(),
            Step::Scale(a, f) => {
                let mut m = pick(*a);
                m.scale(*f as f64 / 2.0);
                m
            }
            Step::Unary(op, a) => {
                let op = unary_op(*op);
                pick(*a).map(move |v| op.apply(v))
            }
        };
        frontier.push(m);
    }
    frontier.last().expect("non-empty").clone()
}

fn square_inputs(n: usize, tile: usize) -> BTreeMap<String, InputDesc> {
    let meta = MatrixMeta::new(n, n, tile);
    let mut m = BTreeMap::new();
    m.insert("X".to_string(), InputDesc::dense(meta));
    m.insert("Y".to_string(), InputDesc::dense(meta));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs, executed distributed, match the local reference.
    #[test]
    fn distributed_matches_reference(step_list in steps(), seed in 0u64..1000, fuse in any::<bool>()) {
        let n = 6;
        let tile = 4; // ragged edge on purpose
        let (program, recipe) = build(&step_list);
        let inputs = square_inputs(n, tile);
        let meta = MatrixMeta::new(n, n, tile);

        let cluster =
            Cluster::provision(ClusterSpec::named("m1.large", 2, 2).unwrap()).unwrap();
        let xm = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform { seed, lo: -1.0, hi: 1.0 },
        );
        let ym = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform { seed: seed ^ 0xff, lo: -1.0, hi: 1.0 },
        );
        cluster.store().put_local("X", &xm).unwrap();
        cluster.store().put_local("Y", &ym).unwrap();

        let plan = build_plan_with(
            &program,
            &inputs,
            &UnitSplits,
            "t",
            PlanOptions { fuse },
        )
        .unwrap();
        let dag = instantiate(&plan, cluster.store()).unwrap();
        cluster.run(&dag, ExecMode::Real).unwrap();
        let got = cluster.store().get_local("OUT").unwrap();
        let expect = reference(&recipe, &xm, &ym);

        // Chains of ⊘ and ⊙ can overflow; only finite expectations are
        // meaningfully comparable.
        let expect_flat = expect.to_dense_vec().unwrap();
        prop_assume!(expect_flat.iter().all(|v| v.is_finite()));
        let scale = expect_flat.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        let diff = got.max_abs_diff(&expect).unwrap();
        prop_assert!(
            diff <= 1e-9 * scale,
            "distributed result diverged: diff {diff}, scale {scale}"
        );
    }

    /// Plan structural invariant: every stored input a job reads is either
    /// an external input or the output of a job it (transitively) depends
    /// on.
    #[test]
    fn plans_are_dependency_closed(step_list in steps()) {
        let (program, _) = build(&step_list);
        let inputs = square_inputs(8, 4);
        let plan = build_plan(&program, &inputs, &UnitSplits, "t").unwrap();

        // Transitive dependency closure per job.
        let n = plan.jobs.len();
        let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for (i, deps) in plan.deps.iter().enumerate() {
            let mut stack = deps.clone();
            while let Some(d) = stack.pop() {
                if !reach[i][d] {
                    reach[i][d] = true;
                    stack.extend(plan.deps[d].iter().copied());
                }
            }
        }
        // Producer of each matrix name.
        let mut producer: BTreeMap<String, usize> = BTreeMap::new();
        for (idx, job) in plan.jobs.iter().enumerate() {
            for out in job.output_names() {
                producer.insert(out, idx);
            }
        }
        let reads_of = |job: &PhysJob| -> Vec<MatRef> {
            match job {
                PhysJob::Mul { a, b, .. } => vec![a.clone(), b.clone()],
                PhysJob::AddPartials { partials, .. } => {
                    partials.iter().map(|p| MatRef::plain(p.clone())).collect()
                }
                PhysJob::Fused { inputs, .. } => {
                    inputs.iter().map(|(m, _)| m.clone()).collect()
                }
            }
        };
        for (idx, job) in plan.jobs.iter().enumerate() {
            for m in reads_of(job) {
                if m.name == "X" || m.name == "Y" {
                    continue; // external input
                }
                let p = producer.get(&m.name).copied();
                prop_assert!(p.is_some(), "job {idx} reads unproduced {}", m.name);
                let p = p.unwrap();
                prop_assert!(
                    reach[idx][p],
                    "job {idx} reads {} from job {p} without depending on it",
                    m.name
                );
            }
        }
    }

    /// `DeploymentSearch::sweep` evaluates *exactly* the grid implied by
    /// the space — every (instance, slots, nodes) in
    /// `instances × slot_options × node_options`, nothing missing,
    /// nothing duplicated — for arbitrary strides, ranges and slot
    /// multiples, including strides that do not divide the node range.
    #[test]
    fn sweep_covers_the_full_deployment_grid(
        min_nodes in 1u32..=6,
        extra in 0u32..=9,
        node_stride in 1u32..=5,
        slot_mask in 1u32..8, // non-empty subset of {0.5, 1.0, 2.0}
        two_instances in any::<bool>(),
    ) {
        let catalog = cumulon_cluster::instances::catalog();
        let instances: Vec<_> = catalog
            .iter()
            .take(if two_instances { 2 } else { 1 })
            .copied()
            .collect();
        let slots_per_core: Vec<f64> = [0.5, 1.0, 2.0]
            .iter()
            .enumerate()
            .filter(|(i, _)| slot_mask & (1 << i) != 0)
            .map(|(_, f)| *f)
            .collect();
        let space = SearchSpace {
            instances: instances.clone(),
            min_nodes,
            max_nodes: min_nodes + extra,
            node_stride,
            slots_per_core,
            replication: 2,
            billing: BillingPolicy::HourlyCeil,
            failure: None,
        };

        // node_options must hit both endpoints even when the stride
        // does not divide the range.
        let nodes = space.node_options();
        prop_assert_eq!(nodes.first(), Some(&space.min_nodes));
        prop_assert_eq!(nodes.last(), Some(&space.max_nodes));
        prop_assert!(nodes.windows(2).all(|w| w[0] < w[1]));

        let mut model = CostModel::default();
        for i in &instances {
            model.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
        }
        let mut b = ProgramBuilder::new();
        let x = b.input("X");
        let y = b.input("Y");
        let m = b.mul(x, y);
        b.output("OUT", m);
        let program = b.build();
        let inputs = square_inputs(40, 10);

        let plans = DeploymentSearch::new(&model, space.clone())
            .sweep(&program, &inputs)
            .unwrap();

        let mut expected = BTreeSet::new();
        for i in &instances {
            for slots in space.slot_options(i) {
                for n in space.node_options() {
                    expected.insert((i.name.to_string(), slots, n));
                }
            }
        }
        let got: BTreeSet<_> = plans
            .iter()
            .map(|p| (p.instance.name.to_string(), p.slots, p.nodes))
            .collect();
        prop_assert_eq!(plans.len(), expected.len(), "duplicate grid points");
        prop_assert_eq!(got, expected);
    }

    /// Fused vs unfused plans have the same outputs and the unfused plan
    /// never has fewer jobs.
    #[test]
    fn fusion_only_reduces_jobs(step_list in steps()) {
        let (program, _) = build(&step_list);
        let inputs = square_inputs(8, 4);
        let fused = build_plan(&program, &inputs, &UnitSplits, "t").unwrap();
        let unfused = build_plan_with(
            &program,
            &inputs,
            &UnitSplits,
            "u",
            PlanOptions { fuse: false },
        )
        .unwrap();
        prop_assert!(unfused.jobs.len() >= fused.jobs.len());
    }
}

/// `ProgramBuilder` needs an `elem` helper for the generic test; verify
/// the four named helpers agree with it.
#[test]
fn elem_helper_matches_named_builders() {
    let mut b1 = ProgramBuilder::new();
    let x = b1.input("X");
    let y = b1.input("Y");
    let _ = b1.elem(ElemOp::Add, x, y);
    let p1 = b1.build();
    let mut b2 = ProgramBuilder::new();
    let x = b2.input("X");
    let y = b2.input("Y");
    let _ = b2.add(x, y);
    let p2 = b2.build();
    assert_eq!(p1.nodes, p2.nodes);
}
