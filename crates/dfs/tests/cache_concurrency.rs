//! Concurrency and eviction properties of the decoded-tile cache, through
//! the public `TileStore` API only:
//!
//! * cache hits hand every concurrent reader the *same* `Arc<Tile>` —
//!   a hit is an identity share, never a payload copy;
//! * cache capacity (including eviction under hard memory pressure, and a
//!   fully disabled cache) never changes what readers observe: tiles and
//!   receipts are identical at every capacity.

use std::sync::Arc;

use cumulon_dfs::dfs::NodeId;
use cumulon_dfs::{Dfs, DfsConfig, TileStore};
use cumulon_matrix::gen::Generator;
use cumulon_matrix::{MatrixMeta, Tile};
use proptest::prelude::*;

const TILE: usize = 8;

fn store_with_capacity(seed: u64, cache_bytes: u64) -> TileStore {
    let dfs = Dfs::new(
        4,
        DfsConfig {
            replication: 2,
            block_size: 4096,
            seed,
            racks: 1,
        },
    );
    TileStore::with_cache_capacity(dfs, cache_bytes)
}

/// Writes a `tiles x 1` grid of distinct dense tiles into matrix `m`.
fn fill_matrix(store: &TileStore, tiles: usize) {
    store
        .register("m", MatrixMeta::new(tiles * TILE, TILE, TILE))
        .unwrap();
    for t in 0..tiles {
        let tile = Tile::zeros(TILE, TILE).map(move |_| t as f64 + 0.25);
        store.write_tile("m", t, 0, &tile, Some(NodeId(0))).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After a warming read, every concurrent reader of a cached tile gets
    /// an `Arc` pointing at the very same allocation.
    #[test]
    fn concurrent_cache_hits_share_one_arc(
        seed in 0u64..1000,
        tiles in 1usize..5,
        readers in 2usize..6,
    ) {
        // Generated matrix: reads decode nothing, but do populate the cache.
        let store2 = store_with_capacity(seed, 64 << 20);
        store2
            .register_generated(
                "g",
                MatrixMeta::new(tiles * TILE, TILE, TILE),
                Generator::DenseGaussian { seed: 5 },
            )
            .unwrap();
        // Warm the cache: one canonical Arc per tile.
        let warm: Vec<Arc<Tile>> = (0..tiles)
            .map(|t| store2.read_tile("g", t, 0, Some(NodeId(0)), false).unwrap().0)
            .collect();
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let store2 = store2.clone();
                let warm = warm.clone();
                std::thread::spawn(move || {
                    for i in 0..tiles * 3 {
                        let t = (i + r) % tiles;
                        let (got, _) = store2
                            .read_tile("g", t, 0, Some(NodeId((r % 4) as u32)), false)
                            .unwrap();
                        assert!(
                            Arc::ptr_eq(&got, &warm[t]),
                            "cache hit must share the warmed Arc"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Cache capacity is unobservable: a store whose cache constantly
    /// evicts (or is disabled outright) returns the same tiles and the
    /// same receipts as one whose cache never evicts, for any read order.
    #[test]
    fn eviction_pressure_never_changes_results(
        seed in 0u64..1000,
        tiles in 2usize..6,
        reads in proptest::collection::vec((0usize..6, 0u32..4), 1..30),
    ) {
        // Same DFS seed => identical placement; only cache budgets differ.
        let roomy = store_with_capacity(seed, 64 << 20);
        let tight = store_with_capacity(seed, 600); // fits ~1 tile: constant eviction
        let none = store_with_capacity(seed, 0);
        fill_matrix(&roomy, tiles);
        fill_matrix(&tight, tiles);
        fill_matrix(&none, tiles);
        for &(t, reader) in &reads {
            let t = t % tiles;
            let r = Some(NodeId(reader));
            let (tile_a, io_a) = roomy.read_tile("m", t, 0, r, false).unwrap();
            let (tile_b, io_b) = tight.read_tile("m", t, 0, r, false).unwrap();
            let (tile_c, io_c) = none.read_tile("m", t, 0, r, false).unwrap();
            prop_assert_eq!(&*tile_a, &*tile_b);
            prop_assert_eq!(&*tile_a, &*tile_c);
            prop_assert_eq!(io_a, io_b);
            prop_assert_eq!(io_a, io_c);
        }
    }
}
