//! Model-based property tests for the DFS: a random sequence of
//! operations is replayed against a trivial in-memory model, and the DFS
//! must agree with the model wherever the model is defined.

use bytes::Bytes;
use cumulon_dfs::dfs::NodeId;
use cumulon_dfs::{Dfs, DfsConfig, DfsError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Write file `f` (of the fixed name pool) with `len` bytes of `fill`.
    Write {
        f: u8,
        len: u16,
        fill: u8,
        writer: u8,
    },
    /// Read file `f` from node `reader`.
    Read { f: u8, reader: u8 },
    /// Delete file `f`.
    Delete { f: u8 },
    /// Kill node `n`.
    KillNode { n: u8 },
    /// Add a node.
    AddNode,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        4 => (0u8..6, 1u16..2000, any::<u8>(), 0u8..4)
            .prop_map(|(f, len, fill, writer)| Op::Write { f, len, fill, writer }),
        3 => (0u8..6, 0u8..4).prop_map(|(f, reader)| Op::Read { f, reader }),
        2 => (0u8..6).prop_map(|f| Op::Delete { f }),
        1 => (0u8..4).prop_map(|n| Op::KillNode { n }),
        1 => Just(Op::AddNode),
    ];
    proptest::collection::vec(op, 1..40)
}

fn name(f: u8) -> String {
    format!("/f{f}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replication ≥ live-node failures ⇒ reads always return exactly what
    /// the model says, and namespace state matches.
    #[test]
    fn dfs_agrees_with_model(op_list in ops(), seed in 0u64..100) {
        let dfs = Dfs::new(4, DfsConfig { replication: 4, block_size: 256, seed, racks: 1 });
        // Model: file name → payload, plus whether any node failure has
        // happened since the file was written (the only legitimate cause
        // of data loss).
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let mut kills_since_write: HashMap<String, bool> = HashMap::new();
        let mut live_nodes = 4i32;
        let mut next_node = 4u32;
        let mut killed = [false; 64];

        for op in &op_list {
            match op {
                Op::Write { f, len, fill, writer } => {
                    let path = name(*f);
                    let payload = vec![*fill; *len as usize];
                    let writer_node = NodeId(*writer as u32);
                    let result = dfs.write_file(&path, Bytes::from(payload.clone()), Some(writer_node));
                    match result {
                        Ok(receipt) => {
                            prop_assert!(!model.contains_key(&path), "write over existing must fail");
                            prop_assert_eq!(receipt.bytes, *len as u64);
                            kills_since_write.insert(path.clone(), false);
                            model.insert(path, payload);
                        }
                        Err(DfsError::AlreadyExists(_)) => {
                            prop_assert!(model.contains_key(&path));
                        }
                        Err(DfsError::InsufficientNodes { .. }) => {
                            prop_assert!(live_nodes == 0);
                        }
                        Err(e) => prop_assert!(false, "unexpected write error {e}"),
                    }
                }
                Op::Read { f, reader } => {
                    let path = name(*f);
                    let result = dfs.read_file(&path, Some(NodeId(*reader as u32)));
                    match (result, model.get(&path)) {
                        (Ok((data, receipt)), Some(expect)) => {
                            prop_assert_eq!(data.as_ref(), expect.as_slice());
                            prop_assert_eq!(receipt.local_bytes + receipt.remote_bytes, receipt.bytes);
                        }
                        (Err(DfsError::FileNotFound(_)), None) => {}
                        (Ok(_), None) => prop_assert!(false, "read of unwritten file succeeded"),
                        // Loss is only legitimate after a node failure
                        // postdating the write (every replica holder may
                        // have died before re-replication found a target).
                        (Err(DfsError::BlockLost { .. }), Some(_)) => {
                            prop_assert!(
                                kills_since_write[&path],
                                "data lost without any node failure since the write"
                            );
                        }
                        (Err(e), Some(_)) => {
                            prop_assert!(false, "wrong error for written file: {e}");
                        }
                        (Err(e), None) => prop_assert!(
                            matches!(e, DfsError::FileNotFound(_)),
                            "wrong error {e}"
                        ),
                    }
                }
                Op::Delete { f } => {
                    let path = name(*f);
                    kills_since_write.remove(&path);
                    match (dfs.delete_file(&path), model.remove(&path)) {
                        (Ok(()), Some(_)) => {}
                        (Err(DfsError::FileNotFound(_)), None) => {}
                        (r, m) => prop_assert!(false, "delete mismatch: {r:?} vs model {:?}", m.is_some()),
                    }
                }
                Op::KillNode { n } => {
                    if !killed[*n as usize] {
                        killed[*n as usize] = true;
                        live_nodes -= 1;
                        for flag in kills_since_write.values_mut() {
                            *flag = true;
                        }
                        let _ = dfs.kill_node(NodeId(*n as u32));
                    }
                }
                Op::AddNode => {
                    let id = dfs.add_node();
                    prop_assert_eq!(id.0, next_node);
                    killed[next_node as usize] = false;
                    next_node += 1;
                    live_nodes += 1;
                }
            }
        }

        // Final invariant: logical bytes equal the model's totals.
        let (logical, physical) = dfs.storage_stats();
        let expect_logical: u64 = model.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(logical, expect_logical);
        prop_assert!(physical >= logical || model.is_empty() || live_nodes <= 1,
            "physical {physical} < logical {logical}");
    }

    /// Sequential single-node kills with replication ≥ 2 lose NOTHING:
    /// each kill leaves at least one replica of every block alive, and
    /// re-replication restores the factor before the next kill.
    #[test]
    fn sequential_kills_lose_nothing_at_repl2(
        kills in proptest::collection::vec(0u32..6, 1..8),
        files in 1u8..8,
        len in 1u16..3000,
        seed in 0u64..1000,
    ) {
        let dfs = Dfs::new(6, DfsConfig { replication: 2, block_size: 256, seed, racks: 1 });
        let mut payloads = Vec::new();
        for f in 0..files {
            let payload: Vec<u8> = (0..len as usize).map(|i| (i * (f as usize + 3) % 251) as u8).collect();
            dfs.write_file(&name(f), Bytes::from(payload.clone()), Some(NodeId(f as u32 % 6))).unwrap();
            payloads.push(payload);
        }
        // Kill nodes one at a time (down to a floor of two survivors so
        // re-replication always has a target); after EVERY kill all files
        // must read back intact from a surviving node.
        let mut killed = [false; 6];
        let mut live = 6u32;
        for &n in &kills {
            if killed[n as usize] || live <= 2 {
                continue;
            }
            killed[n as usize] = true;
            live -= 1;
            dfs.kill_node(NodeId(n)).unwrap();
            let reader = (0..6u32).map(NodeId).find(|&r| dfs.is_node_live(r)).unwrap();
            for (f, expect) in payloads.iter().enumerate() {
                let (data, _) = dfs.read_file(&name(f as u8), Some(reader)).unwrap();
                prop_assert_eq!(data.as_ref(), expect.as_slice());
            }
        }
    }

    /// A correlated *whole-rack* failure with rack-aware placement loses
    /// nothing: the second replica of every block lives off-rack.
    #[test]
    fn rack_failure_loses_nothing_with_rack_aware_placement(
        dead_rack in 0u32..2,
        files in 1u8..8,
        len in 1u16..3000,
        seed in 0u64..1000,
    ) {
        let dfs = Dfs::new(6, DfsConfig { replication: 2, block_size: 256, seed, racks: 2 });
        let mut payloads = Vec::new();
        for f in 0..files {
            let payload: Vec<u8> = (0..len as usize).map(|i| (i * (f as usize + 7) % 251) as u8).collect();
            dfs.write_file(&name(f), Bytes::from(payload.clone()), Some(NodeId(f as u32 % 6))).unwrap();
            payloads.push(payload);
        }
        // Node n lives in rack n % 2: kill every node of one rack at once
        // (no re-replication can help between correlated deaths).
        for n in 0..6u32 {
            if n % 2 == dead_rack {
                dfs.kill_node(NodeId(n)).unwrap();
            }
        }
        let reader = (0..6u32).map(NodeId).find(|&r| dfs.is_node_live(r)).unwrap();
        for (f, expect) in payloads.iter().enumerate() {
            let (data, _) = dfs.read_file(&name(f as u8), Some(reader)).unwrap();
            prop_assert_eq!(data.as_ref(), expect.as_slice());
        }
    }

    /// Writes are never silently truncated or padded across block splits.
    #[test]
    fn block_splitting_roundtrip(len in 0usize..5000, block in 1u64..512) {
        let dfs = Dfs::new(3, DfsConfig { replication: 2, block_size: block, seed: 1, racks: 1 });
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        dfs.write_file("/x", Bytes::from(payload.clone()), Some(NodeId(0))).unwrap();
        let (data, receipt) = dfs.read_file("/x", Some(NodeId(1))).unwrap();
        prop_assert_eq!(data.as_ref(), payload.as_slice());
        prop_assert_eq!(receipt.bytes, len as u64);
    }
}
