//! Content-addressed on-disk blob store: the third (disk) tier of the
//! storage hierarchy.
//!
//! Spilled tile payloads land here as entries in **append-only segment
//! files** (`seg-NNNNNN.blob` under the store's directory). Each entry is
//! keyed by a deterministic 128-bit digest of its *uncompressed* bytes,
//! so identical tile encodings written twice dedupe to one stored copy —
//! re-spilling a tile that round-tripped through RAM unchanged costs no
//! new disk bytes. Entries carry a reference count (one per live DFS file
//! pointing at them); releasing the last reference marks the entry's
//! bytes dead in its segment, and a **compaction pass** rewrites the live
//! remainder of garbage-heavy segments into the current segment and
//! deletes the old file. Compaction triggers automatically once a
//! segment's dead bytes outweigh its live bytes (and the segment is
//! sealed), which is exactly the state `drop_matrix` / checkpoint
//! truncation leaves behind. Two **store-wide** triggers back the
//! per-segment rule up for long iterative runs, whose churn can strand an
//! unbounded tail of sealed segments each just under 50% dead: when total
//! dead bytes exceed [`DEFAULT_DEAD_SWEEP_BYTES`] or the sealed-segment
//! count exceeds [`DEFAULT_MAX_SEALED_SEGMENTS`], every sealed
//! garbage-bearing segment is swept.
//!
//! Segment entry framing (little-endian):
//!
//! ```text
//! [key: 16 bytes] [codec: u8] [stored_len: u32] [raw_len: u32] [payload]
//! ```
//!
//! The store never reads an entry it did not index in memory, so the
//! framing exists for crash-inspection and compaction rewrites, not for
//! recovery — the whole store lives for one simulation process and its
//! directory is removed on drop.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::PathBuf;

use cumulon_matrix::compress::Codec;

use crate::error::{DfsError, Result};

/// Deterministic 128-bit content digest (two independent FNV-1a streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobKey(pub [u64; 2]);

impl BlobKey {
    /// Digest of a byte buffer. Not cryptographic — collision resistance
    /// here only has to beat the handful of distinct tiles one simulation
    /// produces, and determinism (same bytes → same key on every run and
    /// platform) is the property the equivalence tests lean on.
    pub fn digest(bytes: &[u8]) -> BlobKey {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h1 = OFFSET;
        // Second stream: different offset basis, byte-shifted input.
        let mut h2 = OFFSET ^ 0x5bd1_e995_9d1b_54a5;
        for &b in bytes {
            h1 = (h1 ^ b as u64).wrapping_mul(PRIME);
            h2 = (h2 ^ (b as u64).rotate_left(3)).wrapping_mul(PRIME);
        }
        // Fold the length in so prefixes don't collide.
        h2 = (h2 ^ bytes.len() as u64).wrapping_mul(PRIME);
        BlobKey([h1, h2])
    }

    fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.0[0].to_le_bytes());
        out[8..].copy_from_slice(&self.0[1].to_le_bytes());
        out
    }
}

/// Where one live entry resides.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    segment: u64,
    /// Offset of the payload (past the frame header) within the segment.
    offset: u64,
    /// Stored (possibly compressed) payload length.
    stored_len: u32,
    /// Uncompressed length.
    raw_len: u32,
    codec: Codec,
    /// Live references (DFS files currently pointing at this entry).
    refs: u32,
}

#[derive(Debug, Default)]
struct Segment {
    live_bytes: u64,
    dead_bytes: u64,
}

/// Aggregate counters for observability and the spill invariants.
/// Counters are monotonic totals; `live_bytes`/`dead_bytes` are the
/// current segment occupancy split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlobStats {
    /// Distinct live entries.
    pub live_entries: u64,
    /// Stored bytes of live entries (compressed form).
    pub live_bytes: u64,
    /// Stored bytes of dead entries not yet compacted away.
    pub dead_bytes: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Total payload bytes ever appended (compressed form).
    pub bytes_written: u64,
    /// Total uncompressed bytes ever appended (the pre-codec size).
    pub raw_bytes_written: u64,
    /// Total payload bytes read back out.
    pub bytes_read: u64,
    /// Compaction passes executed.
    pub compactions: u64,
    /// `put` calls answered by an existing entry (content dedupe).
    pub dedup_hits: u64,
}

impl BlobStats {
    /// Compression ratio achieved on everything ever written:
    /// uncompressed over stored (1.0 when nothing was written).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_written == 0 {
            1.0
        } else {
            self.raw_bytes_written as f64 / self.bytes_written as f64
        }
    }
}

/// Append-only, content-addressed segment store. Single-threaded by
/// construction — the owner (the spill plane) serializes access.
#[derive(Debug)]
pub struct BlobStore {
    dir: PathBuf,
    /// Segment id → occupancy. Current (open) segment is the max id.
    segments: HashMap<u64, Segment>,
    entries: HashMap<BlobKey, EntryMeta>,
    next_segment: u64,
    current: Option<(u64, File)>,
    current_len: u64,
    /// Roll to a new segment past this many payload+frame bytes.
    segment_roll_bytes: u64,
    /// Store-wide sweep trigger: total dead bytes across all segments.
    dead_sweep_bytes: u64,
    /// Store-wide sweep trigger: sealed-segment count.
    max_sealed_segments: u64,
    stats: BlobStats,
}

const FRAME_HEADER: u64 = 16 + 1 + 4 + 4;
/// Default segment roll size: small enough that drop-heavy workloads
/// produce several segments for compaction to reclaim, large enough that
/// a segment amortizes its file handle.
pub const DEFAULT_SEGMENT_BYTES: u64 = 16 << 20;
/// Default store-wide dead-byte budget before a sweep fires (see
/// [`BlobStore::set_compaction_thresholds`]): a few segments' worth of
/// garbage, sized so long iterative runs reclaim space well before the
/// per-segment 50% trigger would.
pub const DEFAULT_DEAD_SWEEP_BYTES: u64 = 4 * DEFAULT_SEGMENT_BYTES;
/// Default sealed-segment count before a sweep fires.
pub const DEFAULT_MAX_SEALED_SEGMENTS: u64 = 64;

impl BlobStore {
    /// Opens (creates) a blob store rooted at `dir`. The directory is
    /// created if missing and removed again when the store drops.
    pub fn open(dir: PathBuf) -> Result<BlobStore> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| DfsError::Spill(format!("create {}: {e}", dir.display())))?;
        Ok(BlobStore {
            dir,
            segments: HashMap::new(),
            entries: HashMap::new(),
            next_segment: 0,
            current: None,
            current_len: 0,
            segment_roll_bytes: DEFAULT_SEGMENT_BYTES,
            dead_sweep_bytes: DEFAULT_DEAD_SWEEP_BYTES,
            max_sealed_segments: DEFAULT_MAX_SEALED_SEGMENTS,
            stats: BlobStats::default(),
        })
    }

    /// Overrides the segment roll size (tests drive compaction with tiny
    /// segments).
    pub fn set_segment_roll_bytes(&mut self, bytes: u64) {
        self.segment_roll_bytes = bytes.max(1);
    }

    /// Overrides the store-wide sweep triggers: a sweep of every sealed
    /// garbage-bearing segment fires when total dead bytes exceed
    /// `dead_sweep_bytes` **or** more than `max_sealed_segments` sealed
    /// segments exist (and any garbage exists to reclaim). The per-segment
    /// 50% trigger alone lets long iterative runs accumulate an unbounded
    /// tail of sealed segments that each stay just under the threshold;
    /// the store-wide triggers bound that tail.
    pub fn set_compaction_thresholds(&mut self, dead_sweep_bytes: u64, max_sealed_segments: u64) {
        self.dead_sweep_bytes = dead_sweep_bytes;
        self.max_sealed_segments = max_sealed_segments;
    }

    /// The store's on-disk directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id:06}.blob"))
    }

    fn open_segment(&mut self) -> Result<()> {
        if self.current.is_some() && self.current_len < self.segment_roll_bytes {
            return Ok(());
        }
        let id = self.next_segment;
        self.next_segment += 1;
        let path = self.segment_path(id);
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| DfsError::Spill(format!("open {}: {e}", path.display())))?;
        self.segments.insert(id, Segment::default());
        self.current = Some((id, file));
        self.current_len = 0;
        Ok(())
    }

    /// Stores `data` (already encoded under `codec`, `raw_len` bytes
    /// before the codec) and takes one reference on it. Content-addressed:
    /// if an entry with the same `key` is live, its refcount is bumped and
    /// nothing is written.
    pub fn put(&mut self, key: BlobKey, codec: Codec, data: &[u8], raw_len: u32) -> Result<()> {
        if let Some(e) = self.entries.get_mut(&key) {
            e.refs += 1;
            self.stats.dedup_hits += 1;
            return Ok(());
        }
        self.open_segment()?;
        let (seg_id, file) = self.current.as_mut().expect("segment open");
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + data.len());
        frame.extend_from_slice(&key.to_bytes());
        frame.push(codec.tag());
        frame.extend_from_slice(&(data.len() as u32).to_le_bytes());
        frame.extend_from_slice(&raw_len.to_le_bytes());
        frame.extend_from_slice(data);
        file.write_all(&frame)
            .map_err(|e| DfsError::Spill(format!("append segment {seg_id}: {e}")))?;
        let offset = self.current_len + FRAME_HEADER;
        let seg_id = *seg_id;
        self.current_len += frame.len() as u64;
        self.entries.insert(
            key,
            EntryMeta {
                segment: seg_id,
                offset,
                stored_len: data.len() as u32,
                raw_len,
                codec,
                refs: 1,
            },
        );
        let seg = self.segments.get_mut(&seg_id).expect("segment indexed");
        seg.live_bytes += data.len() as u64;
        self.stats.live_entries += 1;
        self.stats.live_bytes += data.len() as u64;
        self.stats.bytes_written += data.len() as u64;
        self.stats.raw_bytes_written += raw_len as u64;
        Ok(())
    }

    /// Reads an entry's stored payload and its codec. The caller owns
    /// decompression (the blob layer is codec-agnostic beyond framing).
    pub fn get(&mut self, key: BlobKey) -> Result<(Codec, Vec<u8>, u32)> {
        let e = *self
            .entries
            .get(&key)
            .ok_or_else(|| DfsError::Spill(format!("blob entry {key:?} not found")))?;
        let mut buf = vec![0u8; e.stored_len as usize];
        // The entry may live in the currently-open segment; reuse that
        // handle (reads move the cursor, appends re-seek to the end).
        if let Some((cur_id, file)) = self.current.as_mut() {
            if *cur_id == e.segment {
                file.seek(SeekFrom::Start(e.offset))
                    .and_then(|_| file.read_exact(&mut buf))
                    .and_then(|_| file.seek(SeekFrom::End(0)))
                    .map_err(|err| DfsError::Spill(format!("read segment {cur_id}: {err}")))?;
                self.stats.bytes_read += buf.len() as u64;
                return Ok((e.codec, buf, e.raw_len));
            }
        }
        let path = self.segment_path(e.segment);
        let mut file = File::open(&path)
            .map_err(|err| DfsError::Spill(format!("{}: {err}", path.display())))?;
        file.seek(SeekFrom::Start(e.offset))
            .and_then(|_| file.read_exact(&mut buf))
            .map_err(|err| DfsError::Spill(format!("read {}: {err}", path.display())))?;
        self.stats.bytes_read += buf.len() as u64;
        Ok((e.codec, buf, e.raw_len))
    }

    /// True when `key` has a live entry.
    pub fn contains(&self, key: BlobKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Takes an additional reference on a live entry.
    pub fn retain(&mut self, key: BlobKey) -> Result<()> {
        let e = self
            .entries
            .get_mut(&key)
            .ok_or_else(|| DfsError::Spill(format!("retain of dead blob {key:?}")))?;
        e.refs += 1;
        Ok(())
    }

    /// Drops one reference; the last release kills the entry and may
    /// trigger compaction of its segment.
    pub fn release(&mut self, key: BlobKey) -> Result<()> {
        let e = self
            .entries
            .get_mut(&key)
            .ok_or_else(|| DfsError::Spill(format!("release of dead blob {key:?}")))?;
        e.refs -= 1;
        if e.refs > 0 {
            return Ok(());
        }
        let e = self.entries.remove(&key).expect("entry present");
        let seg = self.segments.get_mut(&e.segment).expect("segment indexed");
        seg.live_bytes -= e.stored_len as u64;
        seg.dead_bytes += e.stored_len as u64;
        self.stats.live_entries -= 1;
        self.stats.live_bytes -= e.stored_len as u64;
        self.stats.dead_bytes += e.stored_len as u64;
        self.maybe_compact(e.segment)?;
        self.maybe_sweep()?;
        Ok(())
    }

    /// Compacts `segment` when it is sealed and mostly dead.
    fn maybe_compact(&mut self, segment: u64) -> Result<()> {
        let is_current = matches!(self.current, Some((id, _)) if id == segment);
        let seg = self.segments.get(&segment).expect("segment indexed");
        if is_current || seg.dead_bytes <= seg.live_bytes {
            return Ok(());
        }
        self.compact_segment(segment)
    }

    /// Store-wide compaction trigger: when total dead bytes or the
    /// sealed-segment count outgrow their budgets, sweep every sealed
    /// segment carrying garbage. Catches the long-run tail the per-segment
    /// rule misses — many segments each slightly under 50% dead.
    fn maybe_sweep(&mut self) -> Result<()> {
        if self.stats.dead_bytes == 0 {
            return Ok(());
        }
        let sealed = self.segments.len() as u64 - u64::from(self.current.is_some());
        if self.stats.dead_bytes <= self.dead_sweep_bytes && sealed <= self.max_sealed_segments {
            return Ok(());
        }
        let current = self.current.as_ref().map(|(id, _)| *id);
        let mut victims: Vec<u64> = self
            .segments
            .iter()
            .filter(|(id, s)| Some(**id) != current && s.dead_bytes > 0)
            .map(|(id, _)| *id)
            .collect();
        victims.sort_unstable(); // deterministic rewrite order
        for id in victims {
            self.compact_segment(id)?;
        }
        Ok(())
    }

    /// Rewrites a segment's live entries into the current segment, then
    /// deletes its file. Dead-only segments are simply deleted.
    fn compact_segment(&mut self, segment: u64) -> Result<()> {
        let live_keys: Vec<BlobKey> = self
            .entries
            .iter()
            .filter(|(_, e)| e.segment == segment)
            .map(|(k, _)| *k)
            .collect();
        for key in live_keys {
            let (codec, data, raw_len) = self.get(key)?;
            let refs = self.entries.remove(&key).expect("live entry").refs;
            // Live/dead accounting: the old copy leaves its segment…
            let seg = self.segments.get_mut(&segment).expect("segment indexed");
            seg.live_bytes -= data.len() as u64;
            self.stats.live_entries -= 1;
            self.stats.live_bytes -= data.len() as u64;
            // …and a fresh copy lands in the current segment with the
            // same refcount. `put` re-counts bytes_written: compaction
            // I/O is real I/O and the stats should show it.
            self.put(key, codec, &data, raw_len)?;
            self.entries.get_mut(&key).expect("recreated").refs = refs;
        }
        let seg = self.segments.remove(&segment).expect("segment indexed");
        debug_assert_eq!(seg.live_bytes, 0, "compaction moved all live bytes");
        self.stats.dead_bytes -= seg.dead_bytes;
        let path = self.segment_path(segment);
        std::fs::remove_file(&path)
            .map_err(|e| DfsError::Spill(format!("remove {}: {e}", path.display())))?;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Forces a compaction sweep over every segment with any dead bytes
    /// (the explicit maintenance entry point; automatic compaction fires
    /// past the per-segment 50% garbage threshold or the store-wide
    /// dead-byte / sealed-segment budgets). The current segment is
    /// sealed first if it carries garbage, so a full sweep leaves zero
    /// dead bytes behind.
    pub fn compact(&mut self) -> Result<u64> {
        if let Some((id, _)) = &self.current {
            let seg = self.segments.get(id).expect("segment indexed");
            if seg.dead_bytes > 0 {
                self.current = None;
            }
        }
        let current = self.current.as_ref().map(|(id, _)| *id);
        let victims: Vec<u64> = self
            .segments
            .iter()
            .filter(|(id, s)| Some(**id) != current && s.dead_bytes > 0)
            .map(|(id, _)| *id)
            .collect();
        let before = self.stats.compactions;
        for id in victims {
            self.compact_segment(id)?;
        }
        Ok(self.stats.compactions - before)
    }

    /// Current counters.
    pub fn stats(&self) -> BlobStats {
        let mut s = self.stats;
        s.segments = self.segments.len() as u64;
        s
    }
}

impl Drop for BlobStore {
    fn drop(&mut self) {
        // Best-effort cleanup: segments, then the directory if now empty.
        self.current = None;
        for id in self.segments.keys() {
            let _ = std::fs::remove_file(self.segment_path(*id));
        }
        let _ = std::fs::remove_dir(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_matrix::compress::maybe_compress;

    fn tmp_store(tag: &str) -> BlobStore {
        let dir =
            std::env::temp_dir().join(format!("cumulon-blob-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BlobStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip_with_codec() {
        let mut s = tmp_store("roundtrip");
        let raw: Vec<u8> = (0..10_000u32).map(|i| (i % 7) as u8).collect();
        let (codec, stored) = maybe_compress(&raw);
        let key = BlobKey::digest(&raw);
        s.put(key, codec, &stored, raw.len() as u32).unwrap();
        let (c2, data, raw_len) = s.get(key).unwrap();
        assert_eq!(c2, codec);
        assert_eq!(data, stored);
        assert_eq!(raw_len as usize, raw.len());
        assert_eq!(
            cumulon_matrix::compress::decompress(c2, &data).unwrap(),
            raw
        );
        let st = s.stats();
        assert_eq!(st.live_entries, 1);
        assert!(st.compression_ratio() > 2.0, "{:?}", st);
    }

    #[test]
    fn content_dedupe_and_refcounts() {
        let mut s = tmp_store("dedupe");
        let raw = vec![9u8; 4096];
        let key = BlobKey::digest(&raw);
        s.put(key, Codec::Raw, &raw, raw.len() as u32).unwrap();
        s.put(key, Codec::Raw, &raw, raw.len() as u32).unwrap();
        let st = s.stats();
        assert_eq!(st.dedup_hits, 1);
        assert_eq!(st.live_entries, 1);
        assert_eq!(st.bytes_written, 4096, "second put wrote nothing");
        s.release(key).unwrap();
        assert!(s.contains(key), "one ref still live");
        s.release(key).unwrap();
        assert!(!s.contains(key));
        assert!(s.release(key).is_err(), "double release is a logic error");
    }

    #[test]
    fn digest_is_deterministic_and_length_sensitive() {
        assert_eq!(BlobKey::digest(b"abc"), BlobKey::digest(b"abc"));
        assert_ne!(BlobKey::digest(b"abc"), BlobKey::digest(b"abd"));
        assert_ne!(BlobKey::digest(b""), BlobKey::digest(b"\0"));
        assert_ne!(BlobKey::digest(b"a"), BlobKey::digest(b"a\0"));
    }

    #[test]
    fn segments_roll_and_compaction_reclaims() {
        let mut s = tmp_store("compact");
        s.set_segment_roll_bytes(1024);
        let mut keys = Vec::new();
        for i in 0..20u32 {
            // Distinct, incompressible-ish content per entry.
            let raw: Vec<u8> = (0..400u32)
                .map(|j| (i.wrapping_mul(37).wrapping_add(j * 11) % 251) as u8)
                .collect();
            let key = BlobKey::digest(&raw);
            s.put(key, Codec::Raw, &raw, raw.len() as u32).unwrap();
            keys.push((key, raw));
        }
        let st = s.stats();
        assert!(st.segments > 3, "tiny roll must produce segments: {st:?}");
        // Kill every other entry: sealed segments go >50% dead and
        // auto-compact; survivors must still read back intact.
        for (i, (key, _)) in keys.iter().enumerate() {
            if i % 2 == 0 {
                s.release(*key).unwrap();
            }
        }
        let st_after = s.stats();
        assert!(st_after.compactions > 0, "{st_after:?}");
        assert!(st_after.segments < st.segments, "{st_after:?} vs {st:?}");
        for (i, (key, raw)) in keys.iter().enumerate() {
            if i % 2 == 1 {
                let (codec, data, _) = s.get(*key).unwrap();
                assert_eq!(codec, Codec::Raw);
                assert_eq!(&data, raw, "entry {i} survived compaction");
            }
        }
        // Explicit sweep clears the remaining garbage.
        for (i, (key, _)) in keys.iter().enumerate() {
            if i % 2 == 1 {
                s.release(*key).unwrap();
            }
        }
        s.compact().unwrap();
        let st_end = s.stats();
        assert_eq!(st_end.live_entries, 0);
        assert_eq!(st_end.dead_bytes, 0, "{st_end:?}");
    }

    /// Long-run churn regression: refcount churn across >16 MiB of
    /// segments, patterned so every sealed segment stays *under* the
    /// per-segment 50% trigger. Without the store-wide triggers the dead
    /// bytes and sealed-segment count grow without bound; with them the
    /// garbage stays within the configured budget.
    #[test]
    fn store_wide_triggers_bound_long_run_garbage() {
        const ENTRY: usize = 32 << 10; // 32 KiB entries
        const ENTRIES: u32 = 600; // ~18.75 MiB total churned
        let fill = |i: u32| -> Vec<u8> {
            let mut raw: Vec<u8> = (0..ENTRY as u32)
                .map(|j| (i.wrapping_mul(131).wrapping_add(j.wrapping_mul(7)) % 253) as u8)
                .collect();
            // Distinct content per index — mod-251 patterns alone repeat.
            raw[..4].copy_from_slice(&i.to_le_bytes());
            raw
        };

        // Control: thresholds effectively disabled reproduce the old
        // behaviour — garbage accumulates past 16 MiB of segment churn.
        let mut old = tmp_store("churn-unbounded");
        old.set_segment_roll_bytes(256 << 10); // 8 entries per segment
        old.set_compaction_thresholds(u64::MAX, u64::MAX);
        let mut sweep = tmp_store("churn-bounded");
        sweep.set_segment_roll_bytes(256 << 10);
        sweep.set_compaction_thresholds(1 << 20, 16); // 1 MiB dead budget

        for s in [&mut old, &mut sweep] {
            for i in 0..ENTRIES {
                let raw = fill(i);
                let key = BlobKey::digest(&raw);
                s.put(key, Codec::Raw, &raw, raw.len() as u32).unwrap();
                // Kill 3 of every 8 entries (per segment: 3 dead vs 5
                // live — always under the per-segment 50% rule).
                if i % 8 < 3 {
                    s.release(key).unwrap();
                }
            }
        }

        let st_old = old.stats();
        assert!(
            st_old.bytes_written > 16 << 20,
            "churned enough: {st_old:?}"
        );
        assert_eq!(st_old.compactions, 0, "per-segment rule never fires");
        assert!(st_old.dead_bytes > 6 << 20, "garbage unbounded: {st_old:?}");
        assert!(st_old.segments > 70, "segment tail unbounded: {st_old:?}");

        let st = sweep.stats();
        assert!(st.compactions > 0, "store-wide trigger fired: {st:?}");
        // Dead bytes stay within one budget of the trigger (a sweep runs
        // as soon as the budget is crossed, so at most the budget plus the
        // open segment's garbage remains).
        assert!(st.dead_bytes <= (1 << 20) + (256 << 10), "{st:?}");
        // The segment count stays near the floor live data needs (old
        // behaviour strands every churned segment forever).
        let live_floor = st.live_bytes / (256 << 10) + 4;
        assert!(st.segments <= live_floor, "{st:?} (floor {live_floor})");
        assert!(st.segments < st_old.segments, "{st:?} vs {st_old:?}");

        // Every surviving entry still reads back intact.
        for i in 0..ENTRIES {
            if i % 8 >= 3 {
                let raw = fill(i);
                let (codec, data, _) = sweep.get(BlobKey::digest(&raw)).unwrap();
                assert_eq!(codec, Codec::Raw);
                assert_eq!(data, raw, "entry {i} survived sweeps");
            }
        }

        // The segment-count trigger alone also bounds the tail: many
        // sealed mostly-live segments plus a trickle of garbage.
        let mut counted = tmp_store("churn-segcount");
        counted.set_segment_roll_bytes(64 << 10);
        counted.set_compaction_thresholds(u64::MAX, 8);
        let mut keys = Vec::new();
        for i in 0..64u32 {
            let raw: Vec<u8> = (0..16 << 10u32).map(|j| ((i + j) % 251) as u8).collect();
            let key = BlobKey::digest(&raw);
            counted
                .put(key, Codec::Raw, &raw, raw.len() as u32)
                .unwrap();
            keys.push(key);
        }
        // One release per key: each segment goes 25% dead — under the
        // per-segment rule, but the sealed count is far over 8.
        for key in keys.iter().step_by(4) {
            counted.release(*key).unwrap();
        }
        let st = counted.stats();
        assert!(st.compactions > 0, "{st:?}");
        assert_eq!(
            st.dead_bytes, 0,
            "count trigger swept all sealed garbage: {st:?}"
        );
    }

    #[test]
    fn drop_removes_directory() {
        let s = tmp_store("drop");
        let dir = s.dir().clone();
        drop(s);
        assert!(!dir.exists(), "{} should be cleaned up", dir.display());
    }
}
