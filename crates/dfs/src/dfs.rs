//! The DFS façade: files of blocks with replica placement and I/O receipts.
//!
//! Files live on one of two planes (see [`crate::datanode::BlockPayload`]):
//! the byte plane ([`Dfs::write_file`]) and the zero-copy handle plane
//! ([`Dfs::write_tile_file`]). Both planes share the same placement policy,
//! block-splitting rule, replica bookkeeping, and receipt accounting — a
//! handle file charges exactly the wire bytes its encoding would occupy, so
//! receipts are bit-identical across planes. Encoding happens only when a
//! handle file is read *as bytes* ([`Dfs::read_file`]), which is the
//! serialization boundary checkpoints and recovery verification go through.

use std::sync::Arc;

use bytes::Bytes;
use cumulon_matrix::compress::{decompress, maybe_compress, Codec};
use cumulon_matrix::serialize::{decode_tile, encode_tile};
use cumulon_matrix::Tile;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::blob::BlobKey;
use crate::datanode::{BlockId, BlockPayload, DataNode};
use crate::error::{DfsError, Result};
use crate::namenode::{BlockMeta, NameNode};
use crate::spill::{SpillConfig, SpillPlane, SpillStats};

/// Identifier of a datanode (the cluster simulator uses the same ids for
/// compute nodes, so "node-local read" is meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// DFS-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Replication factor for every block (HDFS default: 3).
    pub replication: usize,
    /// Maximum block payload size in bytes (tiles are written one block
    /// each if they fit; larger payloads are split).
    pub block_size: u64,
    /// Seed for the placement policy.
    pub seed: u64,
    /// Number of racks; node `n` lives in rack `n % racks`. With more than
    /// one rack, the second replica of every block is placed off the first
    /// replica's rack (HDFS's fault-domain policy), so losing a whole rack
    /// loses no data when `replication ≥ 2`.
    pub racks: u32,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            replication: 3,
            block_size: 128 << 20,
            seed: 0x0df5,
            racks: 1,
        }
    }
}

impl DfsConfig {
    /// Rack of a node under this configuration.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        node.0 % self.racks.max(1)
    }
}

/// What an I/O operation did, for the simulator to charge time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IoReceipt {
    /// Payload bytes moved (for writes: logical bytes, i.e. one replica).
    pub bytes: u64,
    /// Bytes served from the reader's own node.
    pub local_bytes: u64,
    /// Bytes that crossed the network. For writes this includes the
    /// replication pipeline (replication − 1 remote copies, plus the first
    /// copy if the writer is not a datanode-local writer).
    pub remote_bytes: u64,
}

impl IoReceipt {
    /// Component-wise sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: IoReceipt) -> IoReceipt {
        IoReceipt {
            bytes: self.bytes + other.bytes,
            local_bytes: self.local_bytes + other.local_bytes,
            remote_bytes: self.remote_bytes + other.remote_bytes,
        }
    }
}

/// What a whole-file read yields: assembled bytes (byte plane) or the shared
/// tile handle (handle plane — the caller skips decoding entirely).
#[derive(Debug, Clone)]
pub enum FilePayload {
    /// Byte-plane file: the assembled encoded payload.
    Bytes(Bytes),
    /// Handle-plane file: the tile itself, shared, never encoded.
    Tile(Arc<Tile>),
}

struct DfsState {
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    rng: StdRng,
    /// Out-of-core plane, when a memory budget is installed. Lives under
    /// the same lock as the datanodes so residency swaps are atomic with
    /// respect to reads.
    spill: Option<SpillPlane>,
}

/// The simulated distributed file system. Cheap to clone (`Arc` inside);
/// all methods take `&self`.
#[derive(Clone)]
pub struct Dfs {
    state: Arc<Mutex<DfsState>>,
    config: DfsConfig,
}

impl Dfs {
    /// Creates a DFS spanning `nodes` datanodes.
    pub fn new(nodes: u32, config: DfsConfig) -> Self {
        let state = DfsState {
            namenode: NameNode::new(nodes),
            datanodes: (0..nodes).map(|_| DataNode::new()).collect(),
            rng: StdRng::seed_from_u64(config.seed),
            spill: None,
        };
        Dfs {
            state: Arc::new(Mutex::new(state)),
            config,
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// Number of datanodes ever registered (dead ones included).
    pub fn node_count(&self) -> usize {
        self.state.lock().datanodes.len()
    }

    /// True when the datanode is registered and alive. Compute schedulers
    /// share node ids with the DFS, so this doubles as cluster liveness.
    pub fn is_node_live(&self, node: NodeId) -> bool {
        self.state.lock().namenode.is_live(node)
    }

    /// Ids of all live datanodes, sorted.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.state.lock().namenode.live_nodes()
    }

    /// Chooses replica target nodes: writer-local first (if the writer is a
    /// live datanode), the second replica off the first replica's rack when
    /// the topology has racks, then distinct random live nodes — HDFS'
    /// default placement policy.
    fn place_replicas(
        state: &mut DfsState,
        config: &DfsConfig,
        writer: Option<NodeId>,
        want: usize,
    ) -> Result<Vec<NodeId>> {
        let mut live = state.namenode.live_nodes();
        if live.is_empty() {
            return Err(DfsError::InsufficientNodes {
                wanted: want,
                alive: 0,
            });
        }
        let mut chosen: Vec<NodeId> = Vec::with_capacity(want);
        if let Some(w) = writer {
            if state.namenode.is_live(w) {
                chosen.push(w);
                live.retain(|&n| n != w);
            }
        }
        live.shuffle(&mut state.rng);
        while chosen.len() < want && !live.is_empty() {
            let pick = if chosen.len() == 1 && config.racks > 1 {
                // Fault-domain rule: second replica off the first's rack.
                let first_rack = config.rack_of(chosen[0]);
                live.iter()
                    .position(|&n| config.rack_of(n) != first_rack)
                    .unwrap_or(0)
            } else {
                0
            };
            chosen.push(live.remove(pick));
        }
        if chosen.is_empty() {
            return Err(DfsError::InsufficientNodes {
                wanted: want,
                alive: 0,
            });
        }
        // Fewer live nodes than the replication factor degrades gracefully,
        // like HDFS: the block is simply under-replicated.
        Ok(chosen)
    }

    /// Writes a new file with the given payload, splitting into blocks.
    /// `writer` is the node performing the write (None = external client).
    pub fn write_file(&self, path: &str, data: Bytes, writer: Option<NodeId>) -> Result<IoReceipt> {
        self.write_file_with(path, data, writer, self.config.replication)
    }

    /// Like [`Dfs::write_file`] but with an explicit replication factor,
    /// overriding the configured default. Checkpoints use this to persist
    /// iterates more durably than intermediate data.
    pub fn write_file_with(
        &self,
        path: &str,
        data: Bytes,
        writer: Option<NodeId>,
        replication: usize,
    ) -> Result<IoReceipt> {
        let total = data.len() as u64;
        self.write_blocks(path, total, writer, replication, |offset, len| {
            BlockPayload::Bytes(data.slice(offset as usize..(offset + len) as usize))
        })
    }

    /// Writes a tile onto the handle plane: blocks store the shared
    /// `Arc<Tile>` instead of encoded bytes. `wire_len` must be the exact
    /// encoded length (see `cumulon_matrix::serialize::encoded_len`) — the
    /// file splits into blocks of that logical size, so placement, replica
    /// counts, and receipts match a byte-plane write of the encoding
    /// bit-for-bit, without paying for the encoding.
    pub fn write_tile_file(
        &self,
        path: &str,
        tile: Arc<Tile>,
        wire_len: u64,
        writer: Option<NodeId>,
        replication: usize,
    ) -> Result<IoReceipt> {
        let receipt = self.write_blocks(path, wire_len, writer, replication, |_offset, len| {
            BlockPayload::Tile {
                tile: Arc::clone(&tile),
                len,
            }
        })?;
        // Out-of-core plane: the new handle file becomes the hottest
        // resident entry; demote colder files until the budget holds.
        // Phantom tiles pin no data and are never tracked.
        if !tile.is_phantom() {
            let mut st = self.state.lock();
            if st.spill.is_some() {
                drop(tile); // release this fn's pin before enforcement
                if let Some(plane) = st.spill.as_mut() {
                    // An overwrite of a demoted path supersedes the spilled
                    // copy; drop its blob reference so compaction can
                    // reclaim the stale bytes.
                    if let Some(stale) = plane.note_resident(path, wire_len) {
                        plane.blob_mut().release(stale.key)?;
                    }
                }
                Self::enforce_budget(&mut st)?;
            }
        }
        Ok(receipt)
    }

    /// Shared write path: namespace entry, block splitting, placement,
    /// replica stores, receipt accounting. `payload_for(offset, len)`
    /// supplies each block's stored form; both planes use the identical
    /// splitting rule so the placement RNG sees the same draw sequence.
    fn write_blocks(
        &self,
        path: &str,
        total: u64,
        writer: Option<NodeId>,
        replication: usize,
        payload_for: impl Fn(u64, u64) -> BlockPayload,
    ) -> Result<IoReceipt> {
        let mut st = self.state.lock();
        st.namenode.create_file(path)?;
        let mut receipt = IoReceipt::default();
        let mut offset = 0u64;
        loop {
            let len = (total - offset).min(self.config.block_size);
            let payload = payload_for(offset, len);
            let replicas = match Self::place_replicas(&mut st, &self.config, writer, replication) {
                Ok(r) => r,
                Err(e) => {
                    // Roll back the namespace entry so a failed write does
                    // not leave a ghost file behind.
                    let _ = st.namenode.delete_file(path);
                    return Err(e);
                }
            };
            let id = st.namenode.allocate_block();
            for &node in &replicas {
                st.datanodes[node.0 as usize].put(id, payload.clone());
                if writer == Some(node) {
                    receipt.local_bytes += len;
                } else {
                    receipt.remote_bytes += len;
                }
            }
            receipt.bytes += len;
            st.namenode
                .append_block(path, BlockMeta { id, len, replicas })?;
            offset += len;
            if offset >= total {
                break;
            }
        }
        Ok(receipt)
    }

    /// Per-block replica selection shared by [`Dfs::read_file`] and
    /// [`Dfs::read_receipt`]: candidates are tried in locality order
    /// (reader-local, same-rack, then the rest) and the first datanode
    /// actually holding the payload serves. `DataNode::get` is called on the
    /// serving node, so its read counter advances the same way for both
    /// entry points. Returns `None` when no replica can serve.
    fn serve_block(
        st: &mut DfsState,
        config: &DfsConfig,
        reader: Option<NodeId>,
        block: &BlockMeta,
    ) -> Option<(NodeId, BlockPayload)> {
        let mut candidates: Vec<NodeId> = Vec::with_capacity(block.replicas.len());
        if let Some(r) = reader.filter(|r| block.replicas.contains(r)) {
            candidates.push(r);
        }
        if let Some(reader_rack) = reader.map(|r| config.rack_of(r)) {
            candidates.extend(
                block
                    .replicas
                    .iter()
                    .copied()
                    .filter(|&n| Some(n) != reader && config.rack_of(n) == reader_rack),
            );
        }
        let rest: Vec<NodeId> = block
            .replicas
            .iter()
            .copied()
            .filter(|n| !candidates.contains(n))
            .collect();
        candidates.extend(rest);
        for source in candidates {
            if let Some(data) = st.datanodes[source.0 as usize].get(block.id) {
                return Some((source, data));
            }
        }
        None
    }

    /// Reads a whole file. Per block, replicas are tried in locality order —
    /// reader-local first, then same-rack, then the rest — and the read fails
    /// over to the next replica when one does not actually hold the payload.
    /// [`DfsError::BlockLost`] surfaces only when *no* replica can serve the
    /// block. The receipt says how many bytes were local vs remote.
    pub fn read_file(&self, path: &str, reader: Option<NodeId>) -> Result<(Bytes, IoReceipt)> {
        let (payload, receipt) = self.read_payload(path, reader)?;
        let bytes = match payload {
            FilePayload::Bytes(b) => b,
            // Serialization boundary: a handle-plane file read as bytes is
            // encoded here, on demand.
            FilePayload::Tile(tile) => encode_tile(&tile),
        };
        Ok((bytes, receipt))
    }

    /// Reads a whole file in its native plane: byte-plane files yield their
    /// assembled bytes, handle-plane files yield the shared `Arc<Tile>`
    /// without any encoding. Replica selection, failover, datanode read
    /// counters, and the receipt are identical to [`Dfs::read_file`].
    pub fn read_payload(
        &self,
        path: &str,
        reader: Option<NodeId>,
    ) -> Result<(FilePayload, IoReceipt)> {
        let mut st = self.state.lock();
        let blocks = st.namenode.stat(path)?.blocks.clone();
        if let Some(plane) = st.spill.as_mut() {
            plane.touch(path);
        }
        let mut out = bytes::BytesMut::new();
        let mut handle: Option<Arc<Tile>> = None;
        let mut receipt = IoReceipt::default();
        for (idx, block) in blocks.iter().enumerate() {
            let (source, data) = Self::serve_block(&mut st, &self.config, reader, block)
                .ok_or_else(|| DfsError::BlockLost {
                    path: path.to_string(),
                    block: idx,
                })?;
            receipt.bytes += block.len;
            if reader == Some(source) {
                receipt.local_bytes += block.len;
            } else {
                receipt.remote_bytes += block.len;
            }
            match data {
                BlockPayload::Bytes(b) => out.extend_from_slice(&b),
                // A handle file carries one tile; every block shares the
                // same Arc, so the first one is the whole payload.
                BlockPayload::Tile { tile, .. } => handle = Some(tile),
                // Demoted handle file: re-admit it from the blob store.
                // The serving datanode already counted this read at the
                // identical wire length, so receipts and counters cannot
                // tell a disk-resident tile from a RAM-resident one.
                BlockPayload::Spilled { key, .. } => {
                    handle = Some(Self::readmit_path(&mut st, path, key)?);
                }
            }
        }
        // Re-admission may have pushed the plane over budget; demote
        // colder files now (the file just read is the hottest entry).
        Self::enforce_budget(&mut st)?;
        match handle {
            Some(tile) => Ok((FilePayload::Tile(tile), receipt)),
            None => Ok((FilePayload::Bytes(out.freeze()), receipt)),
        }
    }

    /// Replays [`Dfs::read_file`]'s replica selection, failover, datanode
    /// read counters, and receipt accounting without assembling the payload.
    /// The tile cache uses this so a cache hit remains observationally
    /// identical to a real read — including [`DfsError::BlockLost`] when the
    /// underlying replicas have since been destroyed.
    pub fn read_receipt(&self, path: &str, reader: Option<NodeId>) -> Result<IoReceipt> {
        let mut st = self.state.lock();
        let blocks = st.namenode.stat(path)?.blocks.clone();
        // A receipt replay is a cache hit on the decoded tile: the file's
        // data was just accessed, so refresh its LRU recency. A spilled
        // file stays spilled — the cached Arc serves the data, and the
        // datanode counters below advance exactly as a real read would.
        if let Some(plane) = st.spill.as_mut() {
            plane.touch(path);
        }
        let mut receipt = IoReceipt::default();
        for (idx, block) in blocks.iter().enumerate() {
            let (source, _data) = Self::serve_block(&mut st, &self.config, reader, block)
                .ok_or_else(|| DfsError::BlockLost {
                    path: path.to_string(),
                    block: idx,
                })?;
            receipt.bytes += block.len;
            if reader == Some(source) {
                receipt.local_bytes += block.len;
            } else {
                receipt.remote_bytes += block.len;
            }
        }
        Ok(receipt)
    }

    /// True if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.state.lock().namenode.exists(path)
    }

    /// Deletes a file and all replicas. A demoted file also drops its
    /// blob-store reference, so segment compaction can reclaim the bytes.
    pub fn delete_file(&self, path: &str) -> Result<()> {
        let mut st = self.state.lock();
        let blocks = st.namenode.delete_file(path)?;
        for b in blocks {
            for node in b.replicas {
                st.datanodes[node.0 as usize].evict(b.id);
            }
        }
        if let Some(plane) = st.spill.as_mut() {
            if let Some(entry) = plane.forget(path) {
                plane.blob_mut().release(entry.key)?;
            }
        }
        Ok(())
    }

    /// Lists paths under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.state.lock().namenode.list(prefix)
    }

    /// Whether any replica of the first block of `path` lives on `node` —
    /// the locality hint the task scheduler uses.
    pub fn is_local(&self, path: &str, node: NodeId) -> bool {
        let st = self.state.lock();
        match st.namenode.stat(path) {
            Ok(meta) => meta.blocks.iter().all(|b| b.replicas.contains(&node)),
            Err(_) => false,
        }
    }

    /// Kills a datanode. Surviving under-replicated blocks are re-replicated
    /// onto other live nodes; the returned receipt charges that traffic.
    /// Blocks whose only replica was on the dead node are lost (reads will
    /// fail with [`DfsError::BlockLost`]).
    pub fn kill_node(&self, node: NodeId) -> Result<IoReceipt> {
        self.kill_nodes(&[node])
    }

    /// Kills several datanodes **simultaneously** (a correlated failure —
    /// rack power loss, switch failure). Unlike sequential [`Dfs::kill_node`]
    /// calls, no re-replication happens between the individual deaths, so a
    /// block whose every replica sat on the victims is lost even when other
    /// victims would have been valid re-replication sources.
    pub fn kill_nodes(&self, nodes: &[NodeId]) -> Result<IoReceipt> {
        let mut st = self.state.lock();
        let mut under_replicated = Vec::new();
        for &node in nodes {
            // A failure plan may name nodes this DFS never had (e.g. a
            // spot-market model sized for a bigger fleet); skip them
            // instead of indexing out of bounds.
            if (node.0 as usize) >= st.datanodes.len() {
                continue;
            }
            let report = st.namenode.decommission_node(node);
            // The node's disks are gone with it.
            for id in st.datanodes[node.0 as usize].block_ids() {
                st.datanodes[node.0 as usize].evict(id);
            }
            under_replicated.extend(report.under_replicated);
        }
        under_replicated.sort();
        under_replicated.dedup();
        let mut receipt = IoReceipt::default();
        for id in under_replicated {
            // Find a surviving replica and a target that lacks one.
            let holder = st
                .datanodes
                .iter()
                .enumerate()
                .find(|(n, dn)| st.namenode.is_live(NodeId(*n as u32)) && dn.contains(id))
                .map(|(n, _)| NodeId(n as u32));
            let Some(holder) = holder else { continue };
            let live = st.namenode.live_nodes();
            let target = live
                .iter()
                .copied()
                .find(|&n| n != holder && !st.datanodes[n.0 as usize].contains(id));
            let Some(target) = target else { continue };
            // Re-replication clones the payload — for handle-plane blocks
            // that is an Arc clone, still charged at wire length.
            let data = st.datanodes[holder.0 as usize]
                .get(id)
                .expect("holder was just checked to contain the block");
            let len = data.len();
            st.datanodes[target.0 as usize].put(id, data);
            st.namenode.add_replica(id, target)?;
            receipt.bytes += len;
            receipt.remote_bytes += len;
        }
        Ok(receipt)
    }

    /// Gracefully drains doomed nodes ahead of a revocation: every block
    /// whose *entire* replica set sits on `victims` is copied to one live
    /// non-victim node, spending at most `byte_budget` bytes of traffic
    /// (what the warning lead window's bandwidth allows). Blocks are
    /// visited in namespace order (deterministic); blocks that don't fit
    /// the remaining budget are skipped and stay at risk — if the victims
    /// then die, those blocks are lost and lineage recovery takes over.
    /// The victims themselves stay live: in-flight work drains separately.
    pub fn drain_nodes(&self, victims: &[NodeId], byte_budget: u64) -> Result<IoReceipt> {
        let mut st = self.state.lock();
        let is_victim = |n: NodeId| victims.contains(&n);
        // Plan first (immutable scan of the namespace), then move payloads.
        let mut moves: Vec<(BlockId, u64)> = Vec::new();
        let mut spent = 0u64;
        for path in st.namenode.list("") {
            let meta = st.namenode.stat(&path)?;
            for block in &meta.blocks {
                if block.replicas.is_empty() || !block.replicas.iter().all(|&r| is_victim(r)) {
                    continue;
                }
                if spent.saturating_add(block.len) > byte_budget {
                    continue; // doesn't fit; later smaller blocks still may
                }
                spent += block.len;
                moves.push((block.id, block.len));
            }
        }
        let mut receipt = IoReceipt::default();
        for (id, len) in moves {
            let holder = st
                .datanodes
                .iter()
                .enumerate()
                .find(|(n, dn)| is_victim(NodeId(*n as u32)) && dn.contains(id))
                .map(|(n, _)| NodeId(n as u32));
            let Some(holder) = holder else { continue };
            let target = st
                .namenode
                .live_nodes()
                .into_iter()
                .find(|&n| !is_victim(n) && !st.datanodes[n.0 as usize].contains(id));
            let Some(target) = target else { continue };
            let data = st.datanodes[holder.0 as usize]
                .get(id)
                .expect("holder was just checked to contain the block");
            st.datanodes[target.0 as usize].put(id, data);
            st.namenode.add_replica(id, target)?;
            receipt.bytes += len;
            receipt.remote_bytes += len;
        }
        Ok(receipt)
    }

    /// Kills every live node in a rack simultaneously (datacenter
    /// fault-domain failure). Returns the re-replication traffic.
    pub fn kill_rack(&self, rack: u32) -> Result<IoReceipt> {
        let victims: Vec<NodeId> = {
            let st = self.state.lock();
            st.namenode
                .live_nodes()
                .into_iter()
                .filter(|&n| self.config.rack_of(n) == rack)
                .collect()
        };
        self.kill_nodes(&victims)
    }

    /// Registers a fresh datanode (cluster grow).
    pub fn add_node(&self) -> NodeId {
        let mut st = self.state.lock();
        let id = NodeId(st.datanodes.len() as u32);
        st.datanodes.push(DataNode::new());
        st.namenode.register_node(id);
        id
    }

    /// Aggregate storage statistics `(logical bytes, physical bytes)`.
    pub fn storage_stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        let logical = st.namenode.total_bytes();
        let physical = st.datanodes.iter().map(DataNode::bytes_stored).sum();
        (logical, physical)
    }

    /// Per-node stored bytes, for balance inspection.
    pub fn per_node_bytes(&self) -> Vec<u64> {
        self.state
            .lock()
            .datanodes
            .iter()
            .map(DataNode::bytes_stored)
            .collect()
    }

    /// Snapshot of both sides of the byte-conservation ledger: the
    /// namenode's metadata view next to the datanodes' actual contents.
    /// Taken under one lock, so the two sides are mutually consistent.
    pub fn storage_accounting(&self) -> StorageAccounting {
        let st = self.state.lock();
        let per_node_expected = st.namenode.per_node_replica_bytes();
        let per_node = st
            .datanodes
            .iter()
            .enumerate()
            .map(|(i, dn)| {
                let expected = per_node_expected
                    .get(&NodeId(i as u32))
                    .copied()
                    .unwrap_or(0);
                (expected, dn.bytes_stored())
            })
            .collect();
        StorageAccounting {
            logical_bytes: st.namenode.total_bytes(),
            namenode_replica_bytes: st.namenode.replicated_bytes(),
            datanode_bytes: st.datanodes.iter().map(DataNode::bytes_stored).sum(),
            namenode_replica_count: st.namenode.replica_count(),
            datanode_block_count: st.datanodes.iter().map(DataNode::block_count).sum(),
            per_node,
        }
    }

    // ------------------------------------------------------------------
    // Out-of-core spill plane (see crate::spill).
    // ------------------------------------------------------------------

    /// Installs (or removes) the memory-budgeted spill plane. A budget of
    /// zero removes the plane — after re-admitting every demoted file, so
    /// no data is stranded in the segment files the plane deletes on drop.
    /// Installing with a nonzero budget adopts files already resident on
    /// the handle plane (namespace order) and enforces the budget
    /// immediately. Replacing an existing plane first re-admits through
    /// the old one for the same reason.
    pub fn set_spill_config(&self, config: &SpillConfig) -> Result<()> {
        let mut st = self.state.lock();
        if st.spill.is_some() {
            let paths = st.spill.as_ref().expect("just checked").spilled_paths();
            for path in paths {
                let entry = st
                    .spill
                    .as_ref()
                    .expect("plane present")
                    .spilled(&path)
                    .expect("listed => spilled");
                Self::readmit_path(&mut st, &path, entry.key)?;
            }
            st.spill = None;
        }
        if config.budget_bytes == 0 {
            return Ok(());
        }
        let mut plane = SpillPlane::new(config)?;
        for path in st.namenode.list("") {
            let meta = st.namenode.stat(&path)?;
            let wire_len: u64 = meta.blocks.iter().map(|b| b.len).sum();
            let first = meta.blocks.first();
            let is_handle = first.is_some_and(|b| {
                b.replicas.iter().any(|&n| {
                    matches!(
                        st.datanodes[n.0 as usize].peek(b.id),
                        Some(BlockPayload::Tile { tile, .. }) if !tile.is_phantom()
                    )
                })
            });
            if is_handle {
                // The plane is freshly built: nothing is spilled yet, so
                // adoption cannot displace a demoted entry.
                let displaced = plane.note_resident(&path, wire_len);
                debug_assert!(displaced.is_none(), "fresh plane has no spills");
            }
        }
        st.spill = Some(plane);
        Self::enforce_budget(&mut st)
    }

    /// Spill-plane counters, when a plane is installed.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.state.lock().spill.as_ref().map(SpillPlane::stats)
    }

    /// The installed spill plane's resident-byte budget, if any.
    pub fn memory_budget(&self) -> Option<u64> {
        self.state
            .lock()
            .spill
            .as_ref()
            .map(SpillPlane::budget_bytes)
    }

    /// True when `path` is currently demoted to the spill plane's blob
    /// store — reading it now would pay a synchronous decode-and-readback.
    /// Always `false` without a plane (everything is RAM-resident). The
    /// scheduler's residency oracle.
    pub fn is_spilled(&self, path: &str) -> bool {
        self.state
            .lock()
            .spill
            .as_ref()
            .is_some_and(|p| p.is_spilled(path))
    }

    /// Re-admits `path` ahead of demand if it is currently demoted,
    /// marking it prefetched so the next canonical read credits
    /// `readback_bytes_avoided`. Returns the wire bytes readmitted (`0`
    /// when the path is not spilled — including when no plane is
    /// installed). Transparent by construction: re-admission produces no
    /// receipt, draws no placement RNG, and advances no simulated time —
    /// only where the payload physically lives changes.
    pub fn prefetch_path(&self, path: &str) -> Result<u64> {
        let mut st = self.state.lock();
        let Some(entry) = st.spill.as_ref().and_then(|p| p.spilled(path)) else {
            return Ok(0);
        };
        Self::readmit_path(&mut st, path, entry.key)?;
        if let Some(plane) = st.spill.as_mut() {
            plane.record_prefetched(path, entry.wire_len);
        }
        // Early admission must not breach the budget: demote colder files
        // now (the prefetched file is the hottest entry, so it survives).
        Self::enforce_budget(&mut st)?;
        Ok(entry.wire_len)
    }

    /// Compacts the blob store's sealed segments, returning the number of
    /// compactions performed (0 without a plane). Checkpoint truncation
    /// and `drop_matrix` release blob references via [`Dfs::delete_file`];
    /// this reclaims the dead segment bytes they leave behind.
    pub fn compact_spill(&self) -> Result<u64> {
        match self.state.lock().spill.as_mut() {
            Some(plane) => plane.blob_mut().compact(),
            None => Ok(0),
        }
    }

    /// Conservation check for the spill plane (`true` without one): every
    /// demoted file's recorded wire length must equal the sum of its block
    /// lengths in the namenode, and every replica of every one of its
    /// blocks must hold a [`BlockPayload::Spilled`] reference with the
    /// file's blob key and the block's exact length. Together with
    /// [`Dfs::storage_accounting`] this pins that demotion never creates
    /// or destroys accounted bytes.
    pub fn spill_conserved(&self) -> bool {
        let st = self.state.lock();
        let Some(plane) = st.spill.as_ref() else {
            return true;
        };
        for path in plane.spilled_paths() {
            let Some(entry) = plane.spilled(&path) else {
                return false;
            };
            let Ok(meta) = st.namenode.stat(&path) else {
                return false;
            };
            let wire_len: u64 = meta.blocks.iter().map(|b| b.len).sum();
            if wire_len != entry.wire_len {
                return false;
            }
            for b in &meta.blocks {
                for &n in &b.replicas {
                    match st.datanodes[n.0 as usize].peek(b.id) {
                        Some(BlockPayload::Spilled { key, len })
                            if *key == entry.key && *len == b.len => {}
                        _ => return false,
                    }
                }
            }
        }
        true
    }

    /// Demotes LRU-cold resident files until the plane is under budget.
    /// No-op without a plane or under budget.
    fn enforce_budget(st: &mut DfsState) -> Result<()> {
        loop {
            let Some(path) = st.spill.as_mut().and_then(SpillPlane::next_eviction) else {
                return Ok(());
            };
            Self::demote_path(st, &path)?;
        }
    }

    /// Demotes one handle file: encodes its tile through the ordinary wire
    /// codec, optionally compresses, appends to the blob store (keyed by a
    /// digest of the *encoded* tile, so identical content dedupes), and
    /// swaps every replica of every block to a [`BlockPayload::Spilled`]
    /// reference of identical wire length. Counter-neutral by
    /// construction. Files that are no longer on the handle plane (e.g.
    /// checkpoint-truncated to the byte plane) are skipped.
    fn demote_path(st: &mut DfsState, path: &str) -> Result<()> {
        let blocks = match st.namenode.stat(path) {
            Ok(meta) => meta.blocks.clone(),
            Err(_) => return Ok(()), // deleted since it went cold
        };
        let mut tile: Option<Arc<Tile>> = None;
        'find: for b in &blocks {
            for &n in &b.replicas {
                if let Some(BlockPayload::Tile { tile: t, .. }) =
                    st.datanodes[n.0 as usize].peek(b.id)
                {
                    tile = Some(Arc::clone(t));
                    break 'find;
                }
            }
        }
        let Some(tile) = tile else {
            return Ok(()); // not a handle file (anymore): nothing to demote
        };
        let wire = encode_tile(&tile);
        let wire_len: u64 = blocks.iter().map(|b| b.len).sum();
        debug_assert_eq!(wire.len() as u64, wire_len, "handle len is the encoding");
        let plane = st.spill.as_mut().expect("demotion implies a plane");
        let (codec, payload) = if plane.compress() {
            maybe_compress(&wire)
        } else {
            (Codec::Raw, wire.to_vec())
        };
        let key = BlobKey::digest(&wire);
        plane
            .blob_mut()
            .put(key, codec, &payload, wire.len() as u32)?;
        if let Some(stale) = plane.record_spilled(path, key, wire_len) {
            // A superseded earlier spill of the same path (should not
            // happen through next_eviction, but churn-safe): release its
            // blob reference rather than leak it.
            plane.blob_mut().release(stale.key)?;
        }
        for b in &blocks {
            for &n in &b.replicas {
                st.datanodes[n.0 as usize]
                    .swap_payload(b.id, BlockPayload::Spilled { key, len: b.len });
            }
        }
        Ok(())
    }

    /// Re-admits one demoted file: reads the blob entry back, decompresses
    /// and decodes it into a fresh `Arc<Tile>`, swaps every replica back
    /// onto the handle plane, and releases the blob reference. The
    /// returned Arc is *new* — bitwise-equal to the one that was demoted,
    /// but not pointer-identical (the documented residency exception).
    fn readmit_path(st: &mut DfsState, path: &str, key: BlobKey) -> Result<Arc<Tile>> {
        let plane = st.spill.as_mut().expect("spilled payload implies a plane");
        let (codec, payload, raw_len) = plane.blob_mut().get(key)?;
        let wire = decompress(codec, &payload)?;
        if wire.len() as u32 != raw_len {
            return Err(DfsError::Spill(format!(
                "blob {key:?} decompressed to {} bytes, recorded {raw_len}",
                wire.len()
            )));
        }
        let tile = Arc::new(decode_tile(Bytes::from(wire))?);
        let blocks = st.namenode.stat(path)?.blocks.clone();
        let wire_len: u64 = blocks.iter().map(|b| b.len).sum();
        for b in &blocks {
            for &n in &b.replicas {
                st.datanodes[n.0 as usize].swap_payload(
                    b.id,
                    BlockPayload::Tile {
                        tile: Arc::clone(&tile),
                        len: b.len,
                    },
                );
            }
        }
        let plane = st.spill.as_mut().expect("plane still present");
        let entry = plane
            .record_readmitted(path, wire_len)
            .expect("readmit of a recorded spill");
        plane.blob_mut().release(entry.key)?;
        Ok(tile)
    }
}

/// Both sides of the byte-conservation ledger, from one consistent
/// snapshot: what the namenode's block metadata says the datanodes hold,
/// and what their own counters report. [`StorageAccounting::is_conserved`]
/// is the invariant `cumulon check` enforces on both payload planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageAccounting {
    /// Σ file lengths (logical, not × replication).
    pub logical_bytes: u64,
    /// Namenode expectation: Σ block `len × replica count`.
    pub namenode_replica_bytes: u64,
    /// Datanode reality: Σ `bytes_stored` over all datanodes.
    pub datanode_bytes: u64,
    /// Namenode expectation: total block replicas across all files.
    pub namenode_replica_count: usize,
    /// Datanode reality: total block replicas actually held.
    pub datanode_block_count: usize,
    /// Per node (indexed by node id): `(namenode expectation, stored)`.
    pub per_node: Vec<(u64, u64)>,
}

impl StorageAccounting {
    /// True when metadata and storage agree exactly — in aggregate, in
    /// replica counts, and node by node.
    pub fn is_conserved(&self) -> bool {
        self.namenode_replica_bytes == self.datanode_bytes
            && self.namenode_replica_count == self.datanode_block_count
            && self.per_node.iter().all(|&(want, got)| want == got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs(nodes: u32, replication: usize) -> Dfs {
        Dfs::new(
            nodes,
            DfsConfig {
                replication,
                block_size: 64,
                seed: 7,
                racks: 1,
            },
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let d = dfs(4, 3);
        let payload = Bytes::from(vec![7u8; 100]);
        let w = d
            .write_file("/f", payload.clone(), Some(NodeId(1)))
            .unwrap();
        assert_eq!(w.bytes, 100);
        // Writer-local replica + 2 remote replicas per block.
        assert_eq!(w.local_bytes, 100);
        assert_eq!(w.remote_bytes, 200);
        let (data, r) = d.read_file("/f", Some(NodeId(1))).unwrap();
        assert_eq!(data, payload);
        assert_eq!(r.local_bytes, 100);
        assert_eq!(r.remote_bytes, 0);
    }

    #[test]
    fn remote_read_counts_remote() {
        let d = dfs(5, 1);
        d.write_file("/f", Bytes::from(vec![1u8; 10]), Some(NodeId(0)))
            .unwrap();
        let (_, r) = d.read_file("/f", Some(NodeId(4))).unwrap();
        assert_eq!(r.remote_bytes, 10);
        assert_eq!(r.local_bytes, 0);
    }

    #[test]
    fn blocks_split_at_block_size() {
        let d = dfs(3, 2);
        d.write_file("/big", Bytes::from(vec![0u8; 200]), None)
            .unwrap();
        let st = d.state.lock();
        let meta = st.namenode.stat("/big").unwrap();
        assert_eq!(meta.blocks.len(), 4); // 200 bytes / 64-byte blocks
        assert_eq!(meta.len(), 200);
    }

    #[test]
    fn replication_physical_bytes() {
        let d = dfs(4, 3);
        d.write_file("/f", Bytes::from(vec![2u8; 50]), None)
            .unwrap();
        let (logical, physical) = d.storage_stats();
        assert_eq!(logical, 50);
        assert_eq!(physical, 150);
    }

    #[test]
    fn drain_moves_sole_replica_blocks_to_survivors() {
        let d = dfs(4, 1);
        d.write_file("/a", Bytes::from(vec![1u8; 64]), Some(NodeId(0)))
            .unwrap();
        d.write_file("/b", Bytes::from(vec![2u8; 64]), Some(NodeId(0)))
            .unwrap();
        let receipt = d.drain_nodes(&[NodeId(0)], u64::MAX).unwrap();
        assert_eq!(receipt.bytes, 128);
        assert!(d.storage_accounting().is_conserved());
        // The victim is still live after draining; the kill then loses
        // nothing because every block now has a survivor replica.
        d.kill_nodes(&[NodeId(0)]).unwrap();
        let (data, _) = d.read_file("/a", None).unwrap();
        assert_eq!(data, Bytes::from(vec![1u8; 64]));
        let (data, _) = d.read_file("/b", None).unwrap();
        assert_eq!(data, Bytes::from(vec![2u8; 64]));
    }

    #[test]
    fn drain_respects_byte_budget_in_namespace_order() {
        let d = dfs(4, 1);
        for (path, fill) in [("/a", 1u8), ("/b", 2), ("/c", 3)] {
            d.write_file(path, Bytes::from(vec![fill; 64]), Some(NodeId(0)))
                .unwrap();
        }
        // Budget covers exactly two blocks; namespace order says /a and /b
        // are saved, /c stays at risk.
        let receipt = d.drain_nodes(&[NodeId(0)], 128).unwrap();
        assert_eq!(receipt.bytes, 128);
        d.kill_nodes(&[NodeId(0)]).unwrap();
        assert!(d.read_file("/a", None).is_ok());
        assert!(d.read_file("/b", None).is_ok());
        assert!(matches!(
            d.read_file("/c", None),
            Err(DfsError::BlockLost { .. })
        ));
    }

    #[test]
    fn drain_skips_blocks_with_surviving_replicas() {
        let d = dfs(4, 2);
        d.write_file("/f", Bytes::from(vec![1u8; 64]), Some(NodeId(0)))
            .unwrap();
        // Replication 2: the second replica lives off-victim already, so
        // there is nothing to drain.
        let receipt = d.drain_nodes(&[NodeId(0)], u64::MAX).unwrap();
        assert_eq!(receipt.bytes, 0);
    }

    #[test]
    fn bulk_kill_of_every_replica_surfaces_block_lost() {
        let d = dfs(4, 2);
        d.write_file("/f", Bytes::from(vec![1u8; 64]), None)
            .unwrap();
        let victims: Vec<NodeId> = {
            let st = d.state.lock();
            st.namenode.stat("/f").unwrap().blocks[0].replicas.clone()
        };
        assert_eq!(victims.len(), 2);
        // Correlated kill: both replicas go at once, so re-replication has
        // no source. The read must fail structurally, not panic.
        d.kill_nodes(&victims).unwrap();
        assert!(matches!(
            d.read_file("/f", None),
            Err(DfsError::BlockLost { .. })
        ));
        assert!(d.storage_accounting().is_conserved());
    }

    #[test]
    fn kill_and_drain_ignore_out_of_range_nodes() {
        let d = dfs(2, 1);
        d.write_file("/f", Bytes::from(vec![1u8; 8]), Some(NodeId(0)))
            .unwrap();
        // Node 99 does not exist; neither call may panic.
        d.kill_nodes(&[NodeId(99)]).unwrap();
        let receipt = d.drain_nodes(&[NodeId(99)], u64::MAX).unwrap();
        assert_eq!(receipt.bytes, 0);
        assert!(d.read_file("/f", None).is_ok());
    }

    #[test]
    fn graceful_under_replication() {
        let d = dfs(2, 3); // want 3 replicas, only 2 nodes
        d.write_file("/f", Bytes::from(vec![1u8; 10]), None)
            .unwrap();
        let (_, physical) = d.storage_stats();
        assert_eq!(physical, 20);
    }

    #[test]
    fn duplicate_write_rejected() {
        let d = dfs(2, 1);
        d.write_file("/f", Bytes::from(vec![1u8; 4]), None).unwrap();
        assert!(matches!(
            d.write_file("/f", Bytes::from(vec![1u8; 4]), None),
            Err(DfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn delete_frees_replicas() {
        let d = dfs(3, 3);
        d.write_file("/f", Bytes::from(vec![1u8; 30]), None)
            .unwrap();
        d.delete_file("/f").unwrap();
        let (logical, physical) = d.storage_stats();
        assert_eq!((logical, physical), (0, 0));
        assert!(!d.exists("/f"));
        assert!(d.read_file("/f", None).is_err());
    }

    #[test]
    fn kill_node_rereplicates() {
        let d = dfs(4, 2);
        d.write_file("/f", Bytes::from(vec![3u8; 40]), Some(NodeId(0)))
            .unwrap();
        let receipt = d.kill_node(NodeId(0)).unwrap();
        assert!(
            receipt.bytes > 0,
            "under-replicated blocks should be copied"
        );
        // Data still fully readable.
        let (data, _) = d.read_file("/f", None).unwrap();
        assert_eq!(data.len(), 40);
        // Replication restored to 2 live replicas per block.
        let (logical, physical) = d.storage_stats();
        assert_eq!(logical, 40);
        assert_eq!(physical, 80);
    }

    #[test]
    fn storage_accounting_is_conserved_through_lifecycle() {
        let d = dfs(4, 3);
        let acc = d.storage_accounting();
        assert!(acc.is_conserved());
        assert_eq!(acc.datanode_bytes, 0);

        d.write_file("/f", Bytes::from(vec![2u8; 150]), Some(NodeId(1)))
            .unwrap();
        d.write_file("/g", Bytes::from(vec![5u8; 30]), None)
            .unwrap();
        let acc = d.storage_accounting();
        assert!(acc.is_conserved(), "after writes: {acc:?}");
        assert_eq!(acc.logical_bytes, 180);
        assert_eq!(acc.namenode_replica_bytes, 540);
        assert_eq!(acc.per_node.len(), 4);

        // A failure plus re-replication must keep both sides in step.
        d.kill_node(NodeId(1)).unwrap();
        let acc = d.storage_accounting();
        assert!(acc.is_conserved(), "after kill: {acc:?}");
        assert_eq!(acc.per_node[1], (0, 0), "dead node holds nothing");

        d.delete_file("/f").unwrap();
        let acc = d.storage_accounting();
        assert!(acc.is_conserved(), "after delete: {acc:?}");
        assert_eq!(acc.logical_bytes, 30);
    }

    #[test]
    fn kill_sole_replica_loses_block() {
        let d = dfs(2, 1);
        // Force placement on node 0 by writing from node 0 with replication 1.
        d.write_file("/f", Bytes::from(vec![1u8; 8]), Some(NodeId(0)))
            .unwrap();
        d.kill_node(NodeId(0)).unwrap();
        assert!(matches!(
            d.read_file("/f", None),
            Err(DfsError::BlockLost { .. })
        ));
    }

    #[test]
    fn failed_write_rolls_back_namespace() {
        let d = dfs(1, 1);
        d.kill_node(NodeId(0)).unwrap();
        assert!(d.write_file("/f", Bytes::from(vec![1u8; 8]), None).is_err());
        assert!(!d.exists("/f"), "ghost file left after failed write");
    }

    #[test]
    fn add_node_and_place_there() {
        let d = dfs(1, 2);
        let n = d.add_node();
        assert_eq!(n, NodeId(1));
        d.write_file("/f", Bytes::from(vec![1u8; 8]), None).unwrap();
        let per_node = d.per_node_bytes();
        assert_eq!(per_node, vec![8, 8]);
    }

    #[test]
    fn is_local_hint() {
        let d = dfs(3, 1);
        d.write_file("/f", Bytes::from(vec![1u8; 8]), Some(NodeId(2)))
            .unwrap();
        assert!(d.is_local("/f", NodeId(2)));
        assert!(!d.is_local("/f", NodeId(0)));
        assert!(!d.is_local("/missing", NodeId(0)));
    }

    #[test]
    fn list_files() {
        let d = dfs(2, 1);
        d.write_file("/m/a", Bytes::from(vec![1u8]), None).unwrap();
        d.write_file("/m/b", Bytes::from(vec![1u8]), None).unwrap();
        assert_eq!(d.list("/m/"), vec!["/m/a", "/m/b"]);
    }

    #[test]
    fn empty_file() {
        let d = dfs(2, 2);
        let w = d.write_file("/e", Bytes::new(), None).unwrap();
        assert_eq!(w.bytes, 0);
        let (data, r) = d.read_file("/e", None).unwrap();
        assert!(data.is_empty());
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn read_fails_over_to_surviving_replica() {
        // With replication 2 the first replica in the list may sit on a dead
        // node whose metadata was never decommissioned (e.g. a transiently
        // unreachable datanode). Simulate the "replica list stale" case by
        // evicting the payload from the first replica without touching the
        // namenode, and check the read fails over instead of surfacing loss.
        let d = dfs(4, 2);
        d.write_file("/f", Bytes::from(vec![5u8; 40]), Some(NodeId(1)))
            .unwrap();
        {
            let mut st = d.state.lock();
            let blocks = st.namenode.stat("/f").unwrap().blocks.clone();
            for b in &blocks {
                let first = b.replicas[0];
                st.datanodes[first.0 as usize].evict(b.id);
            }
        }
        let (data, r) = d.read_file("/f", None).unwrap();
        assert_eq!(data.len(), 40);
        assert_eq!(r.bytes, 40);
    }

    #[test]
    fn block_lost_only_when_no_replica_serves() {
        let d = dfs(3, 2);
        d.write_file("/f", Bytes::from(vec![5u8; 16]), Some(NodeId(0)))
            .unwrap();
        {
            let mut st = d.state.lock();
            let blocks = st.namenode.stat("/f").unwrap().blocks.clone();
            for b in &blocks {
                for &rep in &b.replicas {
                    st.datanodes[rep.0 as usize].evict(b.id);
                }
            }
        }
        assert!(matches!(
            d.read_file("/f", None),
            Err(DfsError::BlockLost { .. })
        ));
    }

    #[test]
    fn liveness_accessors() {
        let d = dfs(3, 1);
        assert!(d.is_node_live(NodeId(2)));
        assert_eq!(d.live_nodes().len(), 3);
        d.kill_node(NodeId(1)).unwrap();
        assert!(!d.is_node_live(NodeId(1)));
        assert_eq!(d.live_nodes(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn write_file_with_overrides_replication() {
        let d = dfs(4, 1);
        d.write_file_with("/ckpt", Bytes::from(vec![1u8; 30]), None, 3)
            .unwrap();
        let (logical, physical) = d.storage_stats();
        assert_eq!(logical, 30);
        assert_eq!(physical, 90);
    }
}

#[cfg(test)]
mod handle_plane_tests {
    use super::*;
    use cumulon_matrix::serialize::{decode_tile, encoded_len};

    fn dfs(nodes: u32, replication: usize, seed: u64) -> Dfs {
        Dfs::new(
            nodes,
            DfsConfig {
                replication,
                block_size: 64,
                seed,
                racks: 1,
            },
        )
    }

    fn tile() -> Arc<Tile> {
        Arc::new(Tile::dense(cumulon_matrix::gen::dense_uniform_tile(
            3, 0, 0, 5, 4, -1.0, 1.0,
        )))
    }

    #[test]
    fn handle_write_matches_byte_write_receipts_and_placement() {
        // Two DFS instances with the same seed: one takes the encoding, one
        // takes the handle. Receipts, block layout, and storage stats must
        // be identical.
        let t = tile();
        let enc = encode_tile(&t);
        let a = dfs(4, 2, 99);
        let b = dfs(4, 2, 99);
        let ra = a.write_file("/t", enc.clone(), Some(NodeId(1))).unwrap();
        let rb = b
            .write_tile_file("/t", Arc::clone(&t), encoded_len(&t), Some(NodeId(1)), 2)
            .unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.storage_stats(), b.storage_stats());
        let (ba, meta_a) = {
            let st = a.state.lock();
            let m = st.namenode.stat("/t").unwrap();
            (
                m.len(),
                m.blocks
                    .iter()
                    .map(|x| x.replicas.clone())
                    .collect::<Vec<_>>(),
            )
        };
        let (bb, meta_b) = {
            let st = b.state.lock();
            let m = st.namenode.stat("/t").unwrap();
            (
                m.len(),
                m.blocks
                    .iter()
                    .map(|x| x.replicas.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(ba, bb);
        assert_eq!(meta_a, meta_b);
        // Read receipts also agree, and the byte read of the handle file
        // reproduces the encoding exactly.
        let (bytes_a, rr_a) = a.read_file("/t", Some(NodeId(0))).unwrap();
        let (bytes_b, rr_b) = b.read_file("/t", Some(NodeId(0))).unwrap();
        assert_eq!(rr_a, rr_b);
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(bytes_b, enc);
    }

    #[test]
    fn read_payload_returns_shared_handle() {
        let d = dfs(3, 2, 5);
        let t = tile();
        d.write_tile_file("/t", Arc::clone(&t), encoded_len(&t), Some(NodeId(0)), 2)
            .unwrap();
        let (payload, _) = d.read_payload("/t", Some(NodeId(0))).unwrap();
        match payload {
            FilePayload::Tile(got) => assert!(Arc::ptr_eq(&got, &t), "no copy on read"),
            FilePayload::Bytes(_) => panic!("handle file came back as bytes"),
        }
        // Byte-plane files still come back as bytes.
        d.write_file("/b", Bytes::from(vec![1u8; 10]), None)
            .unwrap();
        let (payload, _) = d.read_payload("/b", None).unwrap();
        assert!(matches!(payload, FilePayload::Bytes(_)));
    }

    #[test]
    fn handle_survives_node_kill_via_rereplication() {
        let d = dfs(4, 2, 3);
        let t = tile();
        d.write_tile_file("/t", Arc::clone(&t), encoded_len(&t), Some(NodeId(0)), 2)
            .unwrap();
        d.kill_node(NodeId(0)).unwrap();
        let (payload, _) = d.read_payload("/t", None).unwrap();
        match payload {
            FilePayload::Tile(got) => assert!(Arc::ptr_eq(&got, &t)),
            FilePayload::Bytes(_) => panic!("handle file came back as bytes"),
        }
    }

    #[test]
    fn multi_block_handle_file_roundtrips() {
        // block_size 64 forces the ~180-byte encoding into multiple handle
        // blocks; the byte read must still reassemble the exact encoding.
        let d = dfs(4, 2, 3);
        let t = tile();
        let wire = encoded_len(&t);
        assert!(wire > 64, "test needs a multi-block file");
        d.write_tile_file("/t", Arc::clone(&t), wire, None, 2)
            .unwrap();
        {
            let st = d.state.lock();
            assert!(st.namenode.stat("/t").unwrap().blocks.len() > 1);
        }
        let (bytes, r) = d.read_file("/t", None).unwrap();
        assert_eq!(r.bytes, wire);
        assert_eq!(decode_tile(bytes).unwrap(), *t);
    }
}

#[cfg(test)]
mod rack_tests {
    use super::*;

    fn rack_dfs(nodes: u32, racks: u32, replication: usize, seed: u64) -> Dfs {
        Dfs::new(
            nodes,
            DfsConfig {
                replication,
                block_size: 1 << 20,
                seed,
                racks,
            },
        )
    }

    #[test]
    fn second_replica_always_off_rack() {
        // 6 nodes, 2 racks (even/odd), replication 2: every block must span
        // both racks.
        let d = rack_dfs(6, 2, 2, 11);
        for i in 0..20 {
            let path = format!("/f{i}");
            d.write_file(&path, Bytes::from(vec![1u8; 64]), Some(NodeId(i % 6)))
                .unwrap();
            let st = d.state.lock();
            let meta = st.namenode.stat(&path).unwrap();
            for block in &meta.blocks {
                let racks: std::collections::BTreeSet<u32> = block
                    .replicas
                    .iter()
                    .map(|&n| d.config.rack_of(n))
                    .collect();
                assert_eq!(
                    racks.len(),
                    2,
                    "block replicas {:?} in one rack",
                    block.replicas
                );
            }
        }
    }

    #[test]
    fn rack_failure_loses_nothing_with_rack_aware_placement() {
        let d = rack_dfs(8, 2, 2, 5);
        for i in 0..10 {
            d.write_file(
                &format!("/f{i}"),
                Bytes::from(vec![i as u8; 200]),
                Some(NodeId(i % 8)),
            )
            .unwrap();
        }
        let receipt = d.kill_rack(0).unwrap();
        assert!(receipt.bytes > 0, "survivors must re-replicate");
        for i in 0..10u8 {
            let (data, _) = d.read_file(&format!("/f{i}"), None).unwrap();
            assert_eq!(data.as_ref(), vec![i; 200].as_slice());
        }
    }

    #[test]
    fn flat_topology_can_lose_data_on_correlated_failure() {
        // racks = 1 (no fault domains): a simultaneous failure of the
        // "even" half can destroy blocks whose two replicas happened to be
        // colocated there. With a seed search we assert the *possibility*
        // by finding one configuration where it happens.
        let mut lost_somewhere = false;
        for seed in 0..20 {
            let d = rack_dfs(8, 1, 2, seed);
            for i in 0..10 {
                d.write_file(
                    &format!("/f{i}"),
                    Bytes::from(vec![i as u8; 200]),
                    Some(NodeId(i % 8)),
                )
                .unwrap();
            }
            // Simultaneous correlated failure of the even half.
            d.kill_nodes(&[NodeId(0), NodeId(2), NodeId(4), NodeId(6)])
                .unwrap();
            let any_lost = (0..10).any(|i| d.read_file(&format!("/f{i}"), None).is_err());
            if any_lost {
                lost_somewhere = true;
                break;
            }
        }
        assert!(
            lost_somewhere,
            "without fault domains, some placement should colocate both replicas"
        );
    }

    #[test]
    fn rack_failure_with_rack_placement_vs_flat_placement() {
        // The same correlated failure (all of rack 0 at once) that the
        // rack-aware layout survives can destroy data under flat layout.
        let aware = rack_dfs(8, 2, 2, 13);
        for i in 0..16 {
            aware
                .write_file(
                    &format!("/f{i}"),
                    Bytes::from(vec![7u8; 100]),
                    Some(NodeId(i % 8)),
                )
                .unwrap();
        }
        aware.kill_rack(0).unwrap();
        for i in 0..16 {
            assert!(
                aware.read_file(&format!("/f{i}"), None).is_ok(),
                "rack-aware lost /f{i}"
            );
        }
    }

    #[test]
    fn rack_of_mapping() {
        let c = DfsConfig {
            racks: 3,
            ..Default::default()
        };
        assert_eq!(c.rack_of(NodeId(0)), 0);
        assert_eq!(c.rack_of(NodeId(4)), 1);
        assert_eq!(c.rack_of(NodeId(5)), 2);
        let flat = DfsConfig::default();
        assert_eq!(flat.rack_of(NodeId(7)), 0);
    }

    #[test]
    fn remote_read_prefers_same_rack_replica() {
        // Replication 2 across 2 racks guarantees one replica per rack.
        // A reader that holds no replica must be served by the replica in
        // its own rack, not blindly by the first replica in the list.
        let d = rack_dfs(6, 2, 2, 17);
        for i in 0..10 {
            let path = format!("/f{i}");
            d.write_file(&path, Bytes::from(vec![1u8; 64]), Some(NodeId(i % 6)))
                .unwrap();
            let (replicas, before): (Vec<NodeId>, Vec<u64>) = {
                let st = d.state.lock();
                let reps = st.namenode.stat(&path).unwrap().blocks[0].replicas.clone();
                let reads = reps
                    .iter()
                    .map(|&n| st.datanodes[n.0 as usize].bytes_read_total())
                    .collect();
                (reps, reads)
            };
            // A reader in rack 0 that holds no replica itself.
            let reader = (0..6)
                .map(NodeId)
                .find(|n| d.config.rack_of(*n) == 0 && !replicas.contains(n))
                .unwrap();
            d.read_file(&path, Some(reader)).unwrap();
            let st = d.state.lock();
            for (j, &rep) in replicas.iter().enumerate() {
                let after = st.datanodes[rep.0 as usize].bytes_read_total();
                if d.config.rack_of(rep) == 0 {
                    assert!(after > before[j], "same-rack replica should serve");
                } else {
                    assert_eq!(after, before[j], "off-rack replica should be idle");
                }
            }
        }
    }

    #[test]
    fn single_rack_cluster_placement_still_works() {
        // racks = 2 but all even nodes dead: placement degrades gracefully
        // to one rack instead of failing.
        let d = rack_dfs(4, 2, 2, 3);
        d.kill_node(NodeId(1)).unwrap();
        d.kill_node(NodeId(3)).unwrap();
        d.write_file("/f", Bytes::from(vec![9u8; 32]), Some(NodeId(0)))
            .unwrap();
        let (data, _) = d.read_file("/f", None).unwrap();
        assert_eq!(data.len(), 32);
    }
}
