//! The memory-budgeted spill plane: LRU residency tracking for
//! handle-plane tile files, backed by the content-addressed
//! [`crate::blob::BlobStore`].
//!
//! The DFS keeps tile payloads resident as shared `Arc<Tile>` handles
//! (the *handle plane*). With a spill plane installed, the total decoded
//! bytes those resident handles pin is bounded by a configurable budget:
//! when a write or read-back admission pushes the plane over budget, the
//! **least-recently-used** resident files are *demoted* — encoded through
//! the ordinary [`cumulon_matrix::serialize::encode_tile`] wire codec,
//! optionally compressed, appended to a blob segment — and their in-RAM
//! payloads replaced by a [`crate::datanode::BlockPayload::Spilled`]
//! reference. The next read of a demoted file re-admits it through
//! [`crate::Dfs::read_payload`], transparently.
//!
//! **Nothing observable changes.** IO receipts are computed from namenode
//! block metadata (`BlockMeta.len`), placement RNG draws happen only at
//! write time, and datanode byte counters price payloads by their wire
//! length — which a `Spilled` reference preserves exactly. Where a tile
//! physically resides (RAM Arc vs disk segment) is invisible to results,
//! receipts, billing and fault handling; the equivalence tests and the
//! `spill-transparency` invariant of `cumulon check` pin this. The one
//! deliberate exception, documented in the tile-store tests: a tile that
//! round-trips through disk comes back as a *new* `Arc` with bitwise-equal
//! contents — pointer identity is only preserved while resident (same rule
//! the executor's replay validation already tolerates). Spill *statistics*
//! (like cache counters) may vary with worker-thread count, because
//! speculative execution can warm tiles ahead of canonical time.
//!
//! Phantom tiles are never tracked: they hold no materialised data, so
//! spilling them would save nothing.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::blob::{BlobKey, BlobStats, BlobStore};
use crate::error::Result;

/// Configuration of the out-of-core plane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillConfig {
    /// Resident-tile budget in bytes; `0` disables spilling entirely
    /// (the seed behaviour — everything stays in RAM).
    pub budget_bytes: u64,
    /// Blob-segment directory. `None` picks a unique directory under the
    /// system temp dir, removed when the plane drops.
    pub dir: Option<PathBuf>,
    /// Compress spilled payloads ([`cumulon_matrix::compress`]); the
    /// uncompressed path is the cross-checked reference.
    pub compress: bool,
}

impl SpillConfig {
    /// A budgeted plane with defaults (temp-dir segments, compression on).
    pub fn budgeted(budget_bytes: u64) -> SpillConfig {
        SpillConfig {
            budget_bytes,
            dir: None,
            compress: true,
        }
    }
}

/// Counters of the spill plane. Monotonic totals plus current occupancy;
/// like the tile-cache counters, these are observability aids and may
/// vary with worker-thread count (speculative readers warm tiles early) —
/// they are deliberately excluded from run fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpillStats {
    /// Decoded bytes currently pinned by resident tracked files.
    pub resident_bytes: u64,
    /// Tracked files currently resident.
    pub resident_files: u64,
    /// Files currently demoted to the blob store.
    pub spilled_files: u64,
    /// Wire bytes of currently-demoted files (pre-compression).
    pub spilled_wire_bytes: u64,
    /// Demotions performed (monotonic).
    pub evictions: u64,
    /// Re-admissions performed (monotonic).
    pub readmissions: u64,
    /// Wire bytes pushed through the spill path (monotonic).
    pub spilled_bytes_total: u64,
    /// Wire bytes read back from disk (monotonic).
    pub readback_bytes_total: u64,
    /// Files re-admitted ahead of demand by scheduler prefetch
    /// (monotonic; a subset of `readmissions`).
    pub prefetched_files: u64,
    /// Wire bytes whose synchronous, in-task readback was avoided because
    /// a prefetched tile was still resident when the canonical read
    /// arrived (monotonic). `readback_bytes_total - readback_bytes_avoided`
    /// approximates the readback volume paid on the task critical path.
    pub readback_bytes_avoided: u64,
    /// Blob-store counters (segments, compression ratio, compactions).
    pub blob: BlobStats,
}

/// One demoted file: where its encoded payload lives.
#[derive(Debug, Clone, Copy)]
pub struct SpilledFile {
    /// Content digest addressing the blob entry.
    pub key: BlobKey,
    /// Wire length of the encoded tile (pre-compression) — equals the sum
    /// of the file's block lengths, which is what conservation checks.
    pub wire_len: u64,
}

static PLANE_SEQ: AtomicU64 = AtomicU64::new(0);

fn default_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cumulon-spill-{}-{}",
        std::process::id(),
        PLANE_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The spill plane: residency LRU + blob store. Owned by the DFS state
/// and accessed under its lock, so the plane itself is single-threaded.
#[derive(Debug)]
pub struct SpillPlane {
    budget: u64,
    compress: bool,
    blob: BlobStore,
    /// path → (recency sequence, charged decoded bytes).
    resident: HashMap<String, (u64, u64)>,
    /// recency sequence → path; the smallest key is the coldest file.
    order: BTreeMap<u64, String>,
    resident_bytes: u64,
    seq: u64,
    spilled: HashMap<String, SpilledFile>,
    /// Resident paths that were re-admitted by prefetch and have not yet
    /// been claimed by a canonical read: path → wire length at prefetch
    /// time. A marker is dropped without credit when the path is evicted
    /// or forgotten before any read arrives.
    prefetched: HashMap<String, u64>,
    evictions: u64,
    readmissions: u64,
    spilled_bytes_total: u64,
    readback_bytes_total: u64,
    prefetched_files: u64,
    readback_bytes_avoided: u64,
}

impl SpillPlane {
    /// Builds a plane from a config with a nonzero budget.
    pub fn new(config: &SpillConfig) -> Result<SpillPlane> {
        debug_assert!(config.budget_bytes > 0, "budget 0 means no plane");
        let dir = config.dir.clone().unwrap_or_else(default_dir);
        Ok(SpillPlane {
            budget: config.budget_bytes,
            compress: config.compress,
            blob: BlobStore::open(dir)?,
            resident: HashMap::new(),
            order: BTreeMap::new(),
            resident_bytes: 0,
            seq: 0,
            spilled: HashMap::new(),
            prefetched: HashMap::new(),
            evictions: 0,
            readmissions: 0,
            spilled_bytes_total: 0,
            readback_bytes_total: 0,
            prefetched_files: 0,
            readback_bytes_avoided: 0,
        })
    }

    /// Whether payloads are compressed on the way to disk.
    pub fn compress(&self) -> bool {
        self.compress
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Mutable handle to the blob store (demotion/re-admission I/O).
    pub fn blob_mut(&mut self) -> &mut BlobStore {
        &mut self.blob
    }

    /// Records `path` as resident, pinning `bytes` of decoded data, and
    /// marks it most-recently-used. Re-noting an already-resident path
    /// only refreshes recency (bytes must not drift for a same-content
    /// file; if they do, the charge is updated).
    ///
    /// A path must never be tracked as resident *and* spilled at once: a
    /// write landing on a currently-demoted path (overwrite without a
    /// preceding [`SpillPlane::forget`]) supersedes the demoted copy. The
    /// displaced entry is returned so the caller can release its blob
    /// reference — dropping it silently would leak a segment ref and skew
    /// `spill_conserved()`.
    #[must_use = "a displaced spilled entry holds a blob reference the caller must release"]
    pub fn note_resident(&mut self, path: &str, bytes: u64) -> Option<SpilledFile> {
        let displaced = self.spilled.remove(path);
        self.seq += 1;
        match self.resident.get_mut(path) {
            Some((seq, charged)) => {
                self.order.remove(seq);
                self.resident_bytes = self.resident_bytes - *charged + bytes;
                *charged = bytes;
                *seq = self.seq;
            }
            None => {
                self.resident.insert(path.to_string(), (self.seq, bytes));
                self.resident_bytes += bytes;
            }
        }
        self.order.insert(self.seq, path.to_string());
        displaced
    }

    /// Refreshes recency of a resident path (reads). If the path carries
    /// an unclaimed prefetch marker, the read claims it: the wire bytes
    /// the reader would otherwise have read back synchronously are
    /// credited to `readback_bytes_avoided`.
    pub fn touch(&mut self, path: &str) {
        if let Some((seq, bytes)) = self.resident.get(path).copied() {
            self.seq += 1;
            self.order.remove(&seq);
            self.order.insert(self.seq, path.to_string());
            self.resident.insert(path.to_string(), (self.seq, bytes));
            if let Some(wire_len) = self.prefetched.remove(path) {
                self.readback_bytes_avoided += wire_len;
            }
        }
    }

    /// True when `path` is currently tracked as resident (its decoded
    /// payload is pinned in RAM). The scheduler's residency oracle.
    pub fn is_resident(&self, path: &str) -> bool {
        self.resident.contains_key(path)
    }

    /// True when `path` is currently demoted to the blob store. The
    /// scheduler's prefetch oracle: reading such a path pays a readback.
    pub fn is_spilled(&self, path: &str) -> bool {
        self.spilled.contains_key(path)
    }

    /// Marks a just-readmitted `path` as prefetched: re-admission ran
    /// ahead of demand (scheduler prefetch), not on a task's read path.
    /// The marker is claimed by the next read ([`SpillPlane::touch`]) and
    /// dropped without credit on eviction or forget.
    pub fn record_prefetched(&mut self, path: &str, wire_len: u64) {
        if self.resident.contains_key(path) {
            self.prefetched.insert(path.to_string(), wire_len);
            self.prefetched_files += 1;
        }
    }

    /// True when resident bytes exceed the budget.
    pub fn over_budget(&self) -> bool {
        self.resident_bytes > self.budget
    }

    /// Pops the coldest resident path if the plane is over budget. The
    /// caller performs the actual demotion and then calls
    /// [`SpillPlane::record_spilled`].
    pub fn next_eviction(&mut self) -> Option<String> {
        if !self.over_budget() {
            return None;
        }
        let (&seq, _) = self.order.iter().next()?;
        let path = self.order.remove(&seq)?;
        let (_, bytes) = self.resident.remove(&path).expect("ordered => resident");
        self.resident_bytes -= bytes;
        // A prefetched tile evicted before any read claimed it saved
        // nothing — drop the marker without credit.
        self.prefetched.remove(&path);
        Some(path)
    }

    /// Books a completed demotion of `path`. If the path is somehow still
    /// tracked as resident (a demotion not initiated through
    /// [`SpillPlane::next_eviction`]), its residency charge is released
    /// first so `resident_bytes` cannot drift; a previously-recorded
    /// spilled entry for the same path is returned so the caller can
    /// release the superseded blob reference.
    #[must_use = "a displaced spilled entry holds a blob reference the caller must release"]
    pub fn record_spilled(
        &mut self,
        path: &str,
        key: BlobKey,
        wire_len: u64,
    ) -> Option<SpilledFile> {
        if let Some((seq, bytes)) = self.resident.remove(path) {
            self.order.remove(&seq);
            self.resident_bytes -= bytes;
        }
        self.prefetched.remove(path);
        let displaced = self
            .spilled
            .insert(path.to_string(), SpilledFile { key, wire_len });
        self.evictions += 1;
        self.spilled_bytes_total += wire_len;
        displaced
    }

    /// Looks up where a demoted file's payload lives.
    pub fn spilled(&self, path: &str) -> Option<SpilledFile> {
        self.spilled.get(path).copied()
    }

    /// Books a completed re-admission: the path stops being spilled (its
    /// blob reference is released by the caller) and becomes resident.
    pub fn record_readmitted(&mut self, path: &str, resident_bytes: u64) -> Option<SpilledFile> {
        let entry = self.spilled.remove(path);
        if let Some(e) = &entry {
            self.readmissions += 1;
            self.readback_bytes_total += e.wire_len;
        }
        // The path was just removed from `spilled`, so re-noting it cannot
        // displace another entry.
        let displaced = self.note_resident(path, resident_bytes);
        debug_assert!(displaced.is_none(), "spilled entry removed above");
        entry
    }

    /// Forgets a path entirely (file deletion/overwrite). Returns the
    /// spilled entry if the path was demoted, so the caller can release
    /// the blob reference.
    pub fn forget(&mut self, path: &str) -> Option<SpilledFile> {
        if let Some((seq, bytes)) = self.resident.remove(path) {
            self.order.remove(&seq);
            self.resident_bytes -= bytes;
        }
        self.prefetched.remove(path);
        self.spilled.remove(path)
    }

    /// Paths currently demoted (for conservation checks), in namespace
    /// order.
    pub fn spilled_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.spilled.keys().cloned().collect();
        v.sort();
        v
    }

    /// Resident paths from coldest to hottest (test observability).
    pub fn lru_order(&self) -> VecDeque<String> {
        self.order.values().cloned().collect()
    }

    /// Current counters.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            resident_bytes: self.resident_bytes,
            resident_files: self.resident.len() as u64,
            spilled_files: self.spilled.len() as u64,
            spilled_wire_bytes: self.spilled.values().map(|s| s.wire_len).sum(),
            evictions: self.evictions,
            readmissions: self.readmissions,
            spilled_bytes_total: self.spilled_bytes_total,
            readback_bytes_total: self.readback_bytes_total,
            prefetched_files: self.prefetched_files,
            readback_bytes_avoided: self.readback_bytes_avoided,
            blob: self.blob.stats(),
        }
    }

    /// Internal-consistency audit, used by the interleaving tests: no
    /// path may be tracked as resident and spilled at once, the byte
    /// charge must equal the sum of per-path charges, the LRU order map
    /// must mirror the resident map exactly, and prefetch markers may
    /// only annotate resident paths.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for path in self.resident.keys() {
            if self.spilled.contains_key(path) {
                return Err(format!("{path} is both resident and spilled"));
            }
        }
        let charged: u64 = self.resident.values().map(|&(_, b)| b).sum();
        if charged != self.resident_bytes {
            return Err(format!(
                "resident_bytes {} != sum of charges {}",
                self.resident_bytes, charged
            ));
        }
        if self.order.len() != self.resident.len() {
            return Err(format!(
                "order map has {} entries, resident map {}",
                self.order.len(),
                self.resident.len()
            ));
        }
        for (seq, path) in &self.order {
            match self.resident.get(path) {
                Some((s, _)) if s == seq => {}
                _ => return Err(format!("order entry {seq}->{path} not mirrored")),
            }
        }
        for path in self.prefetched.keys() {
            if !self.resident.contains_key(path) {
                return Err(format!("prefetch marker on non-resident {path}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn plane(budget: u64) -> SpillPlane {
        SpillPlane::new(&SpillConfig::budgeted(budget)).unwrap()
    }

    /// Admits a fresh path: no spilled entry may be displaced.
    fn admit(p: &mut SpillPlane, path: &str, bytes: u64) {
        assert!(p.note_resident(path, bytes).is_none(), "fresh admit");
    }

    #[test]
    fn lru_evicts_coldest_first() {
        let mut p = plane(100);
        admit(&mut p, "/a", 40);
        admit(&mut p, "/b", 40);
        admit(&mut p, "/c", 40); // 120 > 100
        assert_eq!(p.lru_order(), ["/a", "/b", "/c"]);
        assert_eq!(p.next_eviction().as_deref(), Some("/a"));
        assert!(p.next_eviction().is_none(), "80 <= 100 after evicting /a");
        // Touch /b so /c becomes coldest, then push over budget again.
        p.touch("/b");
        admit(&mut p, "/d", 40);
        assert_eq!(p.next_eviction().as_deref(), Some("/c"));
        assert!(!p.over_budget());
    }

    #[test]
    fn budget_is_enforced_exhaustively() {
        let mut p = plane(64);
        for i in 0..10 {
            admit(&mut p, &format!("/t{i}"), 32);
        }
        let mut evicted = Vec::new();
        while let Some(path) = p.next_eviction() {
            evicted.push(path);
        }
        assert_eq!(evicted.len(), 8, "320 - 8*32 = 64 <= budget");
        assert_eq!(p.stats().resident_bytes, 64);
        assert!(p.stats().resident_bytes <= p.budget_bytes());
        // Coldest first: the first writes went first.
        assert_eq!(evicted[0], "/t0");
        assert_eq!(evicted[7], "/t7");
    }

    #[test]
    fn renoting_updates_charge_without_double_count() {
        let mut p = plane(1000);
        admit(&mut p, "/a", 100);
        admit(&mut p, "/a", 100);
        assert_eq!(p.stats().resident_bytes, 100);
        assert_eq!(p.stats().resident_files, 1);
        admit(&mut p, "/a", 60);
        assert_eq!(p.stats().resident_bytes, 60);
    }

    #[test]
    fn spill_readmit_forget_bookkeeping() {
        let mut p = plane(10);
        admit(&mut p, "/a", 50);
        let path = p.next_eviction().unwrap();
        assert_eq!(path, "/a");
        let key = BlobKey::digest(b"payload");
        assert!(p.record_spilled(&path, key, 48).is_none());
        let st = p.stats();
        assert_eq!(st.spilled_files, 1);
        assert_eq!(st.spilled_wire_bytes, 48);
        assert_eq!(st.evictions, 1);
        assert_eq!(p.spilled("/a").unwrap().key, key);
        assert_eq!(p.spilled_paths(), ["/a"]);
        assert!(p.is_spilled("/a") && !p.is_resident("/a"));

        let entry = p.record_readmitted("/a", 50).unwrap();
        assert_eq!(entry.key, key);
        let st = p.stats();
        assert_eq!(st.spilled_files, 0);
        assert_eq!(st.readmissions, 1);
        assert_eq!(st.readback_bytes_total, 48);
        assert_eq!(st.resident_bytes, 50);
        assert!(p.is_resident("/a") && !p.is_spilled("/a"));

        assert!(p.forget("/a").is_none(), "resident, not spilled");
        assert_eq!(p.stats().resident_bytes, 0);
        assert!(p.forget("/a").is_none(), "idempotent");
    }

    #[test]
    fn touch_of_unknown_path_is_a_noop() {
        let mut p = plane(10);
        p.touch("/ghost");
        assert_eq!(p.stats().resident_files, 0);
    }

    #[test]
    fn prefetch_marker_is_claimed_exactly_once() {
        let mut p = plane(100);
        admit(&mut p, "/a", 120);
        let evicted = p.next_eviction().unwrap();
        assert!(p
            .record_spilled(&evicted, BlobKey::digest(b"a"), 96)
            .is_none());
        // Prefetch readmits the tile ahead of demand.
        assert!(p.record_readmitted("/a", 120).is_some());
        p.record_prefetched("/a", 96);
        assert_eq!(p.stats().prefetched_files, 1);
        assert_eq!(p.stats().readback_bytes_avoided, 0, "not yet claimed");
        // The canonical read claims the marker once.
        p.touch("/a");
        assert_eq!(p.stats().readback_bytes_avoided, 96);
        p.touch("/a");
        assert_eq!(p.stats().readback_bytes_avoided, 96, "claimed once");
        p.check_invariants().unwrap();
    }

    #[test]
    fn prefetch_marker_dropped_without_credit_on_churn() {
        let mut p = plane(100);
        admit(&mut p, "/a", 120);
        let evicted = p.next_eviction().unwrap();
        assert!(p
            .record_spilled(&evicted, BlobKey::digest(b"a"), 96)
            .is_none());
        assert!(p.record_readmitted("/a", 120).is_some());
        p.record_prefetched("/a", 96);
        // Re-evicted before any read claimed the prefetch: no credit.
        let evicted = p.next_eviction().unwrap();
        assert!(p
            .record_spilled(&evicted, BlobKey::digest(b"a"), 96)
            .is_none());
        assert_eq!(p.stats().readback_bytes_avoided, 0);
        // Readmit (canonically this time) and forget before reading: the
        // second prefetch marker also dies without credit.
        assert!(p.record_readmitted("/a", 120).is_some());
        p.record_prefetched("/a", 96);
        assert!(p.forget("/a").is_none());
        p.touch("/a");
        assert_eq!(p.stats().readback_bytes_avoided, 0);
        assert_eq!(p.stats().prefetched_files, 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn prefetch_marker_requires_residency() {
        let mut p = plane(100);
        p.record_prefetched("/ghost", 64);
        assert_eq!(p.stats().prefetched_files, 0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn overwrite_of_spilled_path_displaces_the_stale_entry() {
        let mut p = plane(10);
        admit(&mut p, "/a", 50);
        let evicted = p.next_eviction().unwrap();
        let key = BlobKey::digest(b"old");
        assert!(p.record_spilled(&evicted, key, 48).is_none());
        // A write lands on the demoted path without a forget: the plane
        // must not track the path in both maps, and the stale blob
        // reference surfaces for release.
        let displaced = p.note_resident("/a", 50).expect("stale entry surfaced");
        assert_eq!(displaced.key, key);
        assert!(p.is_resident("/a") && !p.is_spilled("/a"));
        assert_eq!(p.stats().resident_bytes, 50);
        p.check_invariants().unwrap();
    }

    #[test]
    fn direct_respill_of_resident_path_releases_the_charge() {
        let mut p = plane(1000);
        admit(&mut p, "/a", 50);
        // A demotion not initiated through next_eviction (caller bug or
        // churn race) must still release the residency charge.
        assert!(p.record_spilled("/a", BlobKey::digest(b"a"), 48).is_none());
        assert_eq!(p.stats().resident_bytes, 0);
        assert!(!p.is_resident("/a") && p.is_spilled("/a"));
        p.check_invariants().unwrap();
    }

    /// Satellite audit: arbitrary interleavings of admit / touch / evict+
    /// spill / readmit / prefetch / forget keep the plane internally
    /// consistent — no path in both maps, no budget-charge drift, no
    /// readback-avoided credit without a prior unclaimed prefetch.
    #[derive(Debug, Clone)]
    enum Op {
        Note(u8, u64),
        Touch(u8),
        EvictAndSpill,
        /// Readmit a spilled path; `true` models a prefetch (readmit ahead
        /// of demand, then mark — the only contract-valid way to mark).
        Readmit(u8, bool),
        Forget(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..6, 1u64..200).prop_map(|(p, b)| Op::Note(p, b)),
            (0u8..6).prop_map(Op::Touch),
            Just(Op::EvictAndSpill),
            (0u8..6, any::<bool>()).prop_map(|(p, pf)| Op::Readmit(p, pf)),
            (0u8..6).prop_map(Op::Forget),
        ]
    }

    proptest! {
        #[test]
        fn interleavings_preserve_plane_invariants(
            ops in proptest::collection::vec(op_strategy(), 1..120),
            budget in 50u64..400,
        ) {
            let mut p = plane(budget);
            let path = |i: u8| format!("/t{i}");
            for op in ops {
                match op {
                    Op::Note(i, b) => {
                        let _displaced = p.note_resident(&path(i), b);
                    }
                    Op::Touch(i) => p.touch(&path(i)),
                    Op::EvictAndSpill => {
                        if let Some(victim) = p.next_eviction() {
                            let key = BlobKey::digest(victim.as_bytes());
                            let displaced = p.record_spilled(&victim, key, 64);
                            prop_assert!(
                                displaced.is_none(),
                                "evicted path cannot already be spilled"
                            );
                        }
                    }
                    Op::Readmit(i, as_prefetch) => {
                        if p.is_spilled(&path(i)) {
                            prop_assert!(p.record_readmitted(&path(i), 64).is_some());
                            if as_prefetch {
                                p.record_prefetched(&path(i), 64);
                            }
                        }
                    }
                    Op::Forget(i) => {
                        let _stale = p.forget(&path(i));
                    }
                }
                p.check_invariants().map_err(TestCaseError::fail)?;
                let st = p.stats();
                prop_assert!(st.readback_bytes_avoided <= st.readback_bytes_total);
                prop_assert_eq!(
                    st.spilled_wire_bytes,
                    st.spilled_files * 64,
                    "every live spilled entry carries its wire length"
                );
            }
            // Draining all evictions always lands the plane within budget.
            while let Some(victim) = p.next_eviction() {
                let _ = p.record_spilled(&victim, BlobKey::digest(victim.as_bytes()), 64);
            }
            prop_assert!(p.stats().resident_bytes <= p.budget_bytes());
            p.check_invariants().map_err(TestCaseError::fail)?;
        }
    }
}
