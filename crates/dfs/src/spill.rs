//! The memory-budgeted spill plane: LRU residency tracking for
//! handle-plane tile files, backed by the content-addressed
//! [`crate::blob::BlobStore`].
//!
//! The DFS keeps tile payloads resident as shared `Arc<Tile>` handles
//! (the *handle plane*). With a spill plane installed, the total decoded
//! bytes those resident handles pin is bounded by a configurable budget:
//! when a write or read-back admission pushes the plane over budget, the
//! **least-recently-used** resident files are *demoted* — encoded through
//! the ordinary [`cumulon_matrix::serialize::encode_tile`] wire codec,
//! optionally compressed, appended to a blob segment — and their in-RAM
//! payloads replaced by a [`crate::datanode::BlockPayload::Spilled`]
//! reference. The next read of a demoted file re-admits it through
//! [`crate::Dfs::read_payload`], transparently.
//!
//! **Nothing observable changes.** IO receipts are computed from namenode
//! block metadata (`BlockMeta.len`), placement RNG draws happen only at
//! write time, and datanode byte counters price payloads by their wire
//! length — which a `Spilled` reference preserves exactly. Where a tile
//! physically resides (RAM Arc vs disk segment) is invisible to results,
//! receipts, billing and fault handling; the equivalence tests and the
//! `spill-transparency` invariant of `cumulon check` pin this. The one
//! deliberate exception, documented in the tile-store tests: a tile that
//! round-trips through disk comes back as a *new* `Arc` with bitwise-equal
//! contents — pointer identity is only preserved while resident (same rule
//! the executor's replay validation already tolerates). Spill *statistics*
//! (like cache counters) may vary with worker-thread count, because
//! speculative execution can warm tiles ahead of canonical time.
//!
//! Phantom tiles are never tracked: they hold no materialised data, so
//! spilling them would save nothing.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::blob::{BlobKey, BlobStats, BlobStore};
use crate::error::Result;

/// Configuration of the out-of-core plane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillConfig {
    /// Resident-tile budget in bytes; `0` disables spilling entirely
    /// (the seed behaviour — everything stays in RAM).
    pub budget_bytes: u64,
    /// Blob-segment directory. `None` picks a unique directory under the
    /// system temp dir, removed when the plane drops.
    pub dir: Option<PathBuf>,
    /// Compress spilled payloads ([`cumulon_matrix::compress`]); the
    /// uncompressed path is the cross-checked reference.
    pub compress: bool,
}

impl SpillConfig {
    /// A budgeted plane with defaults (temp-dir segments, compression on).
    pub fn budgeted(budget_bytes: u64) -> SpillConfig {
        SpillConfig {
            budget_bytes,
            dir: None,
            compress: true,
        }
    }
}

/// Counters of the spill plane. Monotonic totals plus current occupancy;
/// like the tile-cache counters, these are observability aids and may
/// vary with worker-thread count (speculative readers warm tiles early) —
/// they are deliberately excluded from run fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpillStats {
    /// Decoded bytes currently pinned by resident tracked files.
    pub resident_bytes: u64,
    /// Tracked files currently resident.
    pub resident_files: u64,
    /// Files currently demoted to the blob store.
    pub spilled_files: u64,
    /// Wire bytes of currently-demoted files (pre-compression).
    pub spilled_wire_bytes: u64,
    /// Demotions performed (monotonic).
    pub evictions: u64,
    /// Re-admissions performed (monotonic).
    pub readmissions: u64,
    /// Wire bytes pushed through the spill path (monotonic).
    pub spilled_bytes_total: u64,
    /// Wire bytes read back from disk (monotonic).
    pub readback_bytes_total: u64,
    /// Blob-store counters (segments, compression ratio, compactions).
    pub blob: BlobStats,
}

/// One demoted file: where its encoded payload lives.
#[derive(Debug, Clone, Copy)]
pub struct SpilledFile {
    /// Content digest addressing the blob entry.
    pub key: BlobKey,
    /// Wire length of the encoded tile (pre-compression) — equals the sum
    /// of the file's block lengths, which is what conservation checks.
    pub wire_len: u64,
}

static PLANE_SEQ: AtomicU64 = AtomicU64::new(0);

fn default_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cumulon-spill-{}-{}",
        std::process::id(),
        PLANE_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The spill plane: residency LRU + blob store. Owned by the DFS state
/// and accessed under its lock, so the plane itself is single-threaded.
#[derive(Debug)]
pub struct SpillPlane {
    budget: u64,
    compress: bool,
    blob: BlobStore,
    /// path → (recency sequence, charged decoded bytes).
    resident: HashMap<String, (u64, u64)>,
    /// recency sequence → path; the smallest key is the coldest file.
    order: BTreeMap<u64, String>,
    resident_bytes: u64,
    seq: u64,
    spilled: HashMap<String, SpilledFile>,
    evictions: u64,
    readmissions: u64,
    spilled_bytes_total: u64,
    readback_bytes_total: u64,
}

impl SpillPlane {
    /// Builds a plane from a config with a nonzero budget.
    pub fn new(config: &SpillConfig) -> Result<SpillPlane> {
        debug_assert!(config.budget_bytes > 0, "budget 0 means no plane");
        let dir = config.dir.clone().unwrap_or_else(default_dir);
        Ok(SpillPlane {
            budget: config.budget_bytes,
            compress: config.compress,
            blob: BlobStore::open(dir)?,
            resident: HashMap::new(),
            order: BTreeMap::new(),
            resident_bytes: 0,
            seq: 0,
            spilled: HashMap::new(),
            evictions: 0,
            readmissions: 0,
            spilled_bytes_total: 0,
            readback_bytes_total: 0,
        })
    }

    /// Whether payloads are compressed on the way to disk.
    pub fn compress(&self) -> bool {
        self.compress
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Mutable handle to the blob store (demotion/re-admission I/O).
    pub fn blob_mut(&mut self) -> &mut BlobStore {
        &mut self.blob
    }

    /// Records `path` as resident, pinning `bytes` of decoded data, and
    /// marks it most-recently-used. Re-noting an already-resident path
    /// only refreshes recency (bytes must not drift for a same-content
    /// file; if they do, the charge is updated).
    pub fn note_resident(&mut self, path: &str, bytes: u64) {
        self.seq += 1;
        match self.resident.get_mut(path) {
            Some((seq, charged)) => {
                self.order.remove(seq);
                self.resident_bytes = self.resident_bytes - *charged + bytes;
                *charged = bytes;
                *seq = self.seq;
            }
            None => {
                self.resident.insert(path.to_string(), (self.seq, bytes));
                self.resident_bytes += bytes;
            }
        }
        self.order.insert(self.seq, path.to_string());
    }

    /// Refreshes recency of a resident path (reads).
    pub fn touch(&mut self, path: &str) {
        if let Some((seq, bytes)) = self.resident.get(path).copied() {
            self.seq += 1;
            self.order.remove(&seq);
            self.order.insert(self.seq, path.to_string());
            self.resident.insert(path.to_string(), (self.seq, bytes));
        }
    }

    /// True when resident bytes exceed the budget.
    pub fn over_budget(&self) -> bool {
        self.resident_bytes > self.budget
    }

    /// Pops the coldest resident path if the plane is over budget. The
    /// caller performs the actual demotion and then calls
    /// [`SpillPlane::record_spilled`].
    pub fn next_eviction(&mut self) -> Option<String> {
        if !self.over_budget() {
            return None;
        }
        let (&seq, _) = self.order.iter().next()?;
        let path = self.order.remove(&seq)?;
        let (_, bytes) = self.resident.remove(&path).expect("ordered => resident");
        self.resident_bytes -= bytes;
        Some(path)
    }

    /// Books a completed demotion of `path`.
    pub fn record_spilled(&mut self, path: &str, key: BlobKey, wire_len: u64) {
        self.spilled
            .insert(path.to_string(), SpilledFile { key, wire_len });
        self.evictions += 1;
        self.spilled_bytes_total += wire_len;
    }

    /// Looks up where a demoted file's payload lives.
    pub fn spilled(&self, path: &str) -> Option<SpilledFile> {
        self.spilled.get(path).copied()
    }

    /// Books a completed re-admission: the path stops being spilled (its
    /// blob reference is released by the caller) and becomes resident.
    pub fn record_readmitted(&mut self, path: &str, resident_bytes: u64) -> Option<SpilledFile> {
        let entry = self.spilled.remove(path);
        if let Some(e) = &entry {
            self.readmissions += 1;
            self.readback_bytes_total += e.wire_len;
        }
        self.note_resident(path, resident_bytes);
        entry
    }

    /// Forgets a path entirely (file deletion/overwrite). Returns the
    /// spilled entry if the path was demoted, so the caller can release
    /// the blob reference.
    pub fn forget(&mut self, path: &str) -> Option<SpilledFile> {
        if let Some((seq, bytes)) = self.resident.remove(path) {
            self.order.remove(&seq);
            self.resident_bytes -= bytes;
        }
        self.spilled.remove(path)
    }

    /// Paths currently demoted (for conservation checks), in namespace
    /// order.
    pub fn spilled_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.spilled.keys().cloned().collect();
        v.sort();
        v
    }

    /// Resident paths from coldest to hottest (test observability).
    pub fn lru_order(&self) -> VecDeque<String> {
        self.order.values().cloned().collect()
    }

    /// Current counters.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            resident_bytes: self.resident_bytes,
            resident_files: self.resident.len() as u64,
            spilled_files: self.spilled.len() as u64,
            spilled_wire_bytes: self.spilled.values().map(|s| s.wire_len).sum(),
            evictions: self.evictions,
            readmissions: self.readmissions,
            spilled_bytes_total: self.spilled_bytes_total,
            readback_bytes_total: self.readback_bytes_total,
            blob: self.blob.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(budget: u64) -> SpillPlane {
        SpillPlane::new(&SpillConfig::budgeted(budget)).unwrap()
    }

    #[test]
    fn lru_evicts_coldest_first() {
        let mut p = plane(100);
        p.note_resident("/a", 40);
        p.note_resident("/b", 40);
        p.note_resident("/c", 40); // 120 > 100
        assert_eq!(p.lru_order(), ["/a", "/b", "/c"]);
        assert_eq!(p.next_eviction().as_deref(), Some("/a"));
        assert!(p.next_eviction().is_none(), "80 <= 100 after evicting /a");
        // Touch /b so /c becomes coldest, then push over budget again.
        p.touch("/b");
        p.note_resident("/d", 40);
        assert_eq!(p.next_eviction().as_deref(), Some("/c"));
        assert!(!p.over_budget());
    }

    #[test]
    fn budget_is_enforced_exhaustively() {
        let mut p = plane(64);
        for i in 0..10 {
            p.note_resident(&format!("/t{i}"), 32);
        }
        let mut evicted = Vec::new();
        while let Some(path) = p.next_eviction() {
            evicted.push(path);
        }
        assert_eq!(evicted.len(), 8, "320 - 8*32 = 64 <= budget");
        assert_eq!(p.stats().resident_bytes, 64);
        assert!(p.stats().resident_bytes <= p.budget_bytes());
        // Coldest first: the first writes went first.
        assert_eq!(evicted[0], "/t0");
        assert_eq!(evicted[7], "/t7");
    }

    #[test]
    fn renoting_updates_charge_without_double_count() {
        let mut p = plane(1000);
        p.note_resident("/a", 100);
        p.note_resident("/a", 100);
        assert_eq!(p.stats().resident_bytes, 100);
        assert_eq!(p.stats().resident_files, 1);
        p.note_resident("/a", 60);
        assert_eq!(p.stats().resident_bytes, 60);
    }

    #[test]
    fn spill_readmit_forget_bookkeeping() {
        let mut p = plane(10);
        p.note_resident("/a", 50);
        let path = p.next_eviction().unwrap();
        assert_eq!(path, "/a");
        let key = BlobKey::digest(b"payload");
        p.record_spilled(&path, key, 48);
        let st = p.stats();
        assert_eq!(st.spilled_files, 1);
        assert_eq!(st.spilled_wire_bytes, 48);
        assert_eq!(st.evictions, 1);
        assert_eq!(p.spilled("/a").unwrap().key, key);
        assert_eq!(p.spilled_paths(), ["/a"]);

        let entry = p.record_readmitted("/a", 50).unwrap();
        assert_eq!(entry.key, key);
        let st = p.stats();
        assert_eq!(st.spilled_files, 0);
        assert_eq!(st.readmissions, 1);
        assert_eq!(st.readback_bytes_total, 48);
        assert_eq!(st.resident_bytes, 50);

        assert!(p.forget("/a").is_none(), "resident, not spilled");
        assert_eq!(p.stats().resident_bytes, 0);
        assert!(p.forget("/a").is_none(), "idempotent");
    }

    #[test]
    fn touch_of_unknown_path_is_a_noop() {
        let mut p = plane(10);
        p.touch("/ghost");
        assert_eq!(p.stats().resident_files, 0);
    }
}
