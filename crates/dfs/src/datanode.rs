//! Datanode block storage.

use std::collections::HashMap;

use bytes::Bytes;

/// Globally unique block identifier, allocated by the namenode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Storage of one simulated datanode: block payloads plus usage counters.
#[derive(Debug, Default)]
pub struct DataNode {
    blocks: HashMap<BlockId, Bytes>,
    bytes_stored: u64,
    /// Cumulative bytes ever written to this node (for balance statistics).
    bytes_written_total: u64,
    /// Cumulative bytes ever read from this node.
    bytes_read_total: u64,
}

impl DataNode {
    /// Creates an empty datanode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a block replica.
    pub fn put(&mut self, id: BlockId, data: Bytes) {
        let len = data.len() as u64;
        if let Some(old) = self.blocks.insert(id, data) {
            self.bytes_stored -= old.len() as u64;
        }
        self.bytes_stored += len;
        self.bytes_written_total += len;
    }

    /// Fetches a block replica, counting the read.
    pub fn get(&mut self, id: BlockId) -> Option<Bytes> {
        let data = self.blocks.get(&id).cloned();
        if let Some(d) = &data {
            self.bytes_read_total += d.len() as u64;
        }
        data
    }

    /// True if the node holds a replica of `id`.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Drops a replica if present, returning its size.
    pub fn evict(&mut self, id: BlockId) -> u64 {
        match self.blocks.remove(&id) {
            Some(d) => {
                self.bytes_stored -= d.len() as u64;
                d.len() as u64
            }
            None => 0,
        }
    }

    /// Bytes currently stored.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Number of block replicas stored.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Lifetime write volume.
    pub fn bytes_written_total(&self) -> u64 {
        self.bytes_written_total
    }

    /// Lifetime read volume.
    pub fn bytes_read_total(&self) -> u64 {
        self.bytes_read_total
    }

    /// Ids of all blocks held (for re-replication after failures).
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.blocks.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_evict() {
        let mut n = DataNode::new();
        n.put(BlockId(1), Bytes::from_static(b"hello"));
        assert_eq!(n.bytes_stored(), 5);
        assert_eq!(n.block_count(), 1);
        assert!(n.contains(BlockId(1)));
        assert_eq!(n.get(BlockId(1)).unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(n.bytes_read_total(), 5);
        assert_eq!(n.evict(BlockId(1)), 5);
        assert_eq!(n.bytes_stored(), 0);
        assert_eq!(n.evict(BlockId(1)), 0);
    }

    #[test]
    fn put_overwrite_adjusts_usage() {
        let mut n = DataNode::new();
        n.put(BlockId(1), Bytes::from_static(b"aaaa"));
        n.put(BlockId(1), Bytes::from_static(b"bb"));
        assert_eq!(n.bytes_stored(), 2);
        assert_eq!(n.bytes_written_total(), 6);
    }

    #[test]
    fn missing_block_is_none() {
        let mut n = DataNode::new();
        assert!(n.get(BlockId(9)).is_none());
        assert_eq!(n.bytes_read_total(), 0);
    }

    #[test]
    fn block_ids_lists_all() {
        let mut n = DataNode::new();
        n.put(BlockId(1), Bytes::from_static(b"a"));
        n.put(BlockId(2), Bytes::from_static(b"b"));
        let mut ids = n.block_ids();
        ids.sort();
        assert_eq!(ids, vec![BlockId(1), BlockId(2)]);
    }
}
