//! Datanode block storage.
//!
//! Blocks live on one of two planes:
//!
//! * the **byte plane** ([`BlockPayload::Bytes`]) — a materialized encoded
//!   buffer, as a real DFS would store;
//! * the **handle plane** ([`BlockPayload::Tile`]) — a shared `Arc<Tile>`
//!   plus the exact wire length the encoded block *would* occupy. All
//!   byte-accounting counters use that wire length, so the two planes are
//!   indistinguishable to receipts, placement, and storage statistics;
//! * the **disk tier** ([`BlockPayload::Spilled`]) — a handle-plane block
//!   whose decoded tile was demoted to the content-addressed blob store by
//!   the memory-budgeted spill plane. It carries the same wire length the
//!   handle carried, so every counter stays bitwise-identical; the next
//!   read re-admits the tile through `Dfs::read_payload`.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use cumulon_matrix::Tile;

use crate::blob::BlobKey;

/// Globally unique block identifier, allocated by the namenode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// The stored form of one block replica.
#[derive(Debug, Clone)]
pub enum BlockPayload {
    /// Materialized encoded bytes (checkpoints, `--materialize-bytes` mode).
    Bytes(Bytes),
    /// Zero-copy tile handle. `len` is the wire length this block would have
    /// if encoded — for single-block tile files that is the full encoding;
    /// large tiles split into multiple handle blocks that each carry a slice
    /// of the wire length while sharing the same `Arc`.
    Tile {
        /// Shared payload — cloning a replica clones the handle, not data.
        tile: Arc<Tile>,
        /// Wire length in bytes charged for this block.
        len: u64,
    },
    /// Handle-plane block demoted to the blob store by the spill plane.
    /// `len` is the wire length the resident handle carried — preserved
    /// exactly so residency is invisible to all byte accounting.
    Spilled {
        /// Content digest addressing the blob entry for the owning file.
        key: BlobKey,
        /// Wire length in bytes charged for this block.
        len: u64,
    },
}

impl BlockPayload {
    /// The length used for every byte-accounting purpose.
    pub fn len(&self) -> u64 {
        match self {
            BlockPayload::Bytes(b) => b.len() as u64,
            BlockPayload::Tile { len, .. } => *len,
            BlockPayload::Spilled { len, .. } => *len,
        }
    }

    /// True for zero-length blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Storage of one simulated datanode: block payloads plus usage counters.
#[derive(Debug, Default)]
pub struct DataNode {
    blocks: HashMap<BlockId, BlockPayload>,
    bytes_stored: u64,
    /// Cumulative bytes ever written to this node (for balance statistics).
    bytes_written_total: u64,
    /// Cumulative bytes ever read from this node.
    bytes_read_total: u64,
}

impl DataNode {
    /// Creates an empty datanode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a block replica.
    pub fn put(&mut self, id: BlockId, data: impl Into<BlockPayload>) {
        let data = data.into();
        let len = data.len();
        if let Some(old) = self.blocks.insert(id, data) {
            self.bytes_stored -= old.len();
        }
        self.bytes_stored += len;
        self.bytes_written_total += len;
    }

    /// Fetches a block replica, counting the read.
    pub fn get(&mut self, id: BlockId) -> Option<BlockPayload> {
        let data = self.blocks.get(&id).cloned();
        if let Some(d) = &data {
            self.bytes_read_total += d.len();
        }
        data
    }

    /// True if the node holds a replica of `id`.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Non-counting peek at a replica (spill-plane internals only — real
    /// reads go through [`DataNode::get`] so they are charged).
    pub fn peek(&self, id: BlockId) -> Option<&BlockPayload> {
        self.blocks.get(&id)
    }

    /// Replaces a replica's payload in place **without touching any byte
    /// counter**. The spill plane uses this to demote a resident tile to
    /// a [`BlockPayload::Spilled`] reference and to re-admit it later;
    /// both directions preserve the charged wire length, so storage
    /// accounting and receipts cannot observe residency. Returns `false`
    /// if the node holds no replica of `id`.
    pub fn swap_payload(&mut self, id: BlockId, payload: BlockPayload) -> bool {
        match self.blocks.get_mut(&id) {
            Some(slot) => {
                debug_assert_eq!(
                    slot.len(),
                    payload.len(),
                    "residency swaps must be counter-neutral"
                );
                *slot = payload;
                true
            }
            None => false,
        }
    }

    /// Drops a replica if present, returning its size.
    pub fn evict(&mut self, id: BlockId) -> u64 {
        match self.blocks.remove(&id) {
            Some(d) => {
                self.bytes_stored -= d.len();
                d.len()
            }
            None => 0,
        }
    }

    /// Bytes currently stored.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Number of block replicas stored.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Lifetime write volume.
    pub fn bytes_written_total(&self) -> u64 {
        self.bytes_written_total
    }

    /// Lifetime read volume.
    pub fn bytes_read_total(&self) -> u64 {
        self.bytes_read_total
    }

    /// Ids of all blocks held (for re-replication after failures).
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.blocks.keys().copied().collect()
    }
}

impl From<Bytes> for BlockPayload {
    fn from(b: Bytes) -> Self {
        BlockPayload::Bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_evict() {
        let mut n = DataNode::new();
        n.put(BlockId(1), Bytes::from_static(b"hello"));
        assert_eq!(n.bytes_stored(), 5);
        assert_eq!(n.block_count(), 1);
        assert!(n.contains(BlockId(1)));
        match n.get(BlockId(1)).unwrap() {
            BlockPayload::Bytes(b) => assert_eq!(b, Bytes::from_static(b"hello")),
            other => panic!("expected bytes, got {other:?}"),
        }
        assert_eq!(n.bytes_read_total(), 5);
        assert_eq!(n.evict(BlockId(1)), 5);
        assert_eq!(n.bytes_stored(), 0);
        assert_eq!(n.evict(BlockId(1)), 0);
    }

    #[test]
    fn put_overwrite_adjusts_usage() {
        let mut n = DataNode::new();
        n.put(BlockId(1), Bytes::from_static(b"aaaa"));
        n.put(BlockId(1), Bytes::from_static(b"bb"));
        assert_eq!(n.bytes_stored(), 2);
        assert_eq!(n.bytes_written_total(), 6);
    }

    #[test]
    fn missing_block_is_none() {
        let mut n = DataNode::new();
        assert!(n.get(BlockId(9)).is_none());
        assert_eq!(n.bytes_read_total(), 0);
    }

    #[test]
    fn block_ids_lists_all() {
        let mut n = DataNode::new();
        n.put(BlockId(1), Bytes::from_static(b"a"));
        n.put(BlockId(2), Bytes::from_static(b"b"));
        let mut ids = n.block_ids();
        ids.sort();
        assert_eq!(ids, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn tile_handle_counters_use_wire_len() {
        let mut n = DataNode::new();
        let tile = Arc::new(Tile::zeros(4, 4));
        n.put(
            BlockId(7),
            BlockPayload::Tile {
                tile: Arc::clone(&tile),
                len: 152,
            },
        );
        assert_eq!(n.bytes_stored(), 152);
        assert_eq!(n.bytes_written_total(), 152);
        match n.get(BlockId(7)).unwrap() {
            BlockPayload::Tile { tile: t, len } => {
                assert!(Arc::ptr_eq(&t, &tile), "replica shares the Arc");
                assert_eq!(len, 152);
            }
            other => panic!("expected tile handle, got {other:?}"),
        }
        assert_eq!(n.bytes_read_total(), 152);
        assert_eq!(n.evict(BlockId(7)), 152);
        assert_eq!(n.bytes_stored(), 0);
    }

    #[test]
    fn swap_payload_is_counter_neutral() {
        let mut n = DataNode::new();
        let tile = Arc::new(Tile::zeros(4, 4));
        n.put(
            BlockId(3),
            BlockPayload::Tile {
                tile: Arc::clone(&tile),
                len: 152,
            },
        );
        let (stored, written, read) = (
            n.bytes_stored(),
            n.bytes_written_total(),
            n.bytes_read_total(),
        );
        let key = BlobKey::digest(b"frame");
        assert!(n.swap_payload(BlockId(3), BlockPayload::Spilled { key, len: 152 }));
        assert_eq!(n.bytes_stored(), stored);
        assert_eq!(n.bytes_written_total(), written);
        assert_eq!(n.bytes_read_total(), read);
        match n.peek(BlockId(3)).unwrap() {
            BlockPayload::Spilled { key: k, len } => {
                assert_eq!(*k, key);
                assert_eq!(*len, 152);
            }
            other => panic!("expected spilled reference, got {other:?}"),
        }
        // Swap back: also neutral, and a peek never counts a read.
        assert!(n.swap_payload(BlockId(3), BlockPayload::Tile { tile, len: 152 }));
        assert_eq!(n.bytes_read_total(), read);
        assert!(!n.swap_payload(BlockId(99), BlockPayload::Spilled { key, len: 0 }));
    }
}
