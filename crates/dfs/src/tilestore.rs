//! The tile store: named matrices whose tiles live in the DFS.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use cumulon_matrix::gen::Generator;
use cumulon_matrix::serialize::{decode_tile, encode_tile, encoded_len};
use cumulon_matrix::{LocalMatrix, MatrixMeta, Tile};

use crate::dfs::{Dfs, FilePayload, IoReceipt, NodeId};
use crate::error::{DfsError, Result};
use crate::spill::SpillConfig;

/// Registry entry for a stored matrix.
#[derive(Debug, Clone)]
pub struct MatrixHandle {
    /// Matrix name (unique within the store).
    pub name: String,
    /// Logical dimensions and tiling.
    pub meta: MatrixMeta,
    /// Optional generator: tiles of generated matrices are produced on
    /// demand by tasks instead of being read from the DFS.
    pub generator: Option<Generator>,
}

struct StoreState {
    matrices: BTreeMap<String, MatrixHandle>,
    /// When set, tile writes materialize encoded bytes (the pre-handle-plane
    /// behavior) instead of storing `Arc<Tile>` handles. Kept for tests and
    /// the `--materialize-bytes` CLI mode; receipts and results must be
    /// identical either way.
    materialize_bytes: bool,
}

/// Number of independent cache shards; keyed reads on different tiles do
/// not contend on one lock.
const CACHE_SHARDS: usize = 16;

/// Default decoded-tile cache budget.
const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

/// Bookkeeping size charged for phantom tiles, whose payload is metadata
/// only (their `stored_bytes` is the *logical* size, which would evict the
/// whole cache for no memory actually held).
const PHANTOM_ENTRY_BYTES: u64 = 64;

fn cache_entry_bytes(tile: &Tile) -> u64 {
    if tile.is_phantom() {
        PHANTOM_ENTRY_BYTES
    } else {
        tile.stored_bytes()
    }
}

#[derive(Default)]
struct CacheShard {
    entries: HashMap<String, Arc<Tile>>,
    /// FIFO eviction order of keys currently present.
    order: VecDeque<String>,
    bytes: u64,
}

impl CacheShard {
    fn remove(&mut self, key: &str) {
        if let Some(tile) = self.entries.remove(key) {
            self.bytes = self.bytes.saturating_sub(cache_entry_bytes(&tile));
            self.order.retain(|k| k != key);
        }
    }
}

/// A sharded, byte-budgeted, FIFO-evicting cache of decoded tiles. Holding
/// `Arc<Tile>` handles means a cache hit costs no payload copy, and readers
/// on different shards never serialize on one lock.
struct TileCache {
    shards: Vec<Mutex<CacheShard>>,
    /// Byte budget; atomically swappable so a memory budget installed
    /// after construction (`TileStore::set_memory_budget`) resizes the
    /// cache shared by every store clone.
    capacity: AtomicU64,
}

impl TileCache {
    fn new(capacity: u64) -> Self {
        TileCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            capacity: AtomicU64::new(capacity),
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Resizes the cache, trimming each shard to the new per-shard budget.
    fn set_capacity(&self, capacity: u64) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let budget = capacity / CACHE_SHARDS as u64;
        for m in &self.shards {
            let mut shard = m.lock();
            while shard.bytes > budget {
                let Some(victim) = shard.order.front().cloned() else {
                    break;
                };
                shard.remove(&victim);
            }
        }
    }

    fn shard(&self, key: &str) -> &Mutex<CacheShard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    fn get(&self, key: &str) -> Option<Arc<Tile>> {
        self.shard(key).lock().entries.get(key).cloned()
    }

    fn insert(&self, key: &str, tile: Arc<Tile>) {
        let capacity = self.capacity();
        let size = cache_entry_bytes(&tile);
        if size > capacity {
            return;
        }
        let mut shard = self.shard(key).lock();
        shard.remove(key);
        shard.entries.insert(key.to_string(), tile);
        shard.order.push_back(key.to_string());
        shard.bytes += size;
        // Per-shard budget so the aggregate stays near `capacity`.
        let budget = (capacity / CACHE_SHARDS as u64).max(size);
        while shard.bytes > budget {
            let Some(victim) = shard.order.front().cloned() else {
                break;
            };
            shard.remove(&victim);
        }
    }

    fn invalidate(&self, key: &str) {
        self.shard(key).lock().remove(key);
    }
}

/// Rescales an I/O receipt from the `actual` on-the-wire byte count to the
/// tile's `logical` stored size, preserving the local/remote split. Only
/// changes anything for phantom tiles (dense/sparse tiles encode at their
/// logical size, modulo a small header).
fn scale_receipt(r: IoReceipt, actual: u64, logical: u64) -> IoReceipt {
    if actual == 0 || actual == logical {
        return r;
    }
    let f = logical as f64 / actual as f64;
    IoReceipt {
        bytes: (r.bytes as f64 * f).round() as u64,
        local_bytes: (r.local_bytes as f64 * f).round() as u64,
        remote_bytes: (r.remote_bytes as f64 * f).round() as u64,
    }
}

/// Maps `(matrix, ti, tj)` to DFS files and handles tile (de)serialization.
///
/// Cheap to clone; shares state through `Arc`.
#[derive(Clone)]
pub struct TileStore {
    dfs: Dfs,
    state: Arc<RwLock<StoreState>>,
    cache: Arc<TileCache>,
    /// Per-run trace handle for tile-cache hit/miss counters; swapped in
    /// by the scheduler at run start (see `TileStore::set_trace`).
    trace: Arc<RwLock<cumulon_trace::Trace>>,
}

impl TileStore {
    /// Creates a tile store over a DFS.
    pub fn new(dfs: Dfs) -> Self {
        Self::with_cache_capacity(dfs, DEFAULT_CACHE_BYTES)
    }

    /// Creates a tile store with an explicit decoded-tile cache budget in
    /// bytes (`0` disables caching).
    pub fn with_cache_capacity(dfs: Dfs, cache_bytes: u64) -> Self {
        TileStore {
            dfs,
            state: Arc::new(RwLock::new(StoreState {
                matrices: BTreeMap::new(),
                materialize_bytes: false,
            })),
            cache: Arc::new(TileCache::new(cache_bytes)),
            trace: Arc::new(RwLock::new(cumulon_trace::Trace::disabled())),
        }
    }

    /// The underlying DFS.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Installs (or removes) a memory budget over the whole tile plane:
    /// the decoded-tile cache is resized to the budget, and the DFS handle
    /// plane gains the LRU spill plane ([`crate::spill`]) that demotes
    /// cold tiles to content-addressed blob segments on local disk. A
    /// budget of zero restores the unbounded seed behaviour (default
    /// cache size, no spilling). Shared through the store's `Arc`s, so
    /// every clone — including the ones task contexts hold — sees the
    /// budget. Spilling is observational: results, receipts, billing and
    /// placement are bitwise-identical at any budget; only wall-clock time
    /// and host memory footprint change.
    pub fn set_memory_budget(&self, config: &SpillConfig) -> Result<()> {
        if config.budget_bytes == 0 {
            self.cache.set_capacity(DEFAULT_CACHE_BYTES);
        } else {
            self.cache.set_capacity(config.budget_bytes);
        }
        self.dfs.set_spill_config(config)
    }

    /// Installs the trace handle that tile-cache hits and misses count
    /// into. The scheduler sets this at run start (and resets it to a
    /// disabled handle at run end); counters are advisory only — they
    /// never influence reads, receipts or placement, and speculative
    /// worker threads are suppressed (see `cumulon_trace::suppress`), so
    /// tracing cannot perturb results.
    pub fn set_trace(&self, trace: cumulon_trace::Trace) {
        *self.trace.write() = trace;
    }

    fn trace_cache(&self, hit: bool) {
        let trace = self.trace.read();
        if hit {
            trace.cache_hit();
        } else {
            trace.cache_miss();
        }
    }

    /// Forces tile writes onto the byte plane (encode on write, decode on
    /// read) instead of the zero-copy handle plane. Receipts, placement,
    /// and results are identical either way; this mode exists so tests can
    /// assert that equivalence and exercise the codec end-to-end.
    pub fn set_materialize_bytes(&self, on: bool) {
        self.state.write().materialize_bytes = on;
    }

    /// Whether writes currently materialize encoded bytes.
    pub fn materialize_bytes(&self) -> bool {
        self.state.read().materialize_bytes
    }

    fn tile_path(name: &str, ti: usize, tj: usize) -> String {
        format!("/matrix/{name}/{ti}_{tj}")
    }

    /// Registers a stored (non-generated) matrix.
    pub fn register(&self, name: &str, meta: MatrixMeta) -> Result<MatrixHandle> {
        self.register_inner(name, meta, None)
    }

    /// Registers a generated matrix: no tiles are written; readers invoke
    /// the generator on demand.
    pub fn register_generated(
        &self,
        name: &str,
        meta: MatrixMeta,
        generator: Generator,
    ) -> Result<MatrixHandle> {
        self.register_inner(name, meta, Some(generator))
    }

    fn register_inner(
        &self,
        name: &str,
        meta: MatrixMeta,
        generator: Option<Generator>,
    ) -> Result<MatrixHandle> {
        let mut st = self.state.write();
        if st.matrices.contains_key(name) {
            return Err(DfsError::AlreadyExists(format!("matrix {name}")));
        }
        let handle = MatrixHandle {
            name: name.to_string(),
            meta,
            generator,
        };
        st.matrices.insert(name.to_string(), handle.clone());
        Ok(handle)
    }

    /// Looks up a matrix by name.
    pub fn lookup(&self, name: &str) -> Result<MatrixHandle> {
        self.state
            .read()
            .matrices
            .get(name)
            .cloned()
            .ok_or_else(|| DfsError::MatrixNotFound(name.to_string()))
    }

    /// All registered matrix names.
    pub fn names(&self) -> Vec<String> {
        self.state.read().matrices.keys().cloned().collect()
    }

    /// Validates that a tile's dims match slot `(ti, tj)` of a registered
    /// matrix, returning the handle. Deferred-write task contexts run this
    /// at staging time so in-task error behavior matches an eager write.
    pub fn validate_tile(
        &self,
        name: &str,
        ti: usize,
        tj: usize,
        tile: &Tile,
    ) -> Result<MatrixHandle> {
        let handle = self.lookup(name)?;
        let want = handle.meta.tile_dims(ti, tj);
        if (tile.rows(), tile.cols()) != want {
            return Err(DfsError::Codec(format!(
                "tile ({ti},{tj}) of {name} has dims ({}, {}), expected {want:?}",
                tile.rows(),
                tile.cols()
            )));
        }
        Ok(handle)
    }

    /// Writes one tile of a registered matrix from `writer`'s node.
    pub fn write_tile(
        &self,
        name: &str,
        ti: usize,
        tj: usize,
        tile: &Tile,
        writer: Option<NodeId>,
    ) -> Result<IoReceipt> {
        self.write_tile_arc(name, ti, tj, Arc::new(tile.clone()), writer)
    }

    /// Writes one tile as a shared handle — the hot path. On the default
    /// handle plane the `Arc<Tile>` goes into the DFS as-is, charged at its
    /// exact wire length; under [`TileStore::set_materialize_bytes`] the
    /// tile is encoded and written as bytes instead. Both paths produce
    /// identical receipts and placement.
    pub fn write_tile_arc(
        &self,
        name: &str,
        ti: usize,
        tj: usize,
        tile: Arc<Tile>,
        writer: Option<NodeId>,
    ) -> Result<IoReceipt> {
        // Validate registration and dims.
        self.validate_tile(name, ti, tj, &tile)?;
        let stored = tile.stored_bytes();
        if self.materialize_bytes() {
            return self.write_tile_encoded(name, ti, tj, encode_tile(&tile), stored, writer);
        }
        let path = Self::tile_path(name, ti, tj);
        if self.dfs.exists(&path) {
            // Re-execution after task failure overwrites the old output.
            self.dfs.delete_file(&path)?;
        }
        let wire = encoded_len(&tile);
        let receipt =
            self.dfs
                .write_tile_file(&path, tile, wire, writer, self.dfs.config().replication)?;
        self.cache.invalidate(&path);
        Ok(scale_receipt(receipt, wire, stored))
    }

    /// Writes one pre-encoded tile. Deferred-write task contexts encode at
    /// staging time (so the compute cost lands on the worker) and commit
    /// through this entry point; dims must already have been validated via
    /// [`TileStore::validate_tile`].
    pub fn write_tile_encoded(
        &self,
        name: &str,
        ti: usize,
        tj: usize,
        encoded: Bytes,
        stored_bytes: u64,
        writer: Option<NodeId>,
    ) -> Result<IoReceipt> {
        let path = Self::tile_path(name, ti, tj);
        if self.dfs.exists(&path) {
            // Re-execution after task failure overwrites the old output.
            self.dfs.delete_file(&path)?;
        }
        let actual = encoded.len() as u64;
        let receipt = self.dfs.write_file(&path, encoded, writer)?;
        self.cache.invalidate(&path);
        // Phantom tiles are tiny on the wire but stand in for full-size
        // data: rescale the receipt to the tile's logical stored size so
        // simulated-scale runs charge realistic I/O.
        Ok(scale_receipt(receipt, actual, stored_bytes))
    }

    /// Reads one tile as a shared handle; generated matrices synthesize the
    /// tile locally (no I/O receipt — generation is CPU, charged by the
    /// caller via [`cumulon_matrix::ops`]).
    ///
    /// Decoded DFS-backed tiles are cached: a hit returns the shared handle
    /// without copying the payload, while the receipt (and the datanode
    /// read counters, and any [`DfsError::BlockLost`]) is replayed through
    /// [`Dfs::read_receipt`] so timing and fault behavior are bit-identical
    /// to a cold read.
    ///
    /// `phantom` requests metadata-only tiles for simulated-scale runs.
    pub fn read_tile(
        &self,
        name: &str,
        ti: usize,
        tj: usize,
        reader: Option<NodeId>,
        phantom: bool,
    ) -> Result<(Arc<Tile>, IoReceipt)> {
        let handle = self.lookup(name)?;
        if let Some(generator) = handle.generator {
            if phantom {
                let tile = generator.generate_phantom(&handle.meta, ti, tj);
                return Ok((Arc::new(tile), IoReceipt::default()));
            }
            let path = Self::tile_path(name, ti, tj);
            if let Some(tile) = self.cache.get(&path) {
                self.trace_cache(true);
                return Ok((tile, IoReceipt::default()));
            }
            self.trace_cache(false);
            let tile = Arc::new(generator.generate(&handle.meta, ti, tj));
            self.cache.insert(&path, tile.clone());
            return Ok((tile, IoReceipt::default()));
        }
        let path = Self::tile_path(name, ti, tj);
        if !self.dfs.exists(&path) {
            return Err(DfsError::TileNotFound {
                matrix: name.to_string(),
                tile: (ti, tj),
            });
        }
        if let Some(tile) = self.cache.get(&path) {
            self.trace_cache(true);
            let receipt = self.dfs.read_receipt(&path, reader)?;
            let receipt = scale_receipt(receipt, receipt.bytes, tile.stored_bytes());
            return Ok((tile, receipt));
        }
        let (payload, receipt) = self.dfs.read_payload(&path, reader)?;
        match payload {
            // Handle-plane file: the DFS itself holds the Arc — no decode,
            // no cache entry needed; identity is stable across reads. Not
            // counted as a cache miss: the read is cache-invisible.
            FilePayload::Tile(tile) => {
                let receipt = scale_receipt(receipt, receipt.bytes, tile.stored_bytes());
                Ok((tile, receipt))
            }
            FilePayload::Bytes(bytes) => {
                self.trace_cache(false);
                let actual = bytes.len() as u64;
                let tile = Arc::new(decode_tile(bytes)?);
                let receipt = scale_receipt(receipt, actual, tile.stored_bytes());
                self.cache.insert(&path, tile.clone());
                Ok((tile, receipt))
            }
        }
    }

    /// True when every tile of the matrix has been written (generated
    /// matrices are always complete).
    pub fn is_complete(&self, name: &str) -> Result<bool> {
        let handle = self.lookup(name)?;
        if handle.generator.is_some() {
            return Ok(true);
        }
        Ok(handle
            .meta
            .grid()
            .iter()
            .all(|(ti, tj)| self.dfs.exists(&Self::tile_path(name, ti, tj))))
    }

    /// Whether tile `(ti, tj)` of `name` is fully resident on `node`.
    pub fn tile_is_local(&self, name: &str, ti: usize, tj: usize, node: NodeId) -> bool {
        self.dfs.is_local(&Self::tile_path(name, ti, tj), node)
    }

    /// Whether a read of tile `(ti, tj)` of `name` would pay a
    /// synchronous decode-and-readback right now: the tile is demoted to
    /// the spill plane *and* no decoded copy survives in the tile cache
    /// (a cached `Arc` serves a spilled file without touching disk).
    /// Always `false` without a memory budget. The scheduler's residency
    /// oracle.
    pub fn tile_is_spilled(&self, name: &str, ti: usize, tj: usize) -> bool {
        let path = Self::tile_path(name, ti, tj);
        self.dfs.is_spilled(&path) && self.cache.get(&path).is_none()
    }

    /// Re-admits tile `(ti, tj)` of `name` from the spill plane ahead of
    /// demand, returning the wire bytes readmitted (`0` when a read would
    /// not have paid a readback anyway — tile not spilled, or still
    /// served by the decoded-tile cache). The cache itself is untouched:
    /// the canonical read path performs its own (cache-counter-visible)
    /// admission, so cache hit/miss accounting is identical with
    /// prefetching on or off.
    pub fn prefetch_tile(&self, name: &str, ti: usize, tj: usize) -> Result<u64> {
        let path = Self::tile_path(name, ti, tj);
        if self.cache.get(&path).is_some() {
            return Ok(0);
        }
        self.dfs.prefetch_path(&path)
    }

    /// The underlying DFS's resident-byte budget, if a spill plane is
    /// installed. Prefetchers use this to self-limit: staging more than a
    /// fraction of the budget ahead of demand evicts the very tiles it
    /// just readmitted (prefetch thrash).
    pub fn memory_budget(&self) -> Option<u64> {
        self.dfs.memory_budget()
    }

    /// Re-persists every tile of a matrix at the given replication factor
    /// (a *checkpoint*: iterative drivers call this every k iterations so
    /// the iterate survives node deaths that would defeat lineage
    /// recovery). Generated matrices need no checkpoint and return an
    /// empty receipt. Returns the combined I/O receipt of the rewrite.
    pub fn checkpoint_matrix(&self, name: &str, replication: usize) -> Result<IoReceipt> {
        let handle = self.lookup(name)?;
        if handle.generator.is_some() {
            return Ok(IoReceipt::default());
        }
        let mut total = IoReceipt::default();
        for (ti, tj) in handle.meta.grid().iter() {
            let path = Self::tile_path(name, ti, tj);
            let (bytes, read) = self.dfs.read_file(&path, None)?;
            self.dfs.delete_file(&path)?;
            let write = self.dfs.write_file_with(&path, bytes, None, replication)?;
            for r in [read, write] {
                total.bytes += r.bytes;
                total.local_bytes += r.local_bytes;
                total.remote_bytes += r.remote_bytes;
            }
        }
        Ok(total)
    }

    /// Whether a matrix is registered (without the error of [`lookup`]).
    ///
    /// [`lookup`]: TileStore::lookup
    pub fn contains(&self, name: &str) -> bool {
        self.state.read().matrices.contains_key(name)
    }

    /// Drops a matrix: namespace entry plus all tile files.
    pub fn drop_matrix(&self, name: &str) -> Result<()> {
        let handle = {
            let mut st = self.state.write();
            st.matrices
                .remove(name)
                .ok_or_else(|| DfsError::MatrixNotFound(name.to_string()))?
        };
        for (ti, tj) in handle.meta.grid().iter() {
            let path = Self::tile_path(name, ti, tj);
            self.cache.invalidate(&path);
            if handle.generator.is_none() && self.dfs.exists(&path) {
                self.dfs.delete_file(&path)?;
            }
        }
        Ok(())
    }

    /// Uploads a whole in-memory matrix (driver-side convenience used by
    /// tests, examples and workload setup).
    pub fn put_local(&self, name: &str, matrix: &LocalMatrix) -> Result<MatrixHandle> {
        let handle = self.register(name, matrix.meta())?;
        for ((ti, tj), tile) in matrix.iter_tiles() {
            self.write_tile(name, ti, tj, tile, None)?;
        }
        Ok(handle)
    }

    /// Downloads a whole matrix into memory.
    pub fn get_local(&self, name: &str) -> Result<LocalMatrix> {
        let handle = self.lookup(name)?;
        let tiles = handle
            .meta
            .grid()
            .iter()
            .map(|(ti, tj)| {
                self.read_tile(name, ti, tj, None, false)
                    .map(|(t, _)| Arc::unwrap_or_clone(t))
            })
            .collect::<Result<Vec<_>>>()?;
        LocalMatrix::from_tiles(handle.meta, tiles).map_err(DfsError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::DfsConfig;
    use cumulon_matrix::gen::Generator;

    fn store() -> TileStore {
        TileStore::new(Dfs::new(
            4,
            DfsConfig {
                replication: 2,
                block_size: 1 << 20,
                seed: 3,
                racks: 1,
            },
        ))
    }

    #[test]
    fn register_write_read_roundtrip() {
        let s = store();
        let meta = MatrixMeta::new(5, 5, 3);
        s.register("A", meta).unwrap();
        let m = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform {
                seed: 1,
                lo: 0.0,
                hi: 1.0,
            },
        );
        for ((ti, tj), tile) in m.iter_tiles() {
            s.write_tile("A", ti, tj, tile, Some(NodeId(0))).unwrap();
        }
        assert!(s.is_complete("A").unwrap());
        let back = s.get_local("A").unwrap();
        assert_eq!(back.to_dense_vec().unwrap(), m.to_dense_vec().unwrap());
    }

    #[test]
    fn put_get_local_convenience() {
        let s = store();
        let meta = MatrixMeta::new(7, 4, 3);
        let m = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 9 });
        s.put_local("G", &m).unwrap();
        let back = s.get_local("G").unwrap();
        assert_eq!(back.max_abs_diff(&m).unwrap(), 0.0);
    }

    #[test]
    fn generated_matrix_needs_no_io() {
        let s = store();
        let meta = MatrixMeta::new(6, 6, 4);
        s.register_generated(
            "R",
            meta,
            Generator::DenseUniform {
                seed: 5,
                lo: -1.0,
                hi: 1.0,
            },
        )
        .unwrap();
        assert!(s.is_complete("R").unwrap());
        let (tile, receipt) = s.read_tile("R", 0, 0, Some(NodeId(1)), false).unwrap();
        assert_eq!((tile.rows(), tile.cols()), (4, 4));
        assert_eq!(receipt, IoReceipt::default());
        // Deterministic across reads.
        let (tile2, _) = s.read_tile("R", 0, 0, Some(NodeId(2)), false).unwrap();
        assert_eq!(tile, tile2);
    }

    #[test]
    fn phantom_reads() {
        let s = store();
        let meta = MatrixMeta::new(100, 100, 50);
        s.register_generated(
            "P",
            meta,
            Generator::SparseUniform {
                seed: 2,
                density: 0.1,
            },
        )
        .unwrap();
        let (tile, _) = s.read_tile("P", 1, 1, None, true).unwrap();
        assert!(tile.is_phantom());
        assert_eq!(tile.nnz(), 250);
    }

    #[test]
    fn wrong_dims_rejected() {
        let s = store();
        s.register("A", MatrixMeta::new(4, 4, 2)).unwrap();
        let bad = Tile::zeros(3, 3);
        assert!(s.write_tile("A", 0, 0, &bad, None).is_err());
    }

    #[test]
    fn missing_matrix_and_tile() {
        let s = store();
        assert!(matches!(s.lookup("nope"), Err(DfsError::MatrixNotFound(_))));
        s.register("A", MatrixMeta::new(4, 4, 2)).unwrap();
        assert!(matches!(
            s.read_tile("A", 0, 0, None, false),
            Err(DfsError::TileNotFound { .. })
        ));
        assert!(!s.is_complete("A").unwrap());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let s = store();
        s.register("A", MatrixMeta::new(2, 2, 2)).unwrap();
        assert!(s.register("A", MatrixMeta::new(2, 2, 2)).is_err());
    }

    #[test]
    fn overwrite_on_reexecution() {
        let s = store();
        s.register("A", MatrixMeta::new(2, 2, 2)).unwrap();
        s.write_tile("A", 0, 0, &Tile::zeros(2, 2), None).unwrap();
        let mut t = Tile::zeros(2, 2);
        t.add_assign(&Tile::dense(cumulon_matrix::DenseTile::identity(2)))
            .unwrap();
        s.write_tile("A", 0, 0, &t, None).unwrap();
        let (back, _) = s.read_tile("A", 0, 0, None, false).unwrap();
        assert_eq!(back.sum(), 2.0);
    }

    #[test]
    fn drop_matrix_frees_storage() {
        let s = store();
        let meta = MatrixMeta::new(4, 4, 2);
        let m = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 1 });
        s.put_local("A", &m).unwrap();
        assert!(s.dfs().storage_stats().1 > 0);
        s.drop_matrix("A").unwrap();
        assert_eq!(s.dfs().storage_stats().1, 0);
        assert!(s.lookup("A").is_err());
        // Name reusable after drop.
        s.register("A", meta).unwrap();
    }

    #[test]
    fn locality_hint_via_store() {
        let s = store();
        s.register("A", MatrixMeta::new(2, 2, 2)).unwrap();
        s.write_tile("A", 0, 0, &Tile::zeros(2, 2), Some(NodeId(3)))
            .unwrap();
        assert!(s.tile_is_local("A", 0, 0, NodeId(3)));
    }

    #[test]
    fn checkpoint_raises_replication() {
        let s = TileStore::new(Dfs::new(
            4,
            DfsConfig {
                replication: 1,
                block_size: 1 << 20,
                seed: 7,
                racks: 1,
            },
        ));
        let meta = MatrixMeta::new(8, 8, 4);
        let m = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 4 });
        s.put_local("W", &m).unwrap();
        let receipt = s.checkpoint_matrix("W", 3).unwrap();
        assert!(receipt.bytes > 0);
        // At replication 3, losing two nodes cannot lose the checkpoint.
        s.dfs().kill_node(NodeId(0)).unwrap();
        s.dfs().kill_node(NodeId(1)).unwrap();
        let back = s.get_local("W").unwrap();
        assert_eq!(back.max_abs_diff(&m).unwrap(), 0.0);
        // Generated matrices need no checkpoint.
        s.register_generated("G", meta, Generator::DenseGaussian { seed: 5 })
            .unwrap();
        assert_eq!(s.checkpoint_matrix("G", 3).unwrap(), IoReceipt::default());
        assert!(s.contains("W") && !s.contains("nope"));
    }

    #[test]
    fn names_sorted() {
        let s = store();
        s.register("B", MatrixMeta::new(1, 1, 1)).unwrap();
        s.register("A", MatrixMeta::new(1, 1, 1)).unwrap();
        assert_eq!(s.names(), vec!["A", "B"]);
    }
}

#[cfg(test)]
mod data_plane_tests {
    use super::*;
    use crate::dfs::DfsConfig;
    use cumulon_matrix::gen::Generator;

    fn store_with(seed: u64) -> TileStore {
        TileStore::new(Dfs::new(
            4,
            DfsConfig {
                replication: 2,
                block_size: 1 << 20,
                seed,
                racks: 1,
            },
        ))
    }

    /// The handle plane and the byte plane must be indistinguishable to
    /// every observable: write receipts, read receipts, read-back values,
    /// placement, and storage stats.
    #[test]
    fn materialize_bytes_mode_is_observationally_identical() {
        let meta = MatrixMeta::new(20, 20, 8);
        let m = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 42 });
        let handle_store = store_with(77);
        let byte_store = store_with(77);
        byte_store.set_materialize_bytes(true);
        assert!(byte_store.materialize_bytes() && !handle_store.materialize_bytes());
        for s in [&handle_store, &byte_store] {
            s.register("A", meta).unwrap();
        }
        for ((ti, tj), tile) in m.iter_tiles() {
            let rh = handle_store
                .write_tile("A", ti, tj, tile, Some(NodeId(1)))
                .unwrap();
            let rb = byte_store
                .write_tile("A", ti, tj, tile, Some(NodeId(1)))
                .unwrap();
            assert_eq!(rh, rb, "write receipts diverge at ({ti},{tj})");
        }
        assert_eq!(
            handle_store.dfs().storage_stats(),
            byte_store.dfs().storage_stats()
        );
        assert_eq!(
            handle_store.dfs().per_node_bytes(),
            byte_store.dfs().per_node_bytes()
        );
        for ((ti, tj), _) in m.iter_tiles() {
            let (th, rh) = handle_store
                .read_tile("A", ti, tj, Some(NodeId(0)), false)
                .unwrap();
            let (tb, rb) = byte_store
                .read_tile("A", ti, tj, Some(NodeId(0)), false)
                .unwrap();
            assert_eq!(rh, rb, "read receipts diverge at ({ti},{tj})");
            assert_eq!(th, tb, "tiles diverge at ({ti},{tj})");
        }
        assert_eq!(
            handle_store.get_local("A").unwrap().to_dense_vec().unwrap(),
            byte_store.get_local("A").unwrap().to_dense_vec().unwrap()
        );
    }

    #[test]
    fn handle_reads_share_identity_without_cache() {
        // Handle-plane reads return the same Arc on every read even with a
        // zero-capacity cache — the DFS holds the handle, not the cache.
        let s = TileStore::with_cache_capacity(
            Dfs::new(
                2,
                DfsConfig {
                    replication: 2,
                    block_size: 1 << 20,
                    seed: 9,
                    racks: 1,
                },
            ),
            0,
        );
        s.register("A", MatrixMeta::new(4, 4, 4)).unwrap();
        s.write_tile("A", 0, 0, &Tile::zeros(4, 4), Some(NodeId(0)))
            .unwrap();
        let (a, _) = s.read_tile("A", 0, 0, Some(NodeId(1)), false).unwrap();
        let (b, _) = s.read_tile("A", 0, 0, Some(NodeId(0)), false).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn checkpoint_moves_handle_file_to_byte_plane() {
        // checkpoint_matrix reads files as bytes (the serialization
        // boundary) and rewrites them durably — afterwards the file is a
        // real byte-plane file that decodes to the same tile.
        let s = store_with(3);
        let meta = MatrixMeta::new(6, 6, 6);
        s.register("W", meta).unwrap();
        let tile = Tile::dense(cumulon_matrix::gen::dense_uniform_tile(
            1, 0, 0, 6, 6, -1.0, 1.0,
        ));
        s.write_tile("W", 0, 0, &tile, Some(NodeId(0))).unwrap();
        let (before, _) = s.read_tile("W", 0, 0, None, false).unwrap();
        s.checkpoint_matrix("W", 3).unwrap();
        match s.dfs().read_payload("/matrix/W/0_0", None).unwrap().0 {
            FilePayload::Bytes(b) => assert_eq!(decode_tile(b).unwrap(), *before),
            FilePayload::Tile(_) => panic!("checkpointed file still on the handle plane"),
        }
        let (after, _) = s.read_tile("W", 0, 0, None, false).unwrap();
        assert_eq!(*after, *before);
    }
}

#[cfg(test)]
mod spill_plane_tests {
    use super::*;
    use crate::dfs::DfsConfig;
    use cumulon_matrix::gen::Generator;

    fn store_with(seed: u64) -> TileStore {
        TileStore::new(Dfs::new(
            4,
            DfsConfig {
                replication: 2,
                block_size: 1 << 20,
                seed,
                racks: 1,
            },
        ))
    }

    fn fill(s: &TileStore, name: &str, meta: MatrixMeta, gen_seed: u64) -> LocalMatrix {
        let m = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: gen_seed });
        s.register(name, meta).unwrap();
        for ((ti, tj), tile) in m.iter_tiles() {
            s.write_tile(name, ti, tj, tile, Some(NodeId(ti as u32 % 4)))
                .unwrap();
        }
        m
    }

    /// The third plane: a budget ~10x smaller than the working set must be
    /// indistinguishable from the unbounded handle plane on every
    /// observable — receipts, values, placement, storage stats — while
    /// actually spilling (nonzero evictions), and storage accounting stays
    /// conserved throughout.
    #[test]
    fn tight_budget_is_observationally_identical_to_unbounded() {
        let meta = MatrixMeta::new(40, 40, 8); // 25 tiles ≈ 13 KB wire
        let unbounded = store_with(123);
        let tight = store_with(123);
        tight
            .set_memory_budget(&SpillConfig::budgeted(1200))
            .unwrap();
        for s in [&unbounded, &tight] {
            s.register("A", meta).unwrap();
        }
        let m = LocalMatrix::generate(meta, &Generator::DenseGaussian { seed: 5 });
        for ((ti, tj), tile) in m.iter_tiles() {
            let ru = unbounded
                .write_tile("A", ti, tj, tile, Some(NodeId(1)))
                .unwrap();
            let rt = tight
                .write_tile("A", ti, tj, tile, Some(NodeId(1)))
                .unwrap();
            assert_eq!(ru, rt, "write receipts diverge at ({ti},{tj})");
            assert!(tight.dfs().spill_conserved());
            assert!(tight.dfs().storage_accounting().is_conserved());
        }
        let spilled = tight.dfs().spill_stats().unwrap();
        assert!(spilled.evictions > 0, "budget this tight must spill");
        assert!(spilled.spilled_bytes_total > 0);
        assert!(
            spilled.resident_bytes <= 1200,
            "budget exceeded: {} resident",
            spilled.resident_bytes
        );
        assert_eq!(
            unbounded.dfs().storage_stats(),
            tight.dfs().storage_stats(),
            "residency leaked into storage stats"
        );
        assert_eq!(
            unbounded.dfs().per_node_bytes(),
            tight.dfs().per_node_bytes()
        );
        // Reads re-admit transparently: identical receipts and values, in
        // an access order that forces eviction/readback churn.
        for pass in 0..2 {
            for ((ti, tj), _) in m.iter_tiles() {
                let reader = Some(NodeId((ti + tj + pass) as u32 % 4));
                let (tu, ru) = unbounded.read_tile("A", ti, tj, reader, false).unwrap();
                let (tt, rt) = tight.read_tile("A", ti, tj, reader, false).unwrap();
                assert_eq!(ru, rt, "read receipts diverge at ({ti},{tj})");
                assert_eq!(tu, tt, "tiles diverge at ({ti},{tj})");
            }
        }
        let st = tight.dfs().spill_stats().unwrap();
        assert!(st.readmissions > 0, "reads under pressure must re-admit");
        assert!(tight.dfs().spill_conserved());
        assert!(tight.dfs().storage_accounting().is_conserved());
    }

    /// Re-admission yields a *new* Arc whose contents are bitwise equal —
    /// the documented residency exception to pointer identity. While a
    /// tile stays resident, identity is preserved as before.
    #[test]
    fn readmitted_tiles_are_equal_but_not_pointer_identical() {
        let s = TileStore::with_cache_capacity(
            Dfs::new(
                2,
                DfsConfig {
                    replication: 2,
                    block_size: 1 << 20,
                    seed: 9,
                    racks: 1,
                },
            ),
            0, // no decoded-tile cache: reads always hit the DFS
        );
        let meta = MatrixMeta::new(8, 4, 4);
        let m = fill(&s, "A", meta, 11);
        let (before, _) = s.read_tile("A", 0, 0, None, false).unwrap();
        // Budget of one tile: writing/keeping both tiles is impossible, so
        // reading tile 1 then tile 0 forces tile 0 through disk.
        let one_tile = encoded_len(&before);
        s.set_memory_budget(&SpillConfig::budgeted(one_tile + 1))
            .unwrap();
        let (_, _) = s.read_tile("A", 1, 0, None, false).unwrap();
        assert_eq!(
            s.dfs().spill_stats().unwrap().spilled_files,
            1,
            "exactly one of the two tiles fits"
        );
        let (after, _) = s.read_tile("A", 0, 0, None, false).unwrap();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "a disk round-trip mints a fresh Arc"
        );
        assert_eq!(*before, *after, "…with bitwise-identical contents");
        // Resident hits keep sharing the new Arc.
        let (again, _) = s.read_tile("A", 0, 0, None, false).unwrap();
        assert!(Arc::ptr_eq(&after, &again));
        assert_eq!(
            m.to_dense_vec().unwrap(),
            s.get_local("A").unwrap().to_dense_vec().unwrap()
        );
    }

    /// LRU discipline: reads refresh recency, so the file demoted is the
    /// least-recently-*used*, not the least-recently-written.
    #[test]
    fn eviction_follows_recency_not_write_order() {
        // Zero-capacity decoded-tile cache: every read goes to the DFS,
        // so recency is driven purely by the accesses below.
        let s = TileStore::with_cache_capacity(
            Dfs::new(
                4,
                DfsConfig {
                    replication: 2,
                    block_size: 1 << 20,
                    seed: 21,
                    racks: 1,
                },
            ),
            0,
        );
        let meta = MatrixMeta::new(12, 4, 4); // 3 tiles, one block each
        fill(&s, "A", meta, 3);
        let one = encoded_len(&s.read_tile("A", 0, 0, None, false).unwrap().0);
        // Room for two tiles: installing the budget demotes exactly one.
        s.set_memory_budget(&SpillConfig::budgeted(2 * one))
            .unwrap();
        let base = s.dfs().spill_stats().unwrap();
        assert_eq!(base.spilled_files, 1, "adoption evicted the coldest");
        // Adoption order is namespace order, so tile 0 is on disk and
        // tiles 1 and 2 are resident (2 hotter). Touch tile 1, then
        // re-admit tile 0: the eviction this forces must pick tile 2 —
        // the least-recently-used — even though tile 1 was written first.
        s.read_tile("A", 1, 0, None, false).unwrap();
        s.read_tile("A", 0, 0, None, false).unwrap();
        let st = s.dfs().spill_stats().unwrap();
        assert_eq!(st.spilled_files, 1, "budget still holds");
        assert_eq!(st.readmissions, base.readmissions + 1);
        // Tile 1 stayed resident: reading it again re-admits nothing…
        s.read_tile("A", 1, 0, None, false).unwrap();
        let st = s.dfs().spill_stats().unwrap();
        assert_eq!(
            st.readmissions,
            base.readmissions + 1,
            "the recently-touched tile was evicted"
        );
        // …while tile 2 — the cold one — is the file on disk.
        s.read_tile("A", 2, 0, None, false).unwrap();
        assert_eq!(
            s.dfs().spill_stats().unwrap().readmissions,
            base.readmissions + 2
        );
        assert!(s.dfs().spill_conserved());
    }

    /// drop_matrix on a spilled matrix releases every blob reference, and
    /// an explicit compaction sweep reclaims the segment bytes.
    #[test]
    fn drop_matrix_releases_blob_bytes() {
        let s = store_with(31);
        let meta = MatrixMeta::new(40, 40, 8);
        fill(&s, "A", meta, 17);
        s.set_memory_budget(&SpillConfig::budgeted(1)).unwrap();
        let st = s.dfs().spill_stats().unwrap();
        assert_eq!(st.spilled_files, 25, "budget of 1 byte spills everything");
        assert_eq!(st.resident_bytes, 0);
        s.drop_matrix("A").unwrap();
        s.dfs().compact_spill().unwrap();
        let st = s.dfs().spill_stats().unwrap();
        assert_eq!(st.spilled_files, 0);
        assert_eq!(st.blob.live_entries, 0);
        assert_eq!(st.blob.dead_bytes, 0, "compaction reclaimed the garbage");
        assert!(s.dfs().storage_accounting().is_conserved());
    }

    /// Removing the budget re-admits everything; no data is stranded in
    /// the segment files the plane deletes on drop.
    #[test]
    fn removing_the_budget_readmits_all_files() {
        let s = store_with(41);
        let meta = MatrixMeta::new(16, 16, 8);
        let m = fill(&s, "A", meta, 23);
        s.set_memory_budget(&SpillConfig::budgeted(100)).unwrap();
        assert!(s.dfs().spill_stats().unwrap().spilled_files > 0);
        s.set_memory_budget(&SpillConfig::default()).unwrap();
        assert!(s.dfs().spill_stats().is_none(), "plane removed");
        assert_eq!(
            m.to_dense_vec().unwrap(),
            s.get_local("A").unwrap().to_dense_vec().unwrap()
        );
    }

    /// The uncompressed spill path is the cross-checked reference: same
    /// values, same receipts, honest ratio of 1.
    #[test]
    fn uncompressed_path_is_reference_equivalent() {
        let meta = MatrixMeta::new(16, 16, 8);
        let compressed = store_with(55);
        let raw = store_with(55);
        compressed
            .set_memory_budget(&SpillConfig {
                budget_bytes: 600,
                dir: None,
                compress: true,
            })
            .unwrap();
        raw.set_memory_budget(&SpillConfig {
            budget_bytes: 600,
            dir: None,
            compress: false,
        })
        .unwrap();
        let mc = fill(&compressed, "A", meta, 29);
        let mr = fill(&raw, "A", meta, 29);
        assert_eq!(mc.to_dense_vec().unwrap(), mr.to_dense_vec().unwrap());
        for ((ti, tj), _) in mc.iter_tiles() {
            let (tc, rc) = compressed.read_tile("A", ti, tj, None, false).unwrap();
            let (tr, rr) = raw.read_tile("A", ti, tj, None, false).unwrap();
            assert_eq!(rc, rr, "codec choice leaked into receipts");
            assert_eq!(tc, tr, "codec choice changed values");
        }
        let sr = raw.dfs().spill_stats().unwrap();
        assert!(sr.spilled_bytes_total > 0);
        assert_eq!(
            sr.blob.compression_ratio(),
            1.0,
            "raw path stores wire bytes verbatim"
        );
        // Gaussian tiles are honest work for the codec; zero tiles would
        // compress, but either way values and receipts match the raw path.
        let sc = compressed.dfs().spill_stats().unwrap();
        assert!(sc.blob.compression_ratio() >= 1.0);
    }

    /// Phantom tiles are metadata-only and must never reach the blob
    /// store, no matter how tight the budget.
    #[test]
    fn phantom_tiles_never_spill() {
        let s = store_with(61);
        s.set_memory_budget(&SpillConfig::budgeted(1)).unwrap();
        let meta = MatrixMeta::new(1000, 1000, 500);
        s.register("P", meta).unwrap();
        for ti in 0..2 {
            for tj in 0..2 {
                s.write_tile("P", ti, tj, &Tile::phantom_dense(500, 500), Some(NodeId(0)))
                    .unwrap();
            }
        }
        let st = s.dfs().spill_stats().unwrap();
        assert_eq!(st.evictions, 0);
        assert_eq!(st.spilled_files, 0);
        let (t, _) = s.read_tile("P", 1, 1, None, true).unwrap();
        assert!(t.is_phantom());
    }
}

#[cfg(test)]
mod phantom_receipt_tests {
    use super::*;
    use crate::dfs::DfsConfig;

    #[test]
    fn phantom_write_and_read_charge_logical_bytes() {
        let s = TileStore::new(Dfs::new(
            2,
            DfsConfig {
                replication: 2,
                block_size: 1 << 20,
                seed: 1,
                racks: 1,
            },
        ));
        let meta = MatrixMeta::new(1000, 1000, 1000);
        s.register("P", meta).unwrap();
        let tile = Tile::phantom_dense(1000, 1000);
        let w = s.write_tile("P", 0, 0, &tile, Some(NodeId(0))).unwrap();
        let logical = tile.stored_bytes();
        assert_eq!(w.bytes, logical, "write receipt must be logical size");
        assert_eq!(
            w.local_bytes + w.remote_bytes,
            2 * logical,
            "both replicas charged"
        );
        let (_, r) = s.read_tile("P", 0, 0, Some(NodeId(0)), false).unwrap();
        assert_eq!(r.bytes, logical);
        assert_eq!(r.local_bytes, logical, "writer-local replica read locally");
    }

    #[test]
    fn dense_receipts_unchanged_in_spirit() {
        let s = TileStore::new(Dfs::new(
            1,
            DfsConfig {
                replication: 1,
                block_size: 1 << 20,
                seed: 1,
                racks: 1,
            },
        ));
        let meta = MatrixMeta::new(10, 10, 10);
        s.register("D", meta).unwrap();
        let tile = Tile::zeros(10, 10);
        let w = s.write_tile("D", 0, 0, &tile, Some(NodeId(0))).unwrap();
        assert_eq!(w.bytes, tile.stored_bytes());
    }
}
