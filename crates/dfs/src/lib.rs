//! # cumulon-dfs
//!
//! A simulated HDFS-like distributed file system, plus the tile store
//! Cumulon layers on it.
//!
//! The real Cumulon runs on HDFS and communicates between jobs exclusively
//! through files of matrix tiles. This crate reproduces the pieces of that
//! stack the system and its optimizer actually interact with:
//!
//! * a [`namenode::NameNode`] holding the file → block → replica-location
//!   mapping and the live-datanode registry;
//! * [`datanode`] storage for block payloads, with capacity accounting;
//! * the [`Dfs`] façade offering create/read/delete with a replica
//!   placement policy (writer-local first replica, random remotes after,
//!   like HDFS) and **I/O receipts** — every operation reports how many
//!   bytes moved and whether the read was node-local, so the cluster
//!   simulator can charge time to the right resources;
//! * a [`TileStore`] that names matrices, maps tile coordinates to DFS
//!   files, and (de)serializes tiles via `cumulon-matrix`.
//!
//! Nothing here keeps wall-clock time; the DFS reports *what happened* and
//! the discrete-event simulator in `cumulon-cluster` decides *how long it
//! took*.

pub mod blob;
pub mod datanode;
pub mod dfs;
pub mod error;
pub mod namenode;
pub mod spill;
pub mod tilestore;

pub use blob::{BlobKey, BlobStats, BlobStore};
pub use dfs::{Dfs, DfsConfig, IoReceipt, NodeId, StorageAccounting};
pub use error::{DfsError, Result};
pub use spill::{SpillConfig, SpillPlane, SpillStats};
pub use tilestore::{MatrixHandle, TileStore};
