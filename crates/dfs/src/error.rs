//! Error type for the simulated DFS.

use std::fmt;

/// Errors raised by DFS and tile-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The requested file does not exist.
    FileNotFound(String),
    /// A file with this path already exists.
    AlreadyExists(String),
    /// A block payload is missing from every replica (data loss).
    BlockLost {
        /// Path of the owning file.
        path: String,
        /// Index of the lost block within the file.
        block: usize,
    },
    /// The referenced datanode is not registered / is dead.
    NodeUnavailable(u32),
    /// Not enough live datanodes to satisfy the replication factor.
    InsufficientNodes {
        /// Replicas requested.
        wanted: usize,
        /// Live nodes available.
        alive: usize,
    },
    /// The requested matrix is not registered in the tile store.
    MatrixNotFound(String),
    /// The requested tile has not been written.
    TileNotFound {
        /// Matrix name.
        matrix: String,
        /// Tile coordinate.
        tile: (usize, usize),
    },
    /// A tile payload failed to decode.
    Codec(String),
    /// The out-of-core spill plane (blob segments, spill directory I/O)
    /// failed — a host-disk problem, not a simulated fault.
    Spill(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            DfsError::BlockLost { path, block } => {
                write!(f, "all replicas lost for block {block} of {path}")
            }
            DfsError::NodeUnavailable(n) => write!(f, "datanode {n} unavailable"),
            DfsError::InsufficientNodes { wanted, alive } => {
                write!(f, "need {wanted} replicas but only {alive} live datanodes")
            }
            DfsError::MatrixNotFound(m) => write!(f, "matrix not registered: {m}"),
            DfsError::TileNotFound { matrix, tile } => {
                write!(f, "tile ({}, {}) of {matrix} not found", tile.0, tile.1)
            }
            DfsError::Codec(msg) => write!(f, "tile codec error: {msg}"),
            DfsError::Spill(msg) => write!(f, "spill plane error: {msg}"),
        }
    }
}

impl std::error::Error for DfsError {}

impl From<cumulon_matrix::MatrixError> for DfsError {
    fn from(e: cumulon_matrix::MatrixError) -> Self {
        DfsError::Codec(e.to_string())
    }
}

/// Result alias for DFS operations.
pub type Result<T> = std::result::Result<T, DfsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            DfsError::FileNotFound("/a".into()).to_string(),
            "file not found: /a"
        );
        assert!(DfsError::InsufficientNodes {
            wanted: 3,
            alive: 1
        }
        .to_string()
        .contains("need 3 replicas"));
        assert!(DfsError::TileNotFound {
            matrix: "V".into(),
            tile: (1, 2)
        }
        .to_string()
        .contains("tile (1, 2)"));
    }

    #[test]
    fn from_matrix_error() {
        let e: DfsError = cumulon_matrix::MatrixError::Corrupt("x".into()).into();
        assert!(matches!(e, DfsError::Codec(_)));
    }
}
