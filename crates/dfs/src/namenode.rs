//! Namenode metadata: the file namespace and the datanode registry.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::datanode::BlockId;
use crate::dfs::NodeId;
use crate::error::{DfsError, Result};

/// Metadata of one block: id, size and replica locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Block identifier.
    pub id: BlockId,
    /// Payload size in bytes. Always the *wire* (encoded) length, even for
    /// handle-plane blocks that store an `Arc<Tile>` instead of bytes — so
    /// placement, stats, and receipts are plane-independent.
    pub len: u64,
    /// Datanodes currently holding a replica.
    pub replicas: Vec<NodeId>,
}

/// Metadata of one file: an ordered list of blocks.
#[derive(Debug, Clone, Default)]
pub struct FileMeta {
    /// Blocks in file order.
    pub blocks: Vec<BlockMeta>,
}

impl FileMeta {
    /// Total file length in bytes.
    pub fn len(&self) -> u64 {
        self.blocks.iter().map(|b| b.len).sum()
    }

    /// True when the file holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The namenode: file namespace, block allocation, and node liveness.
///
/// Uses a `BTreeMap` namespace so listings are deterministic — important
/// for reproducible simulations.
#[derive(Debug, Default)]
pub struct NameNode {
    files: BTreeMap<String, FileMeta>,
    live_nodes: HashSet<NodeId>,
    next_block: u64,
    /// Reverse index: block → owning path + index, for failure handling.
    block_index: HashMap<BlockId, (String, usize)>,
}

impl NameNode {
    /// Creates a namenode with `nodes` live datanodes (ids `0..nodes`).
    pub fn new(nodes: u32) -> Self {
        NameNode {
            files: BTreeMap::new(),
            live_nodes: (0..nodes).map(NodeId).collect(),
            next_block: 0,
            block_index: HashMap::new(),
        }
    }

    /// Registers an additional datanode (cluster grow).
    pub fn register_node(&mut self, node: NodeId) {
        self.live_nodes.insert(node);
    }

    /// Marks a datanode dead, removing it from all replica lists. Returns
    /// the blocks that dropped below one replica (lost) and those that
    /// still have replicas but fewer than before (under-replicated).
    pub fn decommission_node(&mut self, node: NodeId) -> DecommissionReport {
        self.live_nodes.remove(&node);
        let mut lost = Vec::new();
        let mut under_replicated = Vec::new();
        for (path, meta) in &mut self.files {
            for (idx, block) in meta.blocks.iter_mut().enumerate() {
                let before = block.replicas.len();
                block.replicas.retain(|&n| n != node);
                if block.replicas.len() < before {
                    if block.replicas.is_empty() {
                        lost.push((path.clone(), idx));
                    } else {
                        under_replicated.push(block.id);
                    }
                }
            }
        }
        DecommissionReport {
            lost,
            under_replicated,
        }
    }

    /// Live datanode ids, sorted (deterministic placement).
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.live_nodes.iter().copied().collect();
        v.sort();
        v
    }

    /// True when the node is live.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.live_nodes.contains(&node)
    }

    /// Allocates a fresh block id.
    pub fn allocate_block(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    /// Creates a file entry; fails if the path exists.
    pub fn create_file(&mut self, path: &str) -> Result<()> {
        if self.files.contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        self.files.insert(path.to_string(), FileMeta::default());
        Ok(())
    }

    /// Appends a block record to an existing file.
    pub fn append_block(&mut self, path: &str, block: BlockMeta) -> Result<()> {
        let meta = self
            .files
            .get_mut(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        self.block_index
            .insert(block.id, (path.to_string(), meta.blocks.len()));
        meta.blocks.push(block);
        Ok(())
    }

    /// Looks up file metadata.
    pub fn stat(&self, path: &str) -> Result<&FileMeta> {
        self.files
            .get(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// True if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Removes a file, returning its block metadata for replica cleanup.
    pub fn delete_file(&mut self, path: &str) -> Result<Vec<BlockMeta>> {
        let meta = self
            .files
            .remove(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        for b in &meta.blocks {
            self.block_index.remove(&b.id);
        }
        Ok(meta.blocks)
    }

    /// Lists paths under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Records an extra replica for a block (re-replication).
    pub fn add_replica(&mut self, id: BlockId, node: NodeId) -> Result<()> {
        let (path, idx) = self
            .block_index
            .get(&id)
            .cloned()
            .ok_or_else(|| DfsError::FileNotFound(format!("block {id:?}")))?;
        let meta = self
            .files
            .get_mut(&path)
            .expect("index points at live file");
        let block = &mut meta.blocks[idx];
        if !block.replicas.contains(&node) {
            block.replicas.push(node);
        }
        Ok(())
    }

    /// Total bytes across all files (logical, not × replication).
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(FileMeta::len).sum()
    }

    /// Expected *physical* bytes: Σ over all blocks of `len × replica
    /// count`. This is the namenode's claim of what the datanodes
    /// collectively store; byte conservation says the datanodes' own
    /// counters must agree exactly, on both payload planes.
    pub fn replicated_bytes(&self) -> u64 {
        self.files
            .values()
            .flat_map(|f| &f.blocks)
            .map(|b| b.len * b.replicas.len() as u64)
            .sum()
    }

    /// Total replica count across all blocks (the number of block copies
    /// the datanodes should collectively hold).
    pub fn replica_count(&self) -> usize {
        self.files
            .values()
            .flat_map(|f| &f.blocks)
            .map(|b| b.replicas.len())
            .sum()
    }

    /// Expected stored bytes per datanode, from block metadata alone.
    pub fn per_node_replica_bytes(&self) -> BTreeMap<NodeId, u64> {
        let mut out = BTreeMap::new();
        for block in self.files.values().flat_map(|f| &f.blocks) {
            for &node in &block.replicas {
                *out.entry(node).or_insert(0) += block.len;
            }
        }
        out
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// Outcome of a node decommission.
#[derive(Debug, Default)]
pub struct DecommissionReport {
    /// `(path, block index)` pairs whose last replica was on the dead node.
    pub lost: Vec<(String, usize)>,
    /// Blocks that survive but are now under-replicated.
    pub under_replicated: Vec<BlockId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(nn: &mut NameNode, replicas: Vec<NodeId>) -> BlockMeta {
        BlockMeta {
            id: nn.allocate_block(),
            len: 100,
            replicas,
        }
    }

    #[test]
    fn create_and_stat() {
        let mut nn = NameNode::new(3);
        nn.create_file("/m/a").unwrap();
        let b = block(&mut nn, vec![NodeId(0), NodeId(1)]);
        nn.append_block("/m/a", b).unwrap();
        assert_eq!(nn.stat("/m/a").unwrap().len(), 100);
        assert!(nn.exists("/m/a"));
        assert_eq!(nn.total_bytes(), 100);
        assert_eq!(nn.file_count(), 1);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut nn = NameNode::new(1);
        nn.create_file("/x").unwrap();
        assert!(matches!(
            nn.create_file("/x"),
            Err(DfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        let mut nn = NameNode::new(1);
        assert!(nn.stat("/nope").is_err());
        assert!(nn.delete_file("/nope").is_err());
        let b = BlockMeta {
            id: BlockId(0),
            len: 1,
            replicas: vec![],
        };
        assert!(nn.append_block("/nope", b).is_err());
    }

    #[test]
    fn list_by_prefix() {
        let mut nn = NameNode::new(1);
        for p in ["/m/a/0_0", "/m/a/0_1", "/m/b/0_0", "/z"] {
            nn.create_file(p).unwrap();
        }
        assert_eq!(nn.list("/m/a/"), vec!["/m/a/0_0", "/m/a/0_1"]);
        assert_eq!(nn.list("/m/").len(), 3);
        assert!(nn.list("/q").is_empty());
    }

    #[test]
    fn decommission_tracks_loss_and_under_replication() {
        let mut nn = NameNode::new(3);
        nn.create_file("/f").unwrap();
        let b1 = block(&mut nn, vec![NodeId(0), NodeId(1)]);
        let b1_id = b1.id;
        let b2 = block(&mut nn, vec![NodeId(0)]);
        nn.append_block("/f", b1).unwrap();
        nn.append_block("/f", b2).unwrap();

        let report = nn.decommission_node(NodeId(0));
        assert_eq!(report.lost, vec![("/f".to_string(), 1)]);
        assert_eq!(report.under_replicated, vec![b1_id]);
        assert!(!nn.is_live(NodeId(0)));
        assert_eq!(nn.live_nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn add_replica_after_rereplication() {
        let mut nn = NameNode::new(3);
        nn.create_file("/f").unwrap();
        let b = block(&mut nn, vec![NodeId(0)]);
        let id = b.id;
        nn.append_block("/f", b).unwrap();
        nn.add_replica(id, NodeId(2)).unwrap();
        nn.add_replica(id, NodeId(2)).unwrap(); // idempotent
        assert_eq!(
            nn.stat("/f").unwrap().blocks[0].replicas,
            vec![NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn delete_returns_blocks() {
        let mut nn = NameNode::new(2);
        nn.create_file("/f").unwrap();
        let b = block(&mut nn, vec![NodeId(1)]);
        nn.append_block("/f", b).unwrap();
        let blocks = nn.delete_file("/f").unwrap();
        assert_eq!(blocks.len(), 1);
        assert!(!nn.exists("/f"));
    }

    #[test]
    fn register_node_grows_cluster() {
        let mut nn = NameNode::new(1);
        nn.register_node(NodeId(5));
        assert!(nn.is_live(NodeId(5)));
        assert_eq!(nn.live_nodes().len(), 2);
    }
}
