//! The invariant suite: a small workload set swept through the
//! configuration lattice, with every global identity machine-checked.
//!
//! ## The lattice
//!
//! Three workloads (a multiply chain, a Gram matrix, and an iterative
//! power method) each run through the *observational* configuration axes —
//! axes that may change how a run is executed or measured but must never
//! change what it computes:
//!
//! * worker threads: 1 vs. N (deterministic parallel executor);
//! * payload plane: tile handles vs. materialized wire bytes;
//! * memory budget: unbounded vs. a budget tight enough that the
//!   out-of-core plane must continuously spill tiles to the blob store;
//! * tracing: off vs. on (spans are observational by design);
//! * billing policy: hour-quantized vs. per-second (pricing only);
//! * faults: a seeded [`FailurePlan`] plus lineage recovery vs. a clean
//!   run;
//! * service concurrency: the direct (in-process, serial) pipeline vs.
//!   N concurrent tenants submitting the same program through the
//!   `cumulon serve` admission path and its shared speculation pool.
//!
//! ## The invariants
//!
//! * `result-identity` — every lattice point reproduces the baseline
//!   bitwise: identical [`RunReport::fingerprint`] and identical output
//!   bits.
//! * `reference-conformance` — the distributed result matches a naive
//!   untiled reference to near machine precision (summation order
//!   differs, so this one is a tight tolerance, not bitwise).
//! * `byte-conservation` — after every run, namenode metadata and
//!   datanode byte counters agree exactly, block for block, node for
//!   node (checked on both payload planes, including after node kills).
//! * `billing-identity` — every report's `billed_hours`/`cost_dollars`
//!   equal the billing functions applied to its makespan, bitwise, and
//!   `cluster_cost == nodes × price × billed_hours` for every policy.
//! * `trace-accounting` — the critical-path phase breakdown plus idle
//!   time accounts for the full makespan.
//! * `recovery-idempotence` — a run with injected task faults and a node
//!   kill, recovered via lineage, reproduces the fault-free output bits;
//!   the check also demands the faults actually fired (a clean fault
//!   counter would make the invariant vacuous).
//! * `revocation-survivability` — spot revocations swept along their own
//!   axis (single node with no warning / bulk half-fleet with a warning
//!   window, at 1 and N worker threads) must leave the output bits equal
//!   to the fault-free baseline, and the fault counters must show the
//!   revocation actually claimed nodes.
//! * `estimate-envelope` — the closed-form wave model stays within a
//!   sigma-scaled envelope of the Monte-Carlo list-scheduling estimate,
//!   and matches it exactly at `sigma = 0`.
//! * `search-grid-coverage` — deployment search candidate generation
//!   covers exactly the instance × slots × nodes cross product, with
//!   `max_nodes` always included even under non-dividing strides.
//! * `spill-transparency` — a run under a memory budget tight enough to
//!   force continuous eviction reproduces the unbounded baseline's
//!   fingerprint and output bits (so billing, receipts and results are
//!   untouched by the out-of-core plane), the spill ledger conserves
//!   bytes ([`cumulon_dfs::Dfs::spill_conserved`]), and the budget
//!   demonstrably evicted tiles (a zero eviction counter would make the
//!   check vacuous).
//! * `spill-schedule-transparency` — spill-aware wave resolution plus
//!   frontier prefetch ([`SchedulerConfig::with_prefetch`]) at the same
//!   tight budget reproduces the spill-aware-off arm's fingerprint and
//!   output bits exactly; the single-threaded arm also demands that
//!   prefetch demonstrably readmitted tiles (zero prefetches would make
//!   the check vacuous).
//! * `serve-isolation` — N concurrent tenants racing the same program
//!   through the multi-tenant service (admission, quotas, the bounded
//!   priority queue, the process-wide shared speculation pool) each get
//!   a [`RunReport::fingerprint`] bitwise-identical to the serial,
//!   private-pool direct pipeline, at scheduler threads 1 and N —
//!   multi-tenancy is observational, never computational.
//! * `kernel-conformance` — the optimized tile kernels match their
//!   reference paths: the packed SIMD GEMM is epsilon-bounded against
//!   the naive reference (its summation association and FMA contraction
//!   differ), the optimized sparse kernels (`spmm_acc`, `gemm_ds_acc`)
//!   are bitwise-identical to theirs (per-element operation order is
//!   preserved), and intra-kernel threading is bitwise-identical at any
//!   thread count.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use cumulon_cluster::billing::{billed_hours, cluster_cost, BillingPolicy};
use cumulon_cluster::instances::catalog;
use cumulon_cluster::{
    Cluster, ClusterSpec, ExecMode, FailurePlan, Revocation, RunReport, SchedulerConfig, Trace,
    TraceLog,
};
use cumulon_core::calibrate::{CostModel, OpCoefficients};
use cumulon_core::error::CoreError;
use cumulon_core::estimate::{job_time_mc, job_time_s};
use cumulon_core::expr::{InputDesc, ProgramBuilder};
use cumulon_core::recovery::RecoveryConfig;
use cumulon_core::{DeploymentSearch, Optimizer, Program, Result, SearchSpace};
use cumulon_dfs::{SpillConfig, SpillStats, StorageAccounting};
use cumulon_matrix::gen::Generator;
use cumulon_matrix::{reference, MatrixMeta};
use cumulon_workloads::chains::MulChain;
use cumulon_workloads::power::PowerIteration;
use cumulon_workloads::Workload;

use crate::report::CheckReport;

/// Checker configuration.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Run the reduced lattice (fewer points, fewer Monte-Carlo trials) —
    /// the CI tier-1 budget. The invariants themselves are unchanged.
    pub quick: bool,
}

/// Runs the full invariant suite and returns the structured report.
///
/// A violated invariant is *recorded*, not returned as an error; `Err` is
/// reserved for the checker itself failing to run (which should never
/// happen and is itself reported as a failed `run-completes` outcome
/// where a specific configuration is at fault).
pub fn run_checks(opts: &CheckOptions) -> Result<CheckReport> {
    let mut report = CheckReport {
        quick: opts.quick,
        ..Default::default()
    };
    check_billing_function(&mut report);
    check_estimate_envelope(opts, &mut report);
    check_search_grid(&mut report);
    check_kernel_conformance(&mut report);
    check_serve_isolation(opts, &mut report);
    let mut prefetched_total = 0u64;
    for case in suite() {
        prefetched_total += check_case(&case, opts, &mut report);
    }
    // Non-vacuity for spill-aware scheduling is a *suite* property, not a
    // per-case one: workloads whose eviction churn is entirely intra-wave
    // (output writes evicting the very inputs the same wave still reads)
    // legitimately present an empty frontier at every wave boundary, so a
    // wave-boundary prefetch correctly stages nothing there. What must
    // never happen is the machinery staying idle across the whole suite.
    report.record(
        "spill-schedule-transparency",
        "suite aggregate".to_string(),
        prefetched_total > 0,
        format!(
            "{prefetched_total} tile(s) prefetched across all cases \
             (zero suite-wide would mean the frontier never fired)"
        ),
    );
    Ok(report)
}

/// The cluster every lattice point provisions: homogeneous m1.large × 4
/// with 2 slots per node (big enough for real waves, small enough that
/// the whole lattice runs in CI).
fn spec() -> ClusterSpec {
    ClusterSpec::named("m1.large", 4, 2).expect("m1.large is in the catalog")
}

/// The idealized fitted model used by every execution (same construction
/// as the bench harness).
fn optimizer() -> Optimizer {
    Optimizer::new(model())
}

fn model() -> CostModel {
    let mut m = CostModel::default();
    for i in catalog() {
        m.insert(i.name, OpCoefficients::idealized(i, 2.0, 0.85));
    }
    m
}

/// The N of the `threads ∈ {1, N}` axis: enough to exercise the parallel
/// executor even on small CI hosts, bounded so the lattice stays cheap.
fn threads_n() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4))
}

// ---------------------------------------------------------------------------
// Workload cases
// ---------------------------------------------------------------------------

/// One workload in the suite, with the final output to compare and a
/// naive-reference computation over the dense input snapshots.
struct Case {
    name: &'static str,
    workload: Box<dyn Workload>,
    /// Iterations to drive through the Workload trait.
    iters: usize,
    /// Name of the output matrix whose bits define the run's result.
    output: &'static str,
    /// Input matrices snapshotted (dense) for the reference computation.
    ref_inputs: &'static [&'static str],
    /// Naive untiled reference over those snapshots.
    reference: fn(&BTreeMap<String, Vec<f64>>) -> Vec<f64>,
}

fn suite() -> Vec<Case> {
    vec![
        Case {
            name: "chain",
            workload: Box::new(MulChain::square(48, 3, 16, 11)),
            iters: 1,
            output: "CHAIN",
            ref_inputs: &["M0", "M1", "M2"],
            reference: |m| {
                let p = reference::matmul(&m["M0"], &m["M1"], 48, 48, 48);
                reference::matmul(&p, &m["M2"], 48, 48, 48)
            },
        },
        Case {
            name: "gram",
            workload: Box::new(Gram {
                meta: MatrixMeta::new(96, 48, 16),
                seed: 23,
            }),
            iters: 1,
            output: "G",
            ref_inputs: &["A"],
            reference: |m| {
                let at = reference::transpose(&m["A"], 96, 48);
                reference::matmul(&at, &m["A"], 48, 96, 48)
            },
        },
        Case {
            name: "power",
            workload: Box::new(PowerIteration {
                n: 60,
                tile_size: 15,
                density: 0.3,
                seed: 21,
            }),
            iters: 2,
            output: "x_2",
            ref_inputs: &["P", "x_0"],
            reference: |m| {
                let y1 = reference::matmul(&m["P"], &m["x_0"], 60, 60, 1);
                reference::matmul(&m["P"], &y1, 60, 60, 1)
            },
        },
    ]
}

/// Gram-matrix workload `G = AᵀA` (the workloads crate has no standalone
/// Gram case; regression uses it fused into the normal equations).
struct Gram {
    meta: MatrixMeta,
    seed: u64,
}

impl Workload for Gram {
    fn name(&self) -> &'static str {
        "gram"
    }

    fn inputs(&self, _iter: usize) -> BTreeMap<String, InputDesc> {
        let mut m = BTreeMap::new();
        m.insert("A".into(), InputDesc::dense(self.meta).generated());
        m
    }

    fn setup(&self, store: &cumulon_dfs::TileStore) -> Result<()> {
        store
            .register_generated("A", self.meta, Generator::DenseGaussian { seed: self.seed })
            .map_err(CoreError::from)?;
        Ok(())
    }

    fn program(&self, _iter: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.input("A");
        let at = b.transpose(a);
        let g = b.mul(at, a);
        b.output("G", g);
        b.build()
    }
}

// ---------------------------------------------------------------------------
// Lattice execution
// ---------------------------------------------------------------------------

/// One point on the observational configuration lattice.
#[derive(Debug, Clone, Copy)]
struct LatticePoint {
    threads: usize,
    materialize_bytes: bool,
    trace: bool,
    billing: BillingPolicy,
    /// Resident-tile budget in bytes; 0 leaves the out-of-core plane off.
    memory_budget: u64,
}

const BASELINE: LatticePoint = LatticePoint {
    threads: 1,
    materialize_bytes: false,
    trace: false,
    billing: BillingPolicy::HourlyCeil,
    memory_budget: 0,
};

impl LatticePoint {
    fn label(&self, case: &str) -> String {
        format!(
            "{case}/t{}/{}/{}{}{}",
            self.threads,
            if self.materialize_bytes {
                "bytes"
            } else {
                "tiles"
            },
            if self.trace { "trace" } else { "notrace" },
            if self.billing == BillingPolicy::PerSecond {
                "/sec"
            } else {
                ""
            },
            if self.memory_budget > 0 { "/spill" } else { "" },
        )
    }
}

/// Everything one lattice run produces that an invariant looks at.
struct RunArtifacts {
    /// Concatenated per-iteration [`RunReport::fingerprint`]s.
    fingerprint: String,
    /// Bit pattern of the final output matrix, element by element.
    output_bits: Vec<u64>,
    /// The final output, dense row-major (for reference conformance).
    output_dense: Vec<f64>,
    /// Dense snapshots of the reference inputs.
    ref_inputs: BTreeMap<String, Vec<f64>>,
    /// Per-iteration reports.
    reports: Vec<RunReport>,
    /// Per-iteration trace logs (empty when tracing is off).
    traces: Vec<TraceLog>,
    /// DFS ledger snapshot after the last iteration.
    accounting: StorageAccounting,
    /// Spill-plane counters after the last iteration (budgeted runs only).
    spill: Option<SpillStats>,
    /// [`cumulon_dfs::Dfs::spill_conserved`] after the last iteration.
    spill_conserved: bool,
}

/// Executes one case at one lattice point on a fresh cluster.
fn run_case(case: &Case, point: LatticePoint, failures: &FailurePlan) -> Result<RunArtifacts> {
    run_case_prefetched(case, point, failures, 0)
}

/// [`run_case`] with spill-aware wave resolution and the given prefetch
/// depth when `prefetch > 0` (the `spill-schedule-transparency` arm).
fn run_case_prefetched(
    case: &Case,
    point: LatticePoint,
    failures: &FailurePlan,
    prefetch: usize,
) -> Result<RunArtifacts> {
    let mut cluster = Cluster::provision(spec()).map_err(CoreError::from)?;
    cluster.set_billing(point.billing);
    cluster
        .store()
        .set_materialize_bytes(point.materialize_bytes);
    if point.memory_budget > 0 {
        cluster
            .store()
            .set_memory_budget(&SpillConfig::budgeted(point.memory_budget))
            .map_err(CoreError::from)?;
    }
    case.workload.setup(cluster.store())?;
    let opt = optimizer();
    let mut config = SchedulerConfig::default().with_threads(point.threads);
    if prefetch > 0 {
        config = config.with_prefetch(prefetch);
    }
    let mut fingerprint = String::new();
    let mut reports = Vec::new();
    let mut traces = Vec::new();
    for iter in 0..case.iters {
        // Faults are injected into iteration 0 only, so iterative cases
        // also prove that recovery leaves later iterations undisturbed.
        let plan = if iter == 0 {
            failures.clone()
        } else {
            FailurePlan::default()
        };
        // A fresh handle per iteration keeps each iteration's timeline
        // self-contained (simulated time restarts at 0 every run).
        let trace = if point.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        let report = opt.execute_on_traced(
            &cluster,
            &case.workload.program(iter),
            &case.workload.inputs(iter),
            &format!("chk{iter}"),
            ExecMode::Real,
            config,
            &plan,
            RecoveryConfig::default(),
            &trace,
        )?;
        fingerprint.push_str(&report.fingerprint());
        reports.push(report);
        if let Some(log) = trace.snapshot() {
            traces.push(log);
        }
    }
    let dense = |name: &str| -> Result<Vec<f64>> {
        cluster
            .store()
            .get_local(name)
            .map_err(CoreError::from)?
            .to_dense_vec()
            .map_err(|e| CoreError::Exec(e.to_string()))
    };
    let output_dense = dense(case.output)?;
    let mut ref_inputs = BTreeMap::new();
    for &name in case.ref_inputs {
        ref_inputs.insert(name.to_string(), dense(name)?);
    }
    Ok(RunArtifacts {
        fingerprint,
        output_bits: output_dense.iter().map(|v| v.to_bits()).collect(),
        output_dense,
        ref_inputs,
        reports,
        traces,
        accounting: cluster.store().dfs().storage_accounting(),
        spill: cluster.store().dfs().spill_stats(),
        spill_conserved: cluster.store().dfs().spill_conserved(),
    })
}

// ---------------------------------------------------------------------------
// Per-case checks
// ---------------------------------------------------------------------------

/// Returns the number of tiles the spill-schedule-transparency arms
/// prefetched, so the caller can assert suite-wide non-vacuity.
fn check_case(case: &Case, opts: &CheckOptions, report: &mut CheckReport) -> u64 {
    let no_faults = FailurePlan::default();
    let base_label = BASELINE.label(case.name);
    let base = match run_case(case, BASELINE, &no_faults) {
        Ok(a) => a,
        Err(e) => {
            report.record(
                "run-completes",
                base_label,
                false,
                format!("baseline run failed: {e}"),
            );
            return 0;
        }
    };
    per_run_invariants(case, BASELINE, &base, report);
    check_reference_conformance(case, &base, report);

    let n = threads_n();
    let mut variants: Vec<LatticePoint> = Vec::new();
    let combos: &[(usize, bool, bool)] = if opts.quick {
        // One point per untested axis: threads+trace together, then the
        // byte plane alone.
        &[(0, false, true), (1, true, false)]
    } else {
        &[
            (1, false, true),
            (1, true, false),
            (1, true, true),
            (0, false, false),
            (0, false, true),
            (0, true, false),
            (0, true, true),
        ]
    };
    for &(t, mat, tr) in combos {
        variants.push(LatticePoint {
            threads: if t == 0 { n } else { t },
            materialize_bytes: mat,
            trace: tr,
            ..BASELINE
        });
    }
    for point in variants {
        let label = point.label(case.name);
        match run_case(case, point, &no_faults) {
            Ok(art) => {
                per_run_invariants(case, point, &art, report);
                let identical =
                    art.fingerprint == base.fingerprint && art.output_bits == base.output_bits;
                let detail = if identical {
                    format!(
                        "fingerprint and {} output elements bitwise equal to {base_label}",
                        art.output_bits.len()
                    )
                } else {
                    diverged_detail(&base_label, &base, &art)
                };
                report.record("result-identity", label, identical, detail);
            }
            Err(e) => report.record("run-completes", label, false, format!("run failed: {e}")),
        }
    }

    check_per_second_billing(case, &base, &base_label, report);
    check_recovery_idempotence(case, &base, &base_label, report);
    check_revocation_survivability(case, opts, &base, &base_label, report);
    check_spill_transparency(case, opts, &base, &base_label, report);
    check_spill_schedule_transparency(case, opts, report)
}

/// Invariants every run must satisfy regardless of configuration:
/// DFS byte conservation, billing identity, trace-phase accounting.
fn per_run_invariants(
    case: &Case,
    point: LatticePoint,
    art: &RunArtifacts,
    report: &mut CheckReport,
) {
    let label = point.label(case.name);
    let a = &art.accounting;
    report.record(
        "byte-conservation",
        label.clone(),
        a.is_conserved(),
        format!(
            "namenode {} replica bytes ({} replicas) vs datanodes {} bytes \
             ({} blocks); per-node match: {}",
            a.namenode_replica_bytes,
            a.namenode_replica_count,
            a.datanode_bytes,
            a.datanode_block_count,
            a.per_node.iter().all(|&(want, got)| want == got),
        ),
    );

    let s = spec();
    let mut billing_ok = true;
    let mut billing_detail = String::new();
    for (i, r) in art.reports.iter().enumerate() {
        let hours = billed_hours(point.billing, r.makespan_s);
        let cost = cluster_cost(
            point.billing,
            s.nodes,
            s.instance.price_per_hour,
            r.makespan_s,
        );
        let product = s.nodes as f64 * s.instance.price_per_hour * hours;
        let ok = r.billed_hours.to_bits() == hours.to_bits()
            && r.cost_dollars.to_bits() == cost.to_bits()
            && cost.to_bits() == product.to_bits();
        if !ok {
            billing_ok = false;
            let _ = write!(
                billing_detail,
                "iter {i}: report ({:.6}h, ${:.6}) vs billing fns ({hours:.6}h, ${cost:.6}, \
                 n×p×h ${product:.6}); ",
                r.billed_hours, r.cost_dollars,
            );
        }
    }
    if billing_ok {
        billing_detail = format!(
            "{} iteration(s): billed_hours, cluster_cost and nodes×price×hours bitwise equal",
            art.reports.len()
        );
    }
    report.record(
        "billing-identity",
        label.clone(),
        billing_ok,
        billing_detail,
    );

    if point.trace {
        let mut ok = true;
        let mut detail = String::new();
        for (i, log) in art.traces.iter().enumerate() {
            let cp = log.critical_path();
            let gap = (cp.accounted_s() - cp.makespan_s).abs();
            let tol = 1e-9 * cp.makespan_s.abs().max(1.0);
            if gap > tol {
                ok = false;
                let _ = write!(
                    detail,
                    "iter {i}: phases+idle {:.9}s vs makespan {:.9}s (gap {gap:.3e}); ",
                    cp.accounted_s(),
                    cp.makespan_s,
                );
            }
        }
        if ok {
            detail = format!(
                "{} iteration(s): phase totals + idle account for the full makespan",
                art.traces.len()
            );
        }
        report.record("trace-accounting", label, ok, detail);
    }
}

/// The distributed result must match the naive untiled reference.
fn check_reference_conformance(case: &Case, base: &RunArtifacts, report: &mut CheckReport) {
    let expect = (case.reference)(&base.ref_inputs);
    let label = format!("{}/vs-reference", case.name);
    if expect.len() != base.output_dense.len() {
        report.record(
            "reference-conformance",
            label,
            false,
            format!(
                "shape mismatch: reference {} elements, cluster {}",
                expect.len(),
                base.output_dense.len()
            ),
        );
        return;
    }
    let err2: f64 = expect
        .iter()
        .zip(&base.output_dense)
        .map(|(e, g)| (e - g) * (e - g))
        .sum();
    let norm2: f64 = expect.iter().map(|e| e * e).sum();
    let rel = (err2 / norm2.max(1e-300)).sqrt();
    report.record(
        "reference-conformance",
        label,
        rel < 1e-9,
        format!(
            "relative Frobenius error {rel:.3e} over {} elements (tolerance 1e-9)",
            expect.len()
        ),
    );
}

/// Billing policy is pricing-only: a per-second run must reproduce the
/// baseline schedule and outputs exactly, with only the bill differing.
fn check_per_second_billing(
    case: &Case,
    base: &RunArtifacts,
    base_label: &str,
    report: &mut CheckReport,
) {
    let point = LatticePoint {
        billing: BillingPolicy::PerSecond,
        ..BASELINE
    };
    let label = point.label(case.name);
    match run_case(case, point, &FailurePlan::default()) {
        Ok(art) => {
            per_run_invariants(case, point, &art, report);
            // The fingerprint embeds the bill, which legitimately changes;
            // the schedule (makespans) and results must not.
            let same_makespans = art.reports.len() == base.reports.len()
                && art
                    .reports
                    .iter()
                    .zip(&base.reports)
                    .all(|(a, b)| a.makespan_s.to_bits() == b.makespan_s.to_bits());
            let ok = same_makespans && art.output_bits == base.output_bits;
            report.record(
                "result-identity",
                label,
                ok,
                if ok {
                    format!(
                        "makespans and output bits equal to {base_label}; only the bill differs"
                    )
                } else {
                    diverged_detail(base_label, base, &art)
                },
            );
        }
        Err(e) => report.record("run-completes", label, false, format!("run failed: {e}")),
    }
}

/// Kill a node mid-run and flip task-failure coins; lineage recovery must
/// reproduce the fault-free bits, and the faults must demonstrably fire.
fn check_recovery_idempotence(
    case: &Case,
    base: &RunArtifacts,
    base_label: &str,
    report: &mut CheckReport,
) {
    let label = format!("{}/t1/tiles/notrace/faults", case.name);
    let kill_at = 0.4 * base.reports[0].makespan_s;
    let failures = FailurePlan {
        task_failure_prob: 0.15,
        node_failures: vec![(kill_at, 3)],
        seed: 9,
        ..Default::default()
    };
    match run_case(case, BASELINE, &failures) {
        Ok(art) => {
            per_run_invariants(case, BASELINE, &art, report);
            let fired = art.reports.iter().any(|r| !r.faults.is_clean());
            let identical = art.output_bits == base.output_bits;
            let retries: u64 = art.reports.iter().map(|r| r.faults.retries).sum();
            report.record(
                "recovery-idempotence",
                label,
                fired && identical,
                format!(
                    "node 3 killed at {kill_at:.3}s + task faults (p=0.15): \
                     faults fired: {fired} ({retries} retries); output bits equal \
                     to {base_label}: {identical}"
                ),
            );
        }
        Err(e) => report.record(
            "recovery-idempotence",
            label,
            false,
            format!("faulted run did not recover: {e}"),
        ),
    }
}

/// The spot-revocation axis: a single node reclaimed with no warning, and
/// a correlated bulk revocation of half the fleet with a warning window
/// the drain can use — each at 1 and N worker threads. Every point must
/// reproduce the fault-free output bits, and the revocation must
/// demonstrably claim nodes (a zero counter would make the check vacuous).
fn check_revocation_survivability(
    case: &Case,
    opts: &CheckOptions,
    base: &RunArtifacts,
    base_label: &str,
    report: &mut CheckReport,
) {
    let at_s = 0.4 * base.reports[0].makespan_s;
    let scenarios: [(&str, Vec<u32>, f64); 2] = [
        // One node gone with zero lead time: pure lineage recovery.
        ("single", vec![3], 0.0),
        // Half the fleet in one correlated event, with a warning window.
        ("bulk", vec![2, 3], at_s / 2.0),
    ];
    let n = threads_n();
    // Quick covers each scenario once (single inline, bulk parallel);
    // the full lattice crosses scenarios with both thread counts.
    let points: Vec<(usize, usize)> = if opts.quick {
        vec![(0, 1), (1, n)]
    } else {
        vec![(0, 1), (0, n), (1, 1), (1, n)]
    };
    for (s, threads) in points {
        let (tag, ref nodes, lead) = scenarios[s];
        let label = format!("{}/t{threads}/revoke-{tag}", case.name);
        let point = LatticePoint {
            threads,
            ..BASELINE
        };
        let failures = FailurePlan {
            revocations: vec![Revocation {
                at_s,
                nodes: nodes.clone(),
                warning_lead_s: lead,
            }],
            ..Default::default()
        };
        match run_case(case, point, &failures) {
            Ok(art) => {
                per_run_invariants(case, point, &art, report);
                let revocations: u64 = art.reports.iter().map(|r| r.faults.revocations).sum();
                let revoked: u64 = art.reports.iter().map(|r| r.faults.revoked_nodes).sum();
                let fired = revocations >= 1 && revoked == nodes.len() as u64;
                let identical = art.output_bits == base.output_bits;
                report.record(
                    "revocation-survivability",
                    label,
                    fired && identical,
                    format!(
                        "nodes {nodes:?} revoked at {at_s:.3}s (lead {lead:.3}s): \
                         {revocations} revocation(s) claimed {revoked} node(s); \
                         output bits equal to {base_label}: {identical}"
                    ),
                );
            }
            Err(e) => report.record(
                "revocation-survivability",
                label,
                false,
                format!("revoked run did not survive: {e}"),
            ),
        }
    }
}

/// The out-of-core plane must be observationally invisible: under a
/// budget tight enough to hold only a tile or two, eviction and
/// re-admission churn constantly, yet the fingerprint (receipts, bill,
/// makespan) and output bits must equal the unbounded baseline, and the
/// spill ledger must conserve bytes block-for-block.
fn check_spill_transparency(
    case: &Case,
    opts: &CheckOptions,
    base: &RunArtifacts,
    base_label: &str,
    report: &mut CheckReport,
) {
    // Tight enough that even the power iteration's 15×1 vector tiles
    // (~160 wire bytes each) overflow it; the 2 KiB dense tiles of the
    // chain and Gram cases evict on every single write.
    const TIGHT: u64 = 512;
    let n = threads_n();
    let threads: &[usize] = if opts.quick { &[0] } else { &[1, 0] };
    for &t in threads {
        let point = LatticePoint {
            threads: if t == 0 { n } else { t },
            memory_budget: TIGHT,
            ..BASELINE
        };
        let label = point.label(case.name);
        match run_case(case, point, &FailurePlan::default()) {
            Ok(art) => {
                per_run_invariants(case, point, &art, report);
                let identical =
                    art.fingerprint == base.fingerprint && art.output_bits == base.output_bits;
                let evictions = art.spill.map_or(0, |s| s.evictions);
                let readmissions = art.spill.map_or(0, |s| s.readmissions);
                let ok = identical && art.spill_conserved && evictions > 0;
                report.record(
                    "spill-transparency",
                    label,
                    ok,
                    if ok {
                        format!(
                            "{TIGHT} B budget: {evictions} eviction(s), {readmissions} \
                             re-admission(s); ledger conserved; fingerprint and output \
                             bits equal to {base_label}"
                        )
                    } else {
                        format!(
                            "{TIGHT} B budget: identical to {base_label}: {identical}; \
                             ledger conserved: {}; evictions: {evictions} \
                             (zero would be vacuous){}",
                            art.spill_conserved,
                            if identical {
                                String::new()
                            } else {
                                format!("; {}", diverged_detail(base_label, base, &art))
                            },
                        )
                    },
                );
            }
            Err(e) => report.record(
                "spill-transparency",
                label,
                false,
                format!("budgeted run failed: {e}"),
            ),
        }
    }
}

/// Spill-*aware* scheduling must be pure policy on top of the spill
/// plane: at the same tight budget, a run with spill-aware wave
/// resolution and frontier prefetch on must reproduce the off arm's
/// fingerprint and output bits exactly — same assignments, receipts,
/// placement draws and simulated time — while the spill ledger still
/// conserves and eviction churn still happens. Only the host-side
/// resolve order and the readback traffic shape may differ.
///
/// Returns the total tiles prefetched across arms; whether the frontier
/// ever fired is asserted suite-wide by the caller, because a case whose
/// churn is entirely intra-wave presents an empty frontier at every wave
/// boundary and correctly prefetches nothing.
fn check_spill_schedule_transparency(
    case: &Case,
    opts: &CheckOptions,
    report: &mut CheckReport,
) -> u64 {
    const TIGHT: u64 = 512;
    const DEPTH: usize = 4;
    let n = threads_n();
    let mut prefetched_total = 0u64;
    let threads: &[usize] = if opts.quick { &[1] } else { &[1, 0] };
    for &t in threads {
        let point = LatticePoint {
            threads: if t == 0 { n } else { t },
            memory_budget: TIGHT,
            ..BASELINE
        };
        let label = point.label(case.name);
        let off = match run_case(case, point, &FailurePlan::default()) {
            Ok(a) => a,
            Err(e) => {
                report.record(
                    "spill-schedule-transparency",
                    label,
                    false,
                    format!("budgeted off-arm run failed: {e}"),
                );
                continue;
            }
        };
        match run_case_prefetched(case, point, &FailurePlan::default(), DEPTH) {
            Ok(art) => {
                per_run_invariants(case, point, &art, report);
                let identical =
                    art.fingerprint == off.fingerprint && art.output_bits == off.output_bits;
                let evictions = art.spill.map_or(0, |s| s.evictions);
                let prefetched = art.spill.map_or(0, |s| s.prefetched_files);
                let avoided = art.spill.map_or(0, |s| s.readback_bytes_avoided);
                prefetched_total += prefetched;
                let ok = identical && art.spill_conserved && evictions > 0;
                report.record(
                    "spill-schedule-transparency",
                    label,
                    ok,
                    if ok {
                        format!(
                            "{TIGHT} B budget, depth {DEPTH}: {prefetched} prefetch(es), \
                             {avoided} B readback avoided, {evictions} eviction(s); \
                             fingerprint and output bits equal to the spill-aware-off arm"
                        )
                    } else {
                        format!(
                            "{TIGHT} B budget, depth {DEPTH}: identical to off arm: \
                             {identical}; ledger conserved: {}; evictions: {evictions}; \
                             prefetches: {prefetched}{}",
                            art.spill_conserved,
                            if identical {
                                String::new()
                            } else {
                                format!("; {}", diverged_detail("the off arm", &off, &art))
                            },
                        )
                    },
                );
            }
            Err(e) => report.record(
                "spill-schedule-transparency",
                label,
                false,
                format!("spill-aware run failed: {e}"),
            ),
        }
    }
    prefetched_total
}

/// First line of divergence between two runs' fingerprints, for evidence.
fn diverged_detail(base_label: &str, base: &RunArtifacts, art: &RunArtifacts) -> String {
    if let Some((i, (b, a))) = base
        .fingerprint
        .lines()
        .zip(art.fingerprint.lines())
        .enumerate()
        .find(|(_, (b, a))| b != a)
    {
        return format!("fingerprint diverges from {base_label} at line {i}: `{b}` vs `{a}`");
    }
    if base.fingerprint.lines().count() != art.fingerprint.lines().count() {
        return format!(
            "fingerprint length differs from {base_label}: {} vs {} lines",
            base.fingerprint.lines().count(),
            art.fingerprint.lines().count()
        );
    }
    match base
        .output_bits
        .iter()
        .zip(&art.output_bits)
        .position(|(b, a)| b != a)
    {
        Some(i) => format!(
            "output bits diverge from {base_label} at element {i}: \
             {:016x} vs {:016x}",
            base.output_bits[i], art.output_bits[i]
        ),
        None => format!(
            "output length differs from {base_label}: {} vs {} elements",
            base.output_bits.len(),
            art.output_bits.len()
        ),
    }
}

// ---------------------------------------------------------------------------
// Global (model-level) checks
// ---------------------------------------------------------------------------

/// `cluster_cost` must equal `nodes × price × billed_hours` bitwise for
/// every policy across a makespan grid straddling the billing boundaries.
fn check_billing_function(report: &mut CheckReport) {
    for policy in [BillingPolicy::HourlyCeil, BillingPolicy::PerSecond] {
        let mut ok = true;
        let mut detail = String::new();
        for &makespan in &[0.0, 1.0, 1799.5, 3599.99, 3600.0, 3600.01, 5400.0, 86_400.0] {
            for &(nodes, price) in &[(1u32, 0.34), (7, 0.68), (64, 1.16)] {
                let cost = cluster_cost(policy, nodes, price, makespan);
                let product = nodes as f64 * price * billed_hours(policy, makespan);
                if cost.to_bits() != product.to_bits() {
                    ok = false;
                    let _ = write!(
                        detail,
                        "{nodes}×${price}/h at {makespan}s: cluster_cost ${cost} != \
                         nodes×price×billed_hours ${product}; ",
                    );
                }
            }
        }
        if ok {
            detail = "cluster_cost == nodes × price × billed_hours bitwise on a 24-point grid"
                .to_string();
        }
        report.record(
            "billing-identity",
            format!("function/{policy:?}"),
            ok,
            detail,
        );
    }
}

/// The closed-form wave estimate must stay inside a sigma-scaled envelope
/// of the Monte-Carlo list-scheduling estimate (and match exactly when
/// `sigma = 0`, where both models are deterministic).
fn check_estimate_envelope(opts: &CheckOptions, report: &mut CheckReport) {
    let trials = if opts.quick { 150 } else { 600 };
    for &sigma in &[0.0f64, 0.1, 0.3] {
        let mut ok = true;
        let mut worst_rel = 0.0f64;
        let mut worst = String::new();
        let mut detail = String::new();
        for &tasks in &[1usize, 4, 7, 32, 96] {
            for &slots in &[1u32, 8, 24] {
                let wave = job_time_s(10.0, tasks, slots, sigma);
                let mc = job_time_mc(10.0, tasks, slots, sigma, 0x5eed, trials);
                let scale = mc.abs().max(wave.abs()).max(1e-12);
                let rel = (wave - mc).abs() / scale;
                let tol_rel = if sigma == 0.0 {
                    1e-12
                } else {
                    0.05 + 0.75 * sigma
                };
                if rel > worst_rel {
                    worst_rel = rel;
                    worst = format!("tasks={tasks} slots={slots}: wave {wave:.4}s vs mc {mc:.4}s");
                }
                if rel > tol_rel {
                    ok = false;
                    let _ = write!(
                        detail,
                        "tasks={tasks} slots={slots}: wave {wave:.4}s vs mc {mc:.4}s \
                         (rel {rel:.4} > tol {tol_rel:.4}); ",
                    );
                }
            }
        }
        if ok {
            detail =
                format!("15-point (tasks × slots) grid, worst deviation {worst_rel:.4} ({worst})");
        }
        report.record(
            "estimate-envelope",
            format!("sigma{sigma}/trials{trials}"),
            ok,
            detail,
        );
    }
}

/// The optimized tile kernels must conform to their reference paths:
/// epsilon-bounded where summation order legitimately differs (packed
/// SIMD GEMM vs the naive reference), bitwise everywhere it is preserved
/// (the sparse kernels vs their references; the packed kernel across
/// intra-kernel thread counts). Runs on the host's production dispatch —
/// the same clone every real run uses — so the recorded level documents
/// what was actually verified.
fn check_kernel_conformance(report: &mut CheckReport) {
    use cumulon_matrix::{gen, set_kernel_threads, simd_level, DenseTile};

    let level = simd_level().name();
    // Dense packed GEMM vs the naive reference: shapes straddle the
    // MR=4/NR=8 micro-tile, the MC=64 macro-block and the KC=512 rank
    // slice, plus accumulation into a non-zero C.
    for (m, l, n) in [(64usize, 64usize, 64usize), (65, 130, 67), (33, 513, 41)] {
        let a = gen::dense_uniform_tile(11, 0, 0, m, l, -1.0, 1.0);
        let b = gen::dense_uniform_tile(13, 0, 0, l, n, -1.0, 1.0);
        let mut c = DenseTile::from_fn(m, n, |i, j| (i + 2 * j) as f64 * 0.01);
        let mut expect = c.data().to_vec();
        for (e, p) in expect
            .iter_mut()
            .zip(reference::matmul(a.data(), b.data(), m, l, n))
        {
            *e += p;
        }
        DenseTile::gemm_acc_packed(&mut c, &a, &b).unwrap();
        let tol = 1e-9 * l as f64;
        let worst = c
            .data()
            .iter()
            .zip(expect.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        report.record(
            "kernel-conformance",
            format!("dense-packed/{level}/{m}x{l}x{n}"),
            worst <= tol,
            format!("packed GEMM vs naive reference: worst |Δ| {worst:.3e} (tol {tol:.3e})"),
        );
    }

    // Intra-kernel threading: bitwise at 1 vs N vs all-cores on a
    // multiply large enough to engage the row-panel split.
    {
        let n = 320;
        let a = gen::dense_uniform_tile(17, 0, 0, n, n, -1.0, 1.0);
        let b = gen::dense_uniform_tile(19, 0, 0, n, n, -1.0, 1.0);
        set_kernel_threads(1);
        let mut serial = DenseTile::zeros(n, n);
        DenseTile::gemm_acc_packed(&mut serial, &a, &b).unwrap();
        let mut ok = true;
        let mut detail = String::new();
        for threads in [3usize, 0] {
            set_kernel_threads(threads);
            let mut par = DenseTile::zeros(n, n);
            DenseTile::gemm_acc_packed(&mut par, &a, &b).unwrap();
            if par != serial {
                ok = false;
                let _ = write!(detail, "threads={threads} diverged from serial; ");
            }
        }
        set_kernel_threads(1);
        if ok {
            detail = format!("{n}³ multiply bitwise-identical at threads 1/3/all");
        }
        report.record("kernel-conformance", "dense-packed/threading", ok, detail);
    }

    // Sparse kernels: the optimized paths preserve per-element operation
    // order exactly, so they must match their references bitwise.
    for (l, n, density) in [(37usize, 29usize, 0.15f64), (64, 64, 0.4)] {
        let s = gen::sparse_uniform_tile(23, 0, 0, l, n, density);
        let b = gen::dense_uniform_tile(29, 0, 0, n, 31, -1.0, 1.0);
        let init = DenseTile::from_fn(l, 31, |i, j| ((i * 5 + j) as f64).sin());
        let mut fast = init.clone();
        let mut slow = init;
        s.spmm_acc(&mut fast, &b).unwrap();
        s.spmm_acc_reference(&mut slow, &b).unwrap();
        report.record(
            "kernel-conformance",
            format!("spmm/{l}x{n}@{density}"),
            fast == slow,
            if fast == slow {
                "optimized SpMM bitwise-identical to reference".to_string()
            } else {
                "optimized SpMM diverged from reference".to_string()
            },
        );

        let a = gen::dense_uniform_tile(31, 0, 0, 30, l, -1.0, 1.0);
        let init = DenseTile::from_fn(30, n, |i, j| ((i + 3 * j) as f64).cos());
        let mut fast = init.clone();
        let mut slow = init;
        s.gemm_ds_acc(&mut fast, &a).unwrap();
        s.gemm_ds_acc_reference(&mut slow, &a).unwrap();
        report.record(
            "kernel-conformance",
            format!("gemm-ds/{l}x{n}@{density}"),
            fast == slow,
            if fast == slow {
                "optimized dense×sparse bitwise-identical to reference".to_string()
            } else {
                "optimized dense×sparse diverged from reference".to_string()
            },
        );
    }
}

/// Multi-tenancy must be observational: N tenants racing the same Gram
/// program through the `cumulon serve` admission path — per-tenant
/// quotas, the bounded priority queue, concurrent run workers and the
/// process-wide shared speculation pool — must each receive a
/// fingerprint bitwise-identical to the serial, private-pool direct
/// pipeline, at scheduler threads 1 and N. This is the service-layer
/// twin of `result-identity`: contention between tenants may shift
/// *when* speculative work happens, never what a run computes.
fn check_serve_isolation(opts: &CheckOptions, report: &mut CheckReport) {
    use cumulon_serve::{engine, Request, Service, ServiceConfig};

    let request = |id: &str, tenant: &str| {
        format!(
            "{{\"schema\":\"cumulon-serve-v1\",\"id\":\"{id}\",\"tenant\":\"{tenant}\",\
             \"action\":\"run\",\"script\":\"G = A' * A;\",\"inputs\":[\"A=96x48:16\"],\
             \"instance\":\"m1.large\",\"nodes\":4,\"slots\":2}}"
        )
    };
    let base_req = Request::parse(&request("base", "base")).expect("well-formed check request");
    let baseline = match engine::run(&base_req, 1, false) {
        Ok(out) => out.report.fingerprint(),
        Err(e) => {
            report.record(
                "serve-isolation",
                "gram/direct-baseline",
                false,
                format!("direct pipeline run failed: {e}"),
            );
            return;
        }
    };
    let tenants = if opts.quick { 2 } else { 3 };
    for threads in [1, threads_n()] {
        let label = format!("gram/t{threads}/{tenants}-tenants");
        let mut service = Service::start(ServiceConfig {
            threads,
            run_workers: tenants,
            queue_depth: tenants,
            ..Default::default()
        });
        let replies: Vec<String> = std::thread::scope(|s| {
            (0..tenants)
                .map(|i| {
                    let service = &service;
                    s.spawn(move || {
                        service.handle(&request(&format!("req-{i}"), &format!("tenant-{i}")))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("tenant thread panicked"))
                .collect()
        });
        service.shutdown();
        let mut ok = true;
        let mut detail = String::new();
        for (i, reply) in replies.iter().enumerate() {
            let fp = cumulon_trace::json::parse(reply).ok().and_then(|v| {
                v.get("fingerprint")
                    .and_then(|f| f.as_str())
                    .map(str::to_string)
            });
            match fp {
                Some(fp) if fp == baseline => {}
                Some(_) => {
                    ok = false;
                    let _ = write!(detail, "tenant-{i}: fingerprint diverged from baseline; ");
                }
                None => {
                    ok = false;
                    let _ = write!(detail, "tenant-{i}: no fingerprint in `{}`; ", reply.trim());
                }
            }
        }
        if ok {
            detail = format!(
                "{tenants} concurrent tenants through the service at {threads} scheduler \
                 thread(s): every fingerprint bitwise equal to the serial direct pipeline"
            );
        }
        report.record("serve-isolation", label, ok, detail);
    }
}

/// Deployment search must generate exactly the instance × slots × nodes
/// cross product — `max_nodes` included even when the stride skips it.
fn check_search_grid(report: &mut CheckReport) {
    let model = model();
    let mut b = ProgramBuilder::new();
    let a = b.input("A");
    let x = b.input("X");
    let c = b.mul(a, x);
    b.output("C", c);
    let program = b.build();
    let mut inputs = BTreeMap::new();
    for name in ["A", "X"] {
        inputs.insert(
            name.to_string(),
            InputDesc::dense(MatrixMeta::new(4_000, 4_000, 1_000)),
        );
    }

    let spaces = [
        ("stride1", SearchSpace::quick()),
        (
            "stride4",
            SearchSpace {
                node_stride: 4,
                ..SearchSpace::quick()
            },
        ),
        (
            "stride5-min2-max13",
            SearchSpace {
                min_nodes: 2,
                max_nodes: 13,
                node_stride: 5,
                slots_per_core: vec![0.5, 1.0],
                ..SearchSpace::quick()
            },
        ),
    ];
    for (name, space) in spaces {
        let nodes = space.node_options();
        let sorted = nodes.windows(2).all(|w| w[0] < w[1]);
        let in_range = nodes
            .iter()
            .all(|&n| (space.min_nodes..=space.max_nodes).contains(&n));
        let endpoints =
            nodes.first() == Some(&space.min_nodes) && nodes.last() == Some(&space.max_nodes);
        report.record(
            "search-grid-coverage",
            format!("node-options/{name}"),
            sorted && in_range && endpoints,
            format!(
                "candidates {nodes:?} for [{}, {}] stride {} (sorted: {sorted}, \
                 in range: {in_range}, endpoints present: {endpoints})",
                space.min_nodes, space.max_nodes, space.node_stride
            ),
        );

        let mut expected: BTreeSet<(&str, u32, u32)> = BTreeSet::new();
        for instance in &space.instances {
            for slots in space.slot_options(instance) {
                for &n in &nodes {
                    expected.insert((instance.name, slots, n));
                }
            }
        }
        let search = DeploymentSearch::new(&model, space.clone());
        match search.sweep(&program, &inputs) {
            Ok(plans) => {
                let got: BTreeSet<(&str, u32, u32)> = plans
                    .iter()
                    .map(|p| (p.instance.name, p.slots, p.nodes))
                    .collect();
                let missing: Vec<_> = expected.difference(&got).collect();
                let extra: Vec<_> = got.difference(&expected).collect();
                let ok = missing.is_empty() && extra.is_empty() && plans.len() == expected.len();
                report.record(
                    "search-grid-coverage",
                    format!("sweep/{name}"),
                    ok,
                    if ok {
                        format!(
                            "sweep evaluated all {} grid points exactly once",
                            plans.len()
                        )
                    } else {
                        format!(
                            "{} evaluated vs {} expected; missing {missing:?}; extra {extra:?}",
                            plans.len(),
                            expected.len()
                        )
                    },
                );
            }
            Err(e) => report.record(
                "search-grid-coverage",
                format!("sweep/{name}"),
                false,
                format!("sweep failed: {e}"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick lattice at HEAD must pass clean — this is the CI gate's
    /// in-process twin, so a reintroduced invariant violation fails
    /// `cargo test` even before the `cumulon check` step runs.
    #[test]
    fn quick_suite_passes_at_head() {
        let report = run_checks(&CheckOptions { quick: true }).unwrap();
        assert!(
            report.passed(),
            "invariant violations at HEAD:\n{}",
            report.render()
        );
        // Every invariant class must actually be exercised.
        for inv in [
            "result-identity",
            "reference-conformance",
            "byte-conservation",
            "billing-identity",
            "trace-accounting",
            "recovery-idempotence",
            "revocation-survivability",
            "estimate-envelope",
            "search-grid-coverage",
            "kernel-conformance",
            "spill-transparency",
            "spill-schedule-transparency",
            "serve-isolation",
        ] {
            assert!(
                report.outcomes.iter().any(|o| o.invariant == inv),
                "invariant {inv} never evaluated:\n{}",
                report.render()
            );
        }
    }

    /// The checker must *fail* when an invariant is broken: hand it a
    /// search space whose sweep provably skips `max_nodes` by simulating
    /// the pre-fix candidate generation.
    #[test]
    fn detects_broken_node_grid() {
        // The fixed node_options always includes max_nodes; emulate the
        // old bug by checking its output against a strided range that
        // skips the endpoint, which is exactly what the checker guards.
        let space = SearchSpace {
            node_stride: 4,
            ..SearchSpace::quick()
        };
        let buggy: Vec<u32> = (space.min_nodes..=space.max_nodes)
            .step_by(space.node_stride as usize)
            .collect();
        assert_ne!(
            buggy,
            space.node_options(),
            "non-dividing stride must be repaired by node_options"
        );
        assert_eq!(space.node_options().last(), Some(&space.max_nodes));
    }

    /// Faulted runs in the suite really do fire faults (the idempotence
    /// check is not vacuous).
    #[test]
    fn recovery_check_is_not_vacuous() {
        let mut report = CheckReport::default();
        let cases = suite();
        let case = &cases[0];
        let base = run_case(case, BASELINE, &FailurePlan::default()).unwrap();
        check_recovery_idempotence(case, &base, "base", &mut report);
        let outcome = report
            .outcomes
            .iter()
            .find(|o| o.invariant == "recovery-idempotence")
            .expect("recorded");
        assert!(outcome.passed, "{}", outcome.detail);
        assert!(
            outcome.detail.contains("faults fired: true"),
            "{}",
            outcome.detail
        );
    }
}
