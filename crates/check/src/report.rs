//! The checker's structured result: every invariant evaluation (pass or
//! fail) plus a machine-readable JSON rendering built on the
//! `cumulon-trace` JSON emitter (the workspace vendors no `serde_json`).

use std::fmt::Write as _;

use cumulon_trace::json::escape;

/// One invariant evaluated against one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Invariant identifier (stable, kebab-case — see DESIGN.md).
    pub invariant: &'static str,
    /// The configuration lattice point, e.g. `gram/t4/bytes/trace`.
    pub config: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable evidence: what was compared and what was seen.
    pub detail: String,
}

/// The full result of one `cumulon check` sweep.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Whether the sweep ran the reduced (`--quick`) lattice.
    pub quick: bool,
    /// Every invariant evaluation, in execution order.
    pub outcomes: Vec<CheckOutcome>,
}

impl CheckReport {
    /// Records a check result.
    pub fn record(
        &mut self,
        invariant: &'static str,
        config: impl Into<String>,
        passed: bool,
        detail: impl Into<String>,
    ) {
        self.outcomes.push(CheckOutcome {
            invariant,
            config: config.into(),
            passed,
            detail: detail.into(),
        });
    }

    /// The failed outcomes.
    pub fn violations(&self) -> Vec<&CheckOutcome> {
        self.outcomes.iter().filter(|o| !o.passed).collect()
    }

    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed)
    }

    /// Machine-readable JSON document (schema `cumulon-check-v1`):
    /// every outcome under `"checks"`, the failures repeated under
    /// `"violations"` so CI tooling can show just the broken ones.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"cumulon-check-v1\",");
        let _ = write!(
            s,
            "\"quick\":{},\"passed\":{},\"checks\":[",
            self.quick,
            self.passed()
        );
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_outcome(&mut s, o);
        }
        s.push_str("],\"violations\":[");
        for (i, o) in self.violations().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_outcome(&mut s, o);
        }
        s.push_str("]}");
        s
    }

    /// Human-readable summary: one line per invariant×config, violations
    /// expanded with their evidence.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let total = self.outcomes.len();
        let failed = self.violations().len();
        for o in &self.outcomes {
            let mark = if o.passed { "ok  " } else { "FAIL" };
            let _ = writeln!(s, "{mark} {:<22} {}", o.invariant, o.config);
            if !o.passed {
                let _ = writeln!(s, "     {}", o.detail);
            }
        }
        if failed == 0 {
            let _ = write!(s, "cumulon check: {total} checks, all invariants hold");
        } else {
            let _ = write!(s, "cumulon check: {failed} of {total} checks VIOLATED");
        }
        s
    }
}

fn push_outcome(s: &mut String, o: &CheckOutcome) {
    let _ = write!(
        s,
        "{{\"invariant\":\"{}\",\"config\":\"{}\",\"passed\":{},\"detail\":\"{}\"}}",
        escape(o.invariant),
        escape(&o.config),
        o.passed,
        escape(&o.detail)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_trace::json::parse;

    fn sample() -> CheckReport {
        let mut r = CheckReport {
            quick: true,
            ..Default::default()
        };
        r.record("billing-identity", "gram/t1", true, "bitwise equal");
        r.record(
            "result-identity",
            "gram/t4/\"bytes\"",
            false,
            "fingerprint diverged\nat job mul#0",
        );
        r
    }

    #[test]
    fn pass_fail_accounting() {
        let r = sample();
        assert!(!r.passed());
        assert_eq!(r.violations().len(), 1);
        assert_eq!(r.violations()[0].invariant, "result-identity");
        let mut clean = CheckReport::default();
        clean.record("x", "c", true, "");
        assert!(clean.passed());
        assert!(clean.violations().is_empty());
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let r = sample();
        let v = parse(&r.to_json()).expect("emitted JSON must parse");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("cumulon-check-v1"));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("passed").unwrap().as_bool(), Some(false));
        let checks = v.get("checks").unwrap().as_arr().unwrap();
        assert_eq!(checks.len(), 2);
        let violations = v.get("violations").unwrap().as_arr().unwrap();
        assert_eq!(violations.len(), 1);
        // Escaping round-trips the hostile config/detail strings.
        assert_eq!(
            violations[0].get("config").unwrap().as_str(),
            Some("gram/t4/\"bytes\"")
        );
        assert_eq!(
            violations[0].get("detail").unwrap().as_str(),
            Some("fingerprint diverged\nat job mul#0")
        );
    }

    #[test]
    fn render_flags_violations() {
        let r = sample();
        let text = r.render();
        assert!(text.contains("FAIL result-identity"), "{text}");
        assert!(text.contains("1 of 2 checks VIOLATED"), "{text}");
        let mut clean = CheckReport::default();
        clean.record("x", "c", true, "");
        assert!(clean.render().contains("all invariants hold"));
    }
}
