//! # cumulon-check
//!
//! Cross-layer invariant checker for the Cumulon-RS workspace — the
//! engine behind `cumulon check`.
//!
//! The other crates each test themselves; this one tests the *contracts
//! between them*. It drives a small workload suite (a multiply chain, a
//! Gram matrix, an iterative power method) through the full observational
//! configuration lattice — worker threads 1 vs. N, tile-handle vs.
//! materialized-byte payloads, tracing on/off, billing policies, injected
//! faults with lineage recovery, and solo vs. multi-tenant service
//! concurrency — and machine-checks the global identities that hold the
//! system together:
//!
//! | invariant | contract |
//! |---|---|
//! | `result-identity` | observational config never changes result bits |
//! | `reference-conformance` | cluster results match naive local math |
//! | `byte-conservation` | namenode metadata == datanode byte counters |
//! | `billing-identity` | `cost == nodes × price × billed_hours`, bitwise |
//! | `trace-accounting` | phases + idle == makespan |
//! | `recovery-idempotence` | faults + recovery reproduce fault-free bits |
//! | `estimate-envelope` | wave model within a sigma envelope of MC |
//! | `search-grid-coverage` | deployment sweep covers the exact grid |
//! | `serve-isolation` | concurrent service tenants reproduce the serial direct pipeline bitwise |
//!
//! Violations come back as a structured [`CheckReport`] — renderable for
//! humans, serializable as JSON (schema `cumulon-check-v1`) for CI — and
//! the whole sweep is deterministic, so a reported violation reproduces
//! on any host. See `DESIGN.md` § Validation for how to add an invariant.

pub mod report;
pub mod suite;

pub use report::{CheckOutcome, CheckReport};
pub use suite::{run_checks, CheckOptions};
