//! Conformance of the optimized kernels against their reference paths.
//!
//! Three contracts, mirroring the `kernel-conformance` invariant in
//! `cumulon check`:
//!
//! * the packed SIMD GEMM is **epsilon-bounded** against the naive
//!   reference (its summation association and FMA contraction differ);
//! * the optimized sparse kernels (`spmm_acc`, `gemm_ds_acc`) are
//!   **bitwise-identical** to their reference paths (per-element
//!   operation order is preserved exactly);
//! * intra-kernel threading is **bitwise-identical** at any thread count.

use cumulon_matrix::dense::set_kernel_threads;
use cumulon_matrix::{gen, reference, DenseTile};
use proptest::prelude::*;

fn dense(seed: u64, tag: usize, r: usize, c: usize) -> DenseTile {
    gen::dense_uniform_tile(seed, tag, 0, r, c, -1.0, 1.0)
}

fn assert_close(a: &[f64], b: &[f64], tol: f64) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        prop_assert!((x - y).abs() <= tol, "{x} vs {y} (tol {tol})");
    }
    Ok(())
}

proptest! {
    /// Packed GEMM vs the naive reference over shapes straddling the
    /// MR=4 / NR=8 micro-tile and MC=64 macro-block boundaries (the KC
    /// boundary is covered by the fixed-shape test below).
    #[test]
    fn packed_gemm_matches_reference(
        m in 1usize..70, l in 1usize..70, n in 1usize..70, seed in any::<u64>()
    ) {
        let a = dense(seed, 1, m, l);
        let b = dense(seed, 2, l, n);
        let mut c = DenseTile::from_fn(m, n, |i, j| (i * 3 + j) as f64 * 0.01);
        let mut expect: Vec<f64> = c.data().to_vec();
        let prod = reference::matmul(a.data(), b.data(), m, l, n);
        for (e, p) in expect.iter_mut().zip(prod.iter()) {
            *e += *p;
        }
        DenseTile::gemm_acc_packed(&mut c, &a, &b).unwrap();
        assert_close(c.data(), &expect, 1e-9 * l.max(1) as f64)?;
    }

    /// Optimized SpMM is bitwise-identical to the reference kernel.
    #[test]
    fn spmm_bitwise_matches_reference(
        m in 1usize..40, l in 1usize..40, n in 1usize..40,
        seed in any::<u64>(), density in 0.0f64..0.8
    ) {
        let s = gen::sparse_uniform_tile(seed, 3, 0, m, l, density);
        let b = dense(seed, 4, l, n);
        let init = DenseTile::from_fn(m, n, |i, j| ((i + 7 * j) as f64).sin());
        let mut fast = init.clone();
        let mut slow = init;
        s.spmm_acc(&mut fast, &b).unwrap();
        s.spmm_acc_reference(&mut slow, &b).unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// Optimized dense × sparse is bitwise-identical to the reference
    /// kernel (including the 4-row remainder).
    #[test]
    fn gemm_ds_bitwise_matches_reference(
        m in 1usize..40, l in 1usize..40, n in 1usize..40,
        seed in any::<u64>(), density in 0.0f64..0.8
    ) {
        let s = gen::sparse_uniform_tile(seed, 5, 0, l, n, density);
        let a = dense(seed, 6, m, l);
        let init = DenseTile::from_fn(m, n, |i, j| ((3 * i + j) as f64).cos());
        let mut fast = init.clone();
        let mut slow = init;
        s.gemm_ds_acc(&mut fast, &a).unwrap();
        s.gemm_ds_acc_reference(&mut slow, &a).unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// Intra-kernel threading never changes a single bit: threads split
    /// the output rows into disjoint panels, each element keeps its
    /// serial summation order.
    #[test]
    fn packed_gemm_bitwise_at_any_thread_count(
        m in 1usize..80, l in 1usize..80, n in 1usize..80,
        seed in any::<u64>(), threads in 2usize..5
    ) {
        let a = dense(seed, 7, m, l);
        let b = dense(seed, 8, l, n);
        let init = DenseTile::from_fn(m, n, |i, j| (i ^ j) as f64 * 0.125);
        set_kernel_threads(1);
        let mut serial = init.clone();
        DenseTile::gemm_acc_packed(&mut serial, &a, &b).unwrap();
        set_kernel_threads(threads);
        let mut par = init.clone();
        DenseTile::gemm_acc_packed(&mut par, &a, &b).unwrap();
        set_kernel_threads(0);
        let mut all = init;
        DenseTile::gemm_acc_packed(&mut all, &a, &b).unwrap();
        set_kernel_threads(1);
        prop_assert_eq!(&serial, &par);
        prop_assert_eq!(&serial, &all);
    }
}

/// Shapes straddling the KC=512 rank-slice boundary (and crossing it
/// twice at 1025), checked against the streaming kernel.
#[test]
fn packed_gemm_across_kc_boundary() {
    for (m, l, n) in [(9, 511, 13), (8, 512, 16), (11, 513, 9), (6, 1025, 10)] {
        let a = dense(42, 9, m, l);
        let b = dense(42, 10, l, n);
        let mut packed = DenseTile::zeros(m, n);
        let mut stream = DenseTile::zeros(m, n);
        DenseTile::gemm_acc_packed(&mut packed, &a, &b).unwrap();
        DenseTile::gemm_acc_streaming(&mut stream, &a, &b).unwrap();
        for (x, y) in packed.data().iter().zip(stream.data().iter()) {
            assert!(
                (x - y).abs() <= 1e-9 * l as f64,
                "kc boundary ({m},{l},{n}): {x} vs {y}"
            );
        }
    }
}

/// A threaded multiply large enough to actually engage the row-panel
/// split (the proptest shapes above stay under the parallel threshold),
/// checked bitwise against serial.
#[test]
fn threaded_large_multiply_is_bitwise() {
    let n = 320; // 2·320³ flops clears the 2·256³ parallel threshold
    let a = dense(5, 11, n, n);
    let b = dense(5, 12, n, n);
    set_kernel_threads(1);
    let mut serial = DenseTile::zeros(n, n);
    DenseTile::gemm_acc_packed(&mut serial, &a, &b).unwrap();
    for threads in [2usize, 3, 0] {
        set_kernel_threads(threads);
        let mut par = DenseTile::zeros(n, n);
        DenseTile::gemm_acc_packed(&mut par, &a, &b).unwrap();
        assert_eq!(serial, par, "threads={threads} diverged");
    }
    set_kernel_threads(1);
}
