//! Property-based tests for the tile algebra invariants.

use cumulon_matrix::gen;
use cumulon_matrix::reference;
use cumulon_matrix::tile::ElemOp;
use cumulon_matrix::{CsrTile, DenseTile, LocalMatrix, Tile};
use proptest::prelude::*;

/// Strategy: small dims plus a seed, used to generate deterministic data.
fn dims() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (1usize..24, 1usize..24, 1usize..24, any::<u64>())
}

fn dense(seed: u64, tag: usize, r: usize, c: usize) -> DenseTile {
    gen::dense_uniform_tile(seed, tag, 0, r, c, -1.0, 1.0)
}

fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #[test]
    fn tiled_matmul_matches_reference((m, l, n, seed) in dims(), tile in 1usize..9) {
        let a_flat: Vec<f64> = dense(seed, 1, m, l).into_vec();
        let b_flat: Vec<f64> = dense(seed, 2, l, n).into_vec();
        let a = LocalMatrix::from_dense(m, l, tile, &a_flat);
        let b = LocalMatrix::from_dense(l, n, tile, &b_flat);
        let c = a.matmul(&b).unwrap();
        let expect = reference::matmul(&a_flat, &b_flat, m, l, n);
        prop_assert!(approx_eq(&c.to_dense_vec().unwrap(), &expect, 1e-9 * l as f64));
    }

    #[test]
    fn transpose_of_product((m, l, n, seed) in dims()) {
        // (A B)' == B' A'
        let a = Tile::dense(dense(seed, 1, m, l));
        let b = Tile::dense(dense(seed, 2, l, n));
        let lhs = a.mul(&b).unwrap().transpose();
        let rhs = b.transpose().mul(&a.transpose()).unwrap();
        prop_assert!(approx_eq(
            lhs.to_dense().unwrap().data(),
            rhs.to_dense().unwrap().data(),
            1e-9 * l as f64
        ));
    }

    #[test]
    fn sparse_dense_product_agree((m, l, n, seed) in dims(), density in 0.0f64..0.6) {
        let sp = gen::sparse_uniform_tile(seed, 3, 0, m, l, density);
        let b = dense(seed, 4, l, n);
        let via_sparse = Tile::sparse(sp.clone()).mul(&Tile::dense(b.clone())).unwrap();
        let via_dense = Tile::dense(sp.to_dense()).mul(&Tile::dense(b)).unwrap();
        prop_assert!(approx_eq(
            via_sparse.to_dense().unwrap().data(),
            via_dense.to_dense().unwrap().data(),
            1e-9 * l as f64
        ));
    }

    #[test]
    fn spgemm_agrees_with_dense((m, l, n, seed) in dims(), d1 in 0.0f64..0.5, d2 in 0.0f64..0.5) {
        let a = gen::sparse_uniform_tile(seed, 5, 0, m, l, d1);
        let b = gen::sparse_uniform_tile(seed, 6, 0, l, n, d2);
        let sp = a.spgemm(&b).unwrap();
        let dn = DenseTile::matmul(&a.to_dense(), &b.to_dense()).unwrap();
        prop_assert!(approx_eq(sp.to_dense().data(), dn.data(), 1e-9 * l as f64));
    }

    #[test]
    fn csr_dense_roundtrip((m, _l, n, seed) in dims(), density in 0.0f64..1.0) {
        let sp = gen::sparse_uniform_tile(seed, 7, 0, m, n, density);
        prop_assert_eq!(CsrTile::from_dense(&sp.to_dense()), sp);
    }

    #[test]
    fn serialization_roundtrip((m, _l, n, seed) in dims(), density in 0.0f64..1.0) {
        let tiles = [
            Tile::dense(dense(seed, 8, m, n)),
            Tile::sparse(gen::sparse_uniform_tile(seed, 9, 0, m, n, density)),
            Tile::phantom(m, n, (m * n) as u64 / 2),
        ];
        for t in tiles {
            let decoded = cumulon_matrix::serialize::decode_tile(
                cumulon_matrix::serialize::encode_tile(&t),
            ).unwrap();
            prop_assert_eq!(decoded, t);
        }
    }

    #[test]
    fn elementwise_matches_reference((m, _l, n, seed) in dims()) {
        let a_flat = dense(seed, 10, m, n).into_vec();
        let b_flat = dense(seed, 11, m, n).into_vec();
        let a = Tile::dense(DenseTile::from_vec(m, n, a_flat.clone()));
        let b = Tile::dense(DenseTile::from_vec(m, n, b_flat.clone()));
        let cases: [(ElemOp, Vec<f64>); 4] = [
            (ElemOp::Add, reference::add(&a_flat, &b_flat)),
            (ElemOp::Sub, reference::sub(&a_flat, &b_flat)),
            (ElemOp::Mul, reference::elem_mul(&a_flat, &b_flat)),
            (ElemOp::Div, reference::elem_div(&a_flat, &b_flat)),
        ];
        for (op, expect) in cases {
            let got = a.elementwise(&b, op).unwrap();
            prop_assert!(approx_eq(got.to_dense().unwrap().data(), &expect, 1e-12));
        }
    }

    #[test]
    fn matmul_distributes_over_add((m, l, n, seed) in dims()) {
        // A(B + C) == AB + AC
        let a = Tile::dense(dense(seed, 12, m, l));
        let b = Tile::dense(dense(seed, 13, l, n));
        let c = Tile::dense(dense(seed, 14, l, n));
        let lhs = a.mul(&b.elementwise(&c, ElemOp::Add).unwrap()).unwrap();
        let mut rhs = a.mul(&b).unwrap();
        rhs.add_assign(&a.mul(&c).unwrap()).unwrap();
        prop_assert!(approx_eq(
            lhs.to_dense().unwrap().data(),
            rhs.to_dense().unwrap().data(),
            1e-9 * l as f64
        ));
    }

    #[test]
    fn phantom_mul_shape_agrees((m, l, n, _seed) in dims()) {
        let a = Tile::phantom_dense(m, l);
        let b = Tile::phantom_dense(l, n);
        let c = a.mul(&b).unwrap();
        prop_assert_eq!((c.rows(), c.cols()), (m, n));
        prop_assert_eq!(c.nnz(), (m * n) as u64);
    }

    #[test]
    fn local_transpose_involution((m, _l, n, seed) in dims(), tile in 1usize..9) {
        let flat = dense(seed, 15, m, n).into_vec();
        let a = LocalMatrix::from_dense(m, n, tile, &flat);
        let tt = a.transpose().transpose();
        prop_assert_eq!(tt.to_dense_vec().unwrap(), flat);
    }

    #[test]
    fn sparse_add_commutes((m, _l, n, seed) in dims(), d1 in 0.0f64..0.5, d2 in 0.0f64..0.5) {
        let a = gen::sparse_uniform_tile(seed, 16, 0, m, n, d1);
        let b = gen::sparse_uniform_tile(seed, 17, 0, m, n, d2);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }
}
