//! # cumulon-matrix
//!
//! Tiled linear-algebra substrate for Cumulon-RS.
//!
//! Cumulon stores every matrix as a grid of fixed-size square *tiles*
//! (trailing tiles may be smaller). A tile is the unit of storage, I/O and
//! computation: tasks in the execution engine read input tiles, combine them
//! with dense/sparse kernels, and emit output tiles.
//!
//! Three tile representations are provided:
//!
//! * [`DenseTile`] — row-major `f64` storage, with a blocked GEMM kernel;
//! * [`CsrTile`] — compressed sparse row storage for the sparse workloads
//!   (e.g. the document-term matrix in GNMF);
//! * *phantom* tiles ([`Tile::phantom`]) — metadata-only tiles (dims + an
//!   nnz estimate) that let the cluster simulator run paper-scale
//!   experiments without materialising terabytes of data. All kernels
//!   propagate phantom-ness and nnz estimates, so cost accounting stays
//!   exact while data is elided.
//!
//! The [`mod@reference`] module holds naive untiled kernels used by the test
//! suite to cross-check the tiled implementations, and [`ops`] exposes
//! flop/byte accounting shared with the cost models in `cumulon-core`.

pub mod compress;
pub mod dense;
pub mod error;
pub mod gen;
pub mod local;
pub mod meta;
pub mod microkernel;
pub mod ops;
pub mod pack;
pub mod reference;
pub mod serialize;
pub mod sparse;
pub mod tile;

pub use dense::{kernel_threads, set_kernel_threads, DenseTile};
pub use error::{MatrixError, Result};
pub use local::LocalMatrix;
pub use meta::{MatrixMeta, TileGrid};
pub use microkernel::{detected_simd_level, simd_level, SimdLevel};
pub use sparse::CsrTile;
pub use tile::{Tile, TileData};

/// Default tile side length used throughout the system when the optimizer
/// has not chosen one. The paper stores matrices in square tiles whose size
/// is a physical-design knob; 1000×1000 doubles ≈ 8 MB, a comfortable HDFS
/// block payload.
pub const DEFAULT_TILE_SIZE: usize = 1000;
