//! BLIS-style panel packing for the packed GEMM path.
//!
//! The packed kernel never touches the row-major operands directly.
//! Instead each cache block is copied once into a contiguous buffer whose
//! layout matches exactly the order the microkernel consumes it, so the
//! innermost loops issue nothing but sequential loads:
//!
//! * **A blocks** (`mc × kc`) become `⌈mc/MR⌉` micro-panels of `kc`
//!   steps, each step holding `MR` consecutive rows' elements for one
//!   `k` — element `(k, r)` of panel `ip` lives at
//!   `ip·kc·MR + k·MR + r`.
//! * **B blocks** (`kc × nc`) become `⌈nc/NR⌉` micro-panels of `kc`
//!   steps of `NR` consecutive columns — element `(k, j)` of panel `jp`
//!   lives at `jp·kc·NR + k·NR + j`.
//!
//! Edge panels (when `mc % MR != 0` or `nc % NR != 0`) are zero-padded to
//! full width: the microkernel always computes a full `MR × NR` tile and
//! the macrokernel's write-back masks out the padding, so the kernel
//! itself has no edge cases. Padding contributes `0·x` terms only to
//! accumulator lanes that are never written back, so it cannot perturb
//! results.

use crate::microkernel::{MR, NR};

/// Packs the `mc × kc` block of row-major `a` (leading dimension `lda`)
/// starting at `(i0, k0)` into `MR`-interleaved micro-panels, replacing
/// the contents of `out`.
pub fn pack_a(
    a: &[f64],
    lda: usize,
    i0: usize,
    mc: usize,
    k0: usize,
    kc: usize,
    out: &mut Vec<f64>,
) {
    let panels = mc.div_ceil(MR);
    out.clear();
    out.resize(panels * kc * MR, 0.0);
    for ip in 0..panels {
        let i_base = i0 + ip * MR;
        let rows = MR.min(i0 + mc - i_base);
        let dst = &mut out[ip * kc * MR..(ip + 1) * kc * MR];
        for r in 0..rows {
            let src = &a[(i_base + r) * lda + k0..][..kc];
            for (k, &v) in src.iter().enumerate() {
                dst[k * MR + r] = v;
            }
        }
    }
}

/// Packs the `kc × nc` block of row-major `b` (leading dimension `ldb`)
/// starting at `(k0, j0)` into `NR`-wide micro-panels, replacing the
/// contents of `out`.
pub fn pack_b(
    b: &[f64],
    ldb: usize,
    k0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    out: &mut Vec<f64>,
) {
    let panels = nc.div_ceil(NR);
    out.clear();
    out.resize(panels * kc * NR, 0.0);
    for jp in 0..panels {
        let j_base = j0 + jp * NR;
        let cols = NR.min(j0 + nc - j_base);
        let dst = &mut out[jp * kc * NR..(jp + 1) * kc * NR];
        for k in 0..kc {
            let src = &b[(k0 + k) * ldb + j_base..][..cols];
            dst[k * NR..k * NR + cols].copy_from_slice(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_layout_and_padding() {
        // 5×6 matrix, pack the full thing: 2 panels (rows 0-3, row 4 + pad).
        let lda = 6;
        let a: Vec<f64> = (0..5 * lda).map(|i| i as f64).collect();
        let mut out = Vec::new();
        pack_a(&a, lda, 0, 5, 0, 6, &mut out);
        assert_eq!(out.len(), 2 * 6 * MR);
        // Panel 0, k=2 holds column 2 of rows 0..4.
        assert_eq!(&out[2 * MR..3 * MR], &[2.0, 8.0, 14.0, 20.0]);
        // Panel 1, k=0 holds row 4 then zero padding.
        assert_eq!(&out[6 * MR..6 * MR + MR], &[24.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_a_sub_block() {
        let lda = 4;
        let a: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut out = Vec::new();
        // Block rows 1..3, cols 1..3 of a 4×4.
        pack_a(&a, lda, 1, 2, 1, 2, &mut out);
        assert_eq!(out.len(), 2 * MR);
        assert_eq!(&out[..MR], &[5.0, 9.0, 0.0, 0.0]); // k=0: a[1][1], a[2][1]
        assert_eq!(&out[MR..], &[6.0, 10.0, 0.0, 0.0]); // k=1: a[1][2], a[2][2]
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 3×10 matrix: 2 panels (cols 0..8, cols 8..10 + pad).
        let ldb = 10;
        let b: Vec<f64> = (0..3 * ldb).map(|i| i as f64).collect();
        let mut out = Vec::new();
        pack_b(&b, ldb, 0, 3, 0, 10, &mut out);
        assert_eq!(out.len(), 2 * 3 * NR);
        // Panel 0, k=1 is row 1, cols 0..8.
        assert_eq!(
            &out[NR..2 * NR],
            &[10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0]
        );
        // Panel 1, k=0 is row 0, cols 8..10 then zero padding.
        assert_eq!(
            &out[3 * NR..4 * NR],
            &[8.0, 9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn buffers_are_reusable() {
        let a: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut out = vec![999.0; 1000];
        pack_a(&a, 8, 0, 8, 0, 8, &mut out);
        assert_eq!(out.len(), 2 * 8 * MR);
        pack_b(&a, 8, 0, 8, 0, 8, &mut out);
        assert_eq!(out.len(), 8 * NR);
        assert!(!out.contains(&999.0));
    }
}
