//! The unified [`Tile`] type: dense, sparse, or phantom (metadata-only).
//!
//! The execution engine is written entirely against `Tile`, so the same
//! physical operators run in *real* mode (materialised data, verifiable
//! results) and *phantom* mode (paper-scale experiments where only shapes,
//! nnz estimates and byte/flop counts flow). Every kernel here propagates
//! phantom-ness: combining a phantom tile with anything yields a phantom
//! tile whose nnz estimate follows the standard independence assumptions
//! used by the cost models.

use crate::dense::DenseTile;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrTile;

/// Storage payload of a [`Tile`].
#[derive(Debug, Clone, PartialEq)]
pub enum TileData {
    /// Materialised dense data.
    Dense(DenseTile),
    /// Materialised sparse data.
    Sparse(CsrTile),
    /// No data: only an estimated number of non-zeros is tracked.
    Phantom {
        /// Estimated non-zero count for cost accounting.
        nnz: u64,
    },
}

/// A tile of a distributed matrix: dimensions plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    rows: usize,
    cols: usize,
    data: TileData,
}

impl Tile {
    /// Wraps a dense tile.
    pub fn dense(d: DenseTile) -> Self {
        Tile {
            rows: d.rows(),
            cols: d.cols(),
            data: TileData::Dense(d),
        }
    }

    /// Wraps a sparse tile.
    pub fn sparse(s: CsrTile) -> Self {
        Tile {
            rows: s.rows(),
            cols: s.cols(),
            data: TileData::Sparse(s),
        }
    }

    /// Creates a metadata-only tile with an nnz estimate.
    pub fn phantom(rows: usize, cols: usize, nnz: u64) -> Self {
        let cap = (rows as u64).saturating_mul(cols as u64);
        Tile {
            rows,
            cols,
            data: TileData::Phantom { nnz: nnz.min(cap) },
        }
    }

    /// Creates a fully-dense phantom tile.
    pub fn phantom_dense(rows: usize, cols: usize) -> Self {
        Tile::phantom(rows, cols, (rows * cols) as u64)
    }

    /// A materialised dense zero tile.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tile::dense(DenseTile::zeros(rows, cols))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Payload reference.
    #[inline]
    pub fn payload(&self) -> &TileData {
        &self.data
    }

    /// True if this tile carries no materialised data.
    pub fn is_phantom(&self) -> bool {
        matches!(self.data, TileData::Phantom { .. })
    }

    /// True if this tile is stored sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.data, TileData::Sparse(_))
    }

    /// Exact nnz for materialised tiles, the estimate for phantom tiles.
    pub fn nnz(&self) -> u64 {
        match &self.data {
            TileData::Dense(d) => d.nnz(),
            TileData::Sparse(s) => s.nnz(),
            TileData::Phantom { nnz } => *nnz,
        }
    }

    /// Density in `[0, 1]` (nnz over capacity).
    pub fn density(&self) -> f64 {
        let cap = (self.rows * self.cols) as f64;
        if cap == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cap
        }
    }

    /// Size of this tile's serialized form in bytes (used by the I/O cost
    /// model and the DFS). Mirrors [`crate::serialize`]: dense tiles store
    /// every element; sparse tiles store 12 bytes per entry plus row
    /// pointers; phantom tiles are costed as if stored in the cheaper of the
    /// two layouts, which is what a real system's format chooser would do.
    pub fn stored_bytes(&self) -> u64 {
        const HEADER: u64 = 24;
        match &self.data {
            TileData::Dense(_) => HEADER + (self.rows * self.cols * 8) as u64,
            TileData::Sparse(s) => HEADER + 4 * (self.rows as u64 + 1) + 12 * s.nnz(),
            TileData::Phantom { nnz } => {
                let dense = (self.rows * self.cols * 8) as u64;
                let sparse = 4 * (self.rows as u64 + 1) + 12 * nnz;
                HEADER + dense.min(sparse)
            }
        }
    }

    /// Borrows the dense payload, failing on sparse/phantom.
    pub fn as_dense(&self) -> Result<&DenseTile> {
        match &self.data {
            TileData::Dense(d) => Ok(d),
            TileData::Sparse(_) => Err(MatrixError::PhantomData {
                op: "as_dense(sparse)",
            }),
            TileData::Phantom { .. } => Err(MatrixError::PhantomData { op: "as_dense" }),
        }
    }

    /// Borrows the sparse payload, failing on dense/phantom.
    pub fn as_sparse(&self) -> Result<&CsrTile> {
        match &self.data {
            TileData::Sparse(s) => Ok(s),
            _ => Err(MatrixError::PhantomData { op: "as_sparse" }),
        }
    }

    /// Materialises as a dense tile (converts sparse; fails on phantom).
    pub fn to_dense(&self) -> Result<DenseTile> {
        match &self.data {
            TileData::Dense(d) => Ok(d.clone()),
            TileData::Sparse(s) => Ok(s.to_dense()),
            TileData::Phantom { .. } => Err(MatrixError::PhantomData { op: "to_dense" }),
        }
    }

    fn check_mul_shapes(&self, other: &Tile) -> Result<()> {
        if self.cols != other.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "tile_mul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(())
    }

    fn check_same_shape(&self, op: &'static str, other: &Tile) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch {
                op,
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(())
    }

    /// Estimated nnz of a product tile under the independence assumption:
    /// for each of the `l` shared positions, an output cell survives with
    /// probability `1 - (1 - da*db)^l`.
    fn mul_nnz_estimate(&self, other: &Tile) -> u64 {
        let l = self.cols.max(1) as f64;
        let da = self.density();
        let db = other.density();
        let p_cell = 1.0 - (1.0 - da * db).powf(l);
        let cap = (self.rows as u64).saturating_mul(other.cols as u64);
        ((cap as f64) * p_cell).round().min(cap as f64) as u64
    }

    /// Tile product `self × other`, dispatching on representations.
    /// Any phantom operand yields a phantom result.
    pub fn mul(&self, other: &Tile) -> Result<Tile> {
        self.check_mul_shapes(other)?;
        use TileData::*;
        let out = match (&self.data, &other.data) {
            (Phantom { .. }, _) | (_, Phantom { .. }) => {
                Tile::phantom(self.rows, other.cols, self.mul_nnz_estimate(other))
            }
            (Dense(a), Dense(b)) => Tile::dense(DenseTile::matmul(a, b)?),
            (Sparse(a), Dense(b)) => {
                let mut c = DenseTile::zeros(self.rows, other.cols);
                a.spmm_acc(&mut c, b)?;
                Tile::dense(c)
            }
            (Dense(a), Sparse(b)) => {
                let mut c = DenseTile::zeros(self.rows, other.cols);
                b.gemm_ds_acc(&mut c, a)?;
                Tile::dense(c)
            }
            (Sparse(a), Sparse(b)) => Tile::sparse(a.spgemm(b)?),
        };
        Ok(out)
    }

    /// `self += other` (for accumulating partial products). Sparse operands
    /// are promoted to dense when mixed; phantom taints the accumulator. The
    /// nnz estimate for phantom sums assumes independent supports.
    pub fn add_assign(&mut self, other: &Tile) -> Result<()> {
        self.check_same_shape("tile_add", other)?;
        use TileData::*;
        let cap = (self.rows * self.cols) as u64;
        match (&mut self.data, &other.data) {
            (Phantom { nnz }, _) => {
                let union = union_nnz(*nnz, other.nnz(), cap);
                *nnz = union;
            }
            (me, Phantom { nnz }) => {
                let union = union_nnz(
                    match me {
                        Dense(d) => d.nnz(),
                        Sparse(s) => s.nnz(),
                        Phantom { nnz } => *nnz,
                    },
                    *nnz,
                    cap,
                );
                self.data = Phantom { nnz: union };
            }
            (Dense(a), Dense(b)) => a.add_assign(b)?,
            (Dense(a), Sparse(b)) => {
                for (i, j, v) in b.iter() {
                    a.set(i, j, a.get(i, j) + v);
                }
            }
            (Sparse(a), Sparse(b)) => {
                let sum = a.add(b)?;
                self.data = Sparse(sum);
            }
            (Sparse(a), Dense(b)) => {
                let mut d = a.to_dense();
                d.add_assign(b)?;
                self.data = Dense(d);
            }
        }
        Ok(())
    }

    /// Element-wise binary op. `kind` selects add/sub/mul/div.
    pub fn elementwise(&self, other: &Tile, kind: ElemOp) -> Result<Tile> {
        self.check_same_shape(kind.name(), other)?;
        use TileData::*;
        let cap = (self.rows * self.cols) as u64;
        let out = match (&self.data, &other.data) {
            (Phantom { .. }, _) | (_, Phantom { .. }) => {
                let nnz = match kind {
                    ElemOp::Add | ElemOp::Sub => union_nnz(self.nnz(), other.nnz(), cap),
                    // Product support is the intersection; with independence
                    // that's the product of densities.
                    ElemOp::Mul => ((self.density() * other.density()) * cap as f64).round() as u64,
                    // Division keeps the numerator's support.
                    ElemOp::Div => self.nnz(),
                };
                Tile::phantom(self.rows, self.cols, nnz)
            }
            (Sparse(a), Dense(b)) if kind == ElemOp::Mul => Tile::sparse(a.elem_mul_dense(b)?),
            (Sparse(a), Dense(b)) if kind == ElemOp::Div => Tile::sparse(a.elem_div_dense(b)?),
            (Sparse(a), Sparse(b)) if kind == ElemOp::Add => Tile::sparse(a.add(b)?),
            (Sparse(a), Sparse(b)) if kind == ElemOp::Sub => {
                let mut nb = b.clone();
                nb.scale(-1.0);
                Tile::sparse(a.add(&nb)?)
            }
            _ => {
                // General path: materialise both sides dense.
                let mut a = self.to_dense()?;
                let b = other.to_dense()?;
                match kind {
                    ElemOp::Add => a.add_assign(&b)?,
                    ElemOp::Sub => a.sub_assign(&b)?,
                    ElemOp::Mul => a.mul_assign_elem(&b)?,
                    ElemOp::Div => a.div_assign_elem(&b)?,
                }
                Tile::dense(a)
            }
        };
        Ok(out)
    }

    /// Transposes the tile.
    pub fn transpose(&self) -> Tile {
        match &self.data {
            TileData::Dense(d) => Tile::dense(d.transpose()),
            TileData::Sparse(s) => Tile::sparse(s.transpose()),
            TileData::Phantom { nnz } => Tile::phantom(self.cols, self.rows, *nnz),
        }
    }

    /// Scales the tile by `s` (no-op on phantom payloads except s == 0).
    pub fn scale(&mut self, s: f64) {
        match &mut self.data {
            TileData::Dense(d) => d.scale(s),
            TileData::Sparse(sp) => sp.scale(s),
            TileData::Phantom { nnz } => {
                if s == 0.0 {
                    *nnz = 0;
                }
            }
        }
    }

    /// Applies a scalar function to every element. Phantom tiles assume the
    /// function preserves zeros (true for the workloads' `abs`, `sqrt`,
    /// `x*x` style maps) and keep their nnz estimate.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tile {
        match &self.data {
            TileData::Dense(d) => {
                let mut out = d.clone();
                out.map_inplace(&f);
                Tile::dense(out)
            }
            TileData::Sparse(s) => {
                let triples = s.iter().map(|(i, j, v)| (i, j, f(v))).collect();
                Tile::sparse(CsrTile::from_triples(s.rows(), s.cols(), triples))
            }
            TileData::Phantom { nnz } => Tile::phantom(self.rows, self.cols, *nnz),
        }
    }

    /// Sum of all elements (0 for phantom tiles — aggregates over phantom
    /// data are only used for cost accounting, never for results).
    pub fn sum(&self) -> f64 {
        match &self.data {
            TileData::Dense(d) => d.sum(),
            TileData::Sparse(s) => s.sum(),
            TileData::Phantom { .. } => 0.0,
        }
    }

    /// Squared Frobenius norm (0 for phantom tiles).
    pub fn frob_sq(&self) -> f64 {
        match &self.data {
            TileData::Dense(d) => d.frob_sq(),
            TileData::Sparse(s) => s.frob_sq(),
            TileData::Phantom { .. } => 0.0,
        }
    }
}

/// Lets APIs take `impl Into<Arc<Tile>>` so callers can hand over an owned
/// `Tile` or a shared `Arc<Tile>` without copying, while `&Tile` call sites
/// keep working (at the cost of one clone, as before).
impl From<&Tile> for std::sync::Arc<Tile> {
    fn from(t: &Tile) -> Self {
        std::sync::Arc::new(t.clone())
    }
}

/// Estimated nnz of the union of two independent supports, capped.
fn union_nnz(a: u64, b: u64, cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let da = a as f64 / cap as f64;
    let db = b as f64 / cap as f64;
    (((da + db - da * db) * cap as f64).round() as u64).min(cap)
}

/// Element-wise binary operators supported by [`Tile::elementwise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a ⊙ b` (Hadamard)
    Mul,
    /// `a ⊘ b` (zero where `b` is zero)
    Div,
}

impl ElemOp {
    /// Stable operator name for errors/plans.
    pub fn name(self) -> &'static str {
        match self {
            ElemOp::Add => "add",
            ElemOp::Sub => "sub",
            ElemOp::Mul => "elem_mul",
            ElemOp::Div => "elem_div",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rows: usize, cols: usize, v: Vec<f64>) -> Tile {
        Tile::dense(DenseTile::from_vec(rows, cols, v))
    }

    #[test]
    fn dense_mul() {
        let a = d(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = d(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c.as_dense().unwrap().data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn mixed_mul_matches_dense() {
        let ad = DenseTile::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let bd = DenseTile::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let expect = DenseTile::matmul(&ad, &bd).unwrap();

        let a_s = Tile::sparse(CsrTile::from_dense(&ad));
        let b_s = Tile::sparse(CsrTile::from_dense(&bd));
        let a_d = Tile::dense(ad);
        let b_d = Tile::dense(bd);

        for (a, b) in [(&a_s, &b_d), (&a_d, &b_s), (&a_s, &b_s)] {
            let c = a.mul(b).unwrap();
            assert_eq!(c.to_dense().unwrap(), expect, "repr combination mismatch");
        }
    }

    #[test]
    fn phantom_mul_propagates() {
        let a = Tile::phantom_dense(10, 20);
        let b = Tile::phantom_dense(20, 5);
        let c = a.mul(&b).unwrap();
        assert!(c.is_phantom());
        assert_eq!((c.rows(), c.cols()), (10, 5));
        assert_eq!(c.nnz(), 50); // dense × dense stays dense
    }

    #[test]
    fn phantom_mul_sparse_estimate_reasonable() {
        // 1% dense operands over a length-100 shared dimension:
        // p = 1 - (1 - 1e-4)^100 ≈ 1%.
        let a = Tile::phantom(100, 100, 100);
        let b = Tile::phantom(100, 100, 100);
        let c = a.mul(&b).unwrap();
        let density = c.nnz() as f64 / 10_000.0;
        assert!(density > 0.005 && density < 0.02, "density {density}");
    }

    #[test]
    fn phantom_taints_real() {
        let a = Tile::phantom_dense(2, 2);
        let b = d(2, 2, vec![1.0; 4]);
        assert!(a.mul(&b).unwrap().is_phantom());
        assert!(b.mul(&a).unwrap().is_phantom());
        let mut acc = b.clone();
        acc.add_assign(&a).unwrap();
        assert!(acc.is_phantom());
    }

    #[test]
    fn mul_shape_mismatch() {
        let a = Tile::zeros(2, 3);
        let b = Tile::zeros(2, 3);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn add_assign_combos() {
        let base = DenseTile::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]);
        let sp = CsrTile::from_dense(&base);
        // dense += sparse
        let mut t = Tile::dense(base.clone());
        t.add_assign(&Tile::sparse(sp.clone())).unwrap();
        assert_eq!(t.to_dense().unwrap().data(), &[2.0, 0.0, 0.0, 4.0]);
        // sparse += sparse stays sparse
        let mut t = Tile::sparse(sp.clone());
        t.add_assign(&Tile::sparse(sp.clone())).unwrap();
        assert!(t.is_sparse());
        assert_eq!(t.to_dense().unwrap().data(), &[2.0, 0.0, 0.0, 4.0]);
        // sparse += dense promotes
        let mut t = Tile::sparse(sp);
        t.add_assign(&Tile::dense(base)).unwrap();
        assert!(!t.is_sparse());
    }

    #[test]
    fn elementwise_all_ops() {
        let a = d(1, 2, vec![4.0, 9.0]);
        let b = d(1, 2, vec![2.0, 3.0]);
        assert_eq!(a.elementwise(&b, ElemOp::Add).unwrap().sum(), 18.0);
        assert_eq!(a.elementwise(&b, ElemOp::Sub).unwrap().sum(), 8.0);
        assert_eq!(a.elementwise(&b, ElemOp::Mul).unwrap().sum(), 35.0);
        assert_eq!(a.elementwise(&b, ElemOp::Div).unwrap().sum(), 5.0);
    }

    #[test]
    fn sparse_elementwise_stays_sparse() {
        let s = Tile::sparse(CsrTile::from_triples(2, 2, vec![(0, 0, 6.0)]));
        let dn = d(2, 2, vec![2.0; 4]);
        let m = s.elementwise(&dn, ElemOp::Mul).unwrap();
        assert!(m.is_sparse());
        assert_eq!(m.sum(), 12.0);
        let q = s.elementwise(&dn, ElemOp::Div).unwrap();
        assert!(q.is_sparse());
        assert_eq!(q.sum(), 3.0);
    }

    #[test]
    fn phantom_elementwise_nnz() {
        let a = Tile::phantom(10, 10, 50);
        let b = Tile::phantom(10, 10, 50);
        let add = a.elementwise(&b, ElemOp::Add).unwrap();
        assert_eq!(add.nnz(), 75); // union of independent 50% supports
        let mul = a.elementwise(&b, ElemOp::Mul).unwrap();
        assert_eq!(mul.nnz(), 25); // intersection
        let div = a.elementwise(&b, ElemOp::Div).unwrap();
        assert_eq!(div.nnz(), 50); // numerator support
    }

    #[test]
    fn transpose_and_scale() {
        let a = d(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        let mut p = Tile::phantom(2, 3, 4);
        let pt = p.transpose();
        assert_eq!((pt.rows(), pt.cols()), (3, 2));
        assert_eq!(pt.nnz(), 4);
        p.scale(0.0);
        assert_eq!(p.nnz(), 0);
    }

    #[test]
    fn map_preserves_kind() {
        let a = d(1, 2, vec![4.0, 9.0]);
        assert_eq!(a.map(f64::sqrt).sum(), 5.0);
        let s = Tile::sparse(CsrTile::from_triples(1, 2, vec![(0, 0, 4.0)]));
        let m = s.map(f64::sqrt);
        assert!(m.is_sparse());
        assert_eq!(m.sum(), 2.0);
        let p = Tile::phantom(1, 2, 1);
        assert!(p.map(f64::sqrt).is_phantom());
    }

    #[test]
    fn stored_bytes_picks_cheaper_for_phantom() {
        let dense_phantom = Tile::phantom_dense(100, 100);
        assert_eq!(dense_phantom.stored_bytes(), 24 + 80_000);
        let sparse_phantom = Tile::phantom(100, 100, 10);
        assert_eq!(sparse_phantom.stored_bytes(), 24 + 4 * 101 + 120);
    }

    #[test]
    fn density_and_caps() {
        let t = Tile::phantom(10, 10, 1_000_000); // capped at capacity
        assert_eq!(t.nnz(), 100);
        assert_eq!(t.density(), 1.0);
    }
}
