//! Compressed sparse row (CSR) tiles and sparse kernels.

use crate::dense::DenseTile;
use crate::error::{MatrixError, Result};

/// A CSR-encoded sparse tile.
///
/// Used for the sparse inputs of statistical workloads (e.g. document-term
/// matrices in GNMF). Products with dense tiles produce dense tiles, the
/// common pattern in `V × H'`-style updates.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrTile {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrTile {
    /// Creates an empty (all-zero) sparse tile.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrTile {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR tile from raw arrays, validating the structure.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(MatrixError::InvalidSparse(format!(
                "row_ptr length {} != rows+1 {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if col_idx.len() != values.len() {
            return Err(MatrixError::InvalidSparse(format!(
                "col_idx length {} != values length {}",
                col_idx.len(),
                values.len()
            )));
        }
        if row_ptr.first() != Some(&0) || *row_ptr.last().unwrap() as usize != values.len() {
            return Err(MatrixError::InvalidSparse(
                "row_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(MatrixError::InvalidSparse(
                "row_ptr must be non-decreasing".to_string(),
            ));
        }
        if col_idx.iter().any(|&c| c as usize >= cols) {
            return Err(MatrixError::InvalidSparse(
                "column index out of range".to_string(),
            ));
        }
        Ok(CsrTile {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR tile from `(row, col, value)` triples. Triples may be in
    /// any order; duplicate coordinates are summed.
    pub fn from_triples(rows: usize, cols: usize, mut triples: Vec<(usize, usize, f64)>) -> Self {
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0u32; rows + 1];
        let mut col_idx = Vec::with_capacity(triples.len());
        let mut values: Vec<f64> = Vec::with_capacity(triples.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triples {
            debug_assert!(r < rows && c < cols, "triple out of bounds");
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty after first push") += v;
            } else {
                row_ptr[r + 1] += 1;
                col_idx.push(c as u32);
                values.push(v);
                last = Some((r, c));
            }
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrTile {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts a dense tile, dropping explicit zeros.
    pub fn from_dense(d: &DenseTile) -> Self {
        let mut triples = Vec::new();
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                let v = d.get(i, j);
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        Self::from_triples(d.rows(), d.cols(), triples)
    }

    /// Materialises this tile as dense.
    pub fn to_dense(&self) -> DenseTile {
        let mut out = DenseTile::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_range(i) {
                out.set(i, self.col_idx[k] as usize, self.values[k]);
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> u64 {
        self.values.len() as u64
    }

    /// Raw CSR parts `(row_ptr, col_idx, values)`, for serialization.
    pub fn raw_parts(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize
    }

    /// Iterates stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row_range(i)
                .map(move |k| (i, self.col_idx[k] as usize, self.values[k]))
        })
    }

    fn check_spmm_shapes(&self, c: &DenseTile, b: &DenseTile) -> Result<()> {
        if self.cols != b.rows() {
            return Err(MatrixError::ShapeMismatch {
                op: "spmm",
                left: (self.rows, self.cols),
                right: (b.rows(), b.cols()),
            });
        }
        if c.rows() != self.rows || c.cols() != b.cols() {
            return Err(MatrixError::ShapeMismatch {
                op: "spmm-out",
                left: (c.rows(), c.cols()),
                right: (self.rows, b.cols()),
            });
        }
        Ok(())
    }

    /// `c += self × b` where `b` and `c` are dense (SpMM).
    ///
    /// Row-blocked with `LANES`-wide register accumulators: each block of
    /// output columns is loaded from `c` once, every stored entry of the
    /// row streams its gathered `b` lane into the accumulators, and the
    /// block stores back once — instead of a full load/store sweep of the
    /// `c` row per nonzero ([`spmm_acc_reference`](Self::spmm_acc_reference)).
    /// Each output element still accumulates in `k`-ascending order with
    /// the identical `c + aik·b` operations, so results are
    /// **bitwise-identical** to the reference kernel (pinned by the
    /// `kernel-conformance` invariant).
    pub fn spmm_acc(&self, c: &mut DenseTile, b: &DenseTile) -> Result<()> {
        self.check_spmm_shapes(c, b)?;
        const LANES: usize = 8;
        let n = b.cols();
        let bd = b.data();
        for i in 0..self.rows {
            let range = self.row_range(i);
            if range.is_empty() {
                continue;
            }
            let cols_idx = &self.col_idx[range.clone()];
            let vals = &self.values[range];
            let c_row = &mut c.data_mut()[i * n..(i + 1) * n];
            let mut j0 = 0;
            while j0 + LANES <= n {
                let mut acc: [f64; LANES] = c_row[j0..j0 + LANES].try_into().expect("lane");
                for (&cidx, &aik) in cols_idx.iter().zip(vals.iter()) {
                    let b_lane = &bd[cidx as usize * n + j0..][..LANES];
                    for (av, bv) in acc.iter_mut().zip(b_lane.iter()) {
                        *av += aik * *bv;
                    }
                }
                c_row[j0..j0 + LANES].copy_from_slice(&acc);
                j0 += LANES;
            }
            if j0 < n {
                let rem = n - j0;
                let mut acc = [0.0; LANES];
                acc[..rem].copy_from_slice(&c_row[j0..]);
                for (&cidx, &aik) in cols_idx.iter().zip(vals.iter()) {
                    let b_lane = &bd[cidx as usize * n + j0..][..rem];
                    for (av, bv) in acc.iter_mut().zip(b_lane.iter()) {
                        *av += aik * *bv;
                    }
                }
                c_row[j0..].copy_from_slice(&acc[..rem]);
            }
        }
        Ok(())
    }

    /// The original streaming SpMM: one full `c`-row axpy per stored
    /// entry. Kept as the cross-checked reference path for
    /// [`spmm_acc`](Self::spmm_acc) — the optimized kernel must match it
    /// bitwise.
    pub fn spmm_acc_reference(&self, c: &mut DenseTile, b: &DenseTile) -> Result<()> {
        self.check_spmm_shapes(c, b)?;
        let n = b.cols();
        for i in 0..self.rows {
            for k in self.row_range(i) {
                let aik = self.values[k];
                let brow = self.col_idx[k] as usize;
                let b_row = &b.data()[brow * n..(brow + 1) * n];
                let c_row = &mut c.data_mut()[i * n..(i + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *cv += aik * *bv;
                }
            }
        }
        Ok(())
    }

    fn check_gemm_ds_shapes(&self, c: &DenseTile, a: &DenseTile) -> Result<()> {
        if a.cols() != self.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "gemm-ds",
                left: (a.rows(), a.cols()),
                right: (self.rows, self.cols),
            });
        }
        if c.rows() != a.rows() || c.cols() != self.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "gemm-ds-out",
                left: (c.rows(), c.cols()),
                right: (a.rows(), self.cols),
            });
        }
        Ok(())
    }

    /// `c += a × self` where `a` and `c` are dense (dense × sparse).
    ///
    /// Row-blocked: four dense rows of `a`/`c` are processed per CSR
    /// traversal, scattering each sparse entry into four cache-resident
    /// `c` rows at once — quartering the index/value re-read traffic and
    /// replacing the reference kernel's column-strided scatter
    /// ([`gemm_ds_acc_reference`](Self::gemm_ds_acc_reference)) with
    /// row-local writes. For every output element the contributions still
    /// arrive in `(k, p)`-ascending order with identical arithmetic, so
    /// results are **bitwise-identical** to the reference kernel (pinned
    /// by the `kernel-conformance` invariant).
    pub fn gemm_ds_acc(&self, c: &mut DenseTile, a: &DenseTile) -> Result<()> {
        self.check_gemm_ds_shapes(c, a)?;
        let m = a.rows();
        let ac = a.cols();
        let cc = c.cols();
        let ad = a.data();
        let cd = c.data_mut();
        let mut i = 0;
        while i + 4 <= m {
            let (c01, c23) = cd[i * cc..(i + 4) * cc].split_at_mut(2 * cc);
            let (c0, c1) = c01.split_at_mut(cc);
            let (c2, c3) = c23.split_at_mut(cc);
            let a0 = &ad[i * ac..(i + 1) * ac];
            let a1 = &ad[(i + 1) * ac..(i + 2) * ac];
            let a2 = &ad[(i + 2) * ac..(i + 3) * ac];
            let a3 = &ad[(i + 3) * ac..(i + 4) * ac];
            for k in 0..self.rows {
                let (v0, v1, v2, v3) = (a0[k], a1[k], a2[k], a3[k]);
                for p in self.row_range(k) {
                    let j = self.col_idx[p] as usize;
                    let v = self.values[p];
                    c0[j] += v0 * v;
                    c1[j] += v1 * v;
                    c2[j] += v2 * v;
                    c3[j] += v3 * v;
                }
            }
            i += 4;
        }
        while i < m {
            let c_row = &mut cd[i * cc..(i + 1) * cc];
            let a_row = &ad[i * ac..(i + 1) * ac];
            for (k, &vk) in a_row.iter().enumerate() {
                for p in self.row_range(k) {
                    c_row[self.col_idx[p] as usize] += vk * self.values[p];
                }
            }
            i += 1;
        }
        Ok(())
    }

    /// The original column-scatter dense × sparse kernel: entry `(k, j)`
    /// of `self` scales column `k` of `a` into column `j` of `c`. Kept as
    /// the cross-checked reference path for
    /// [`gemm_ds_acc`](Self::gemm_ds_acc) — the optimized kernel must
    /// match it bitwise.
    pub fn gemm_ds_acc_reference(&self, c: &mut DenseTile, a: &DenseTile) -> Result<()> {
        self.check_gemm_ds_shapes(c, a)?;
        let m = a.rows();
        let ac = a.cols();
        let cc = c.cols();
        for k in 0..self.rows {
            for p in self.row_range(k) {
                let j = self.col_idx[p] as usize;
                let v = self.values[p];
                for i in 0..m {
                    let add = a.data()[i * ac + k] * v;
                    c.data_mut()[i * cc + j] += add;
                }
            }
        }
        Ok(())
    }

    /// Sparse × sparse product, returning a sparse tile (classic Gustavson
    /// row-by-row algorithm with a dense accumulator per row).
    pub fn spgemm(&self, b: &CsrTile) -> Result<CsrTile> {
        if self.cols != b.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "spgemm",
                left: (self.rows, self.cols),
                right: (b.rows, b.cols),
            });
        }
        let mut acc = vec![0.0f64; b.cols];
        let mut touched: Vec<u32> = Vec::new();
        let mut triples = Vec::new();
        for i in 0..self.rows {
            touched.clear();
            for k in self.row_range(i) {
                let aik = self.values[k];
                let arow = self.col_idx[k] as usize;
                for p in b.row_range(arow) {
                    let j = b.col_idx[p] as usize;
                    if acc[j] == 0.0 {
                        touched.push(j as u32);
                    }
                    acc[j] += aik * b.values[p];
                }
            }
            for &j in &touched {
                let v = acc[j as usize];
                if v != 0.0 {
                    triples.push((i, j as usize, v));
                }
                acc[j as usize] = 0.0;
            }
        }
        Ok(CsrTile::from_triples(self.rows, b.cols, triples))
    }

    /// Element-wise product with a dense tile, returning a sparse tile with
    /// the same (or smaller) support as `self`. This is the "mask" pattern:
    /// in GNMF the residual only needs evaluating at the support of V.
    pub fn elem_mul_dense(&self, d: &DenseTile) -> Result<CsrTile> {
        if self.rows != d.rows() || self.cols != d.cols() {
            return Err(MatrixError::ShapeMismatch {
                op: "sparse_elem_mul",
                left: (self.rows, self.cols),
                right: (d.rows(), d.cols()),
            });
        }
        let triples = self
            .iter()
            .map(|(i, j, v)| (i, j, v * d.get(i, j)))
            .filter(|&(_, _, v)| v != 0.0)
            .collect();
        Ok(CsrTile::from_triples(self.rows, self.cols, triples))
    }

    /// Element-wise division `self / d` at the support of `self` (zero
    /// denominators yield zero, matching [`DenseTile::div_assign_elem`]).
    pub fn elem_div_dense(&self, d: &DenseTile) -> Result<CsrTile> {
        if self.rows != d.rows() || self.cols != d.cols() {
            return Err(MatrixError::ShapeMismatch {
                op: "sparse_elem_div",
                left: (self.rows, self.cols),
                right: (d.rows(), d.cols()),
            });
        }
        let triples = self
            .iter()
            .map(|(i, j, v)| {
                let den = d.get(i, j);
                (i, j, if den == 0.0 { 0.0 } else { v / den })
            })
            .filter(|&(_, _, v)| v != 0.0)
            .collect();
        Ok(CsrTile::from_triples(self.rows, self.cols, triples))
    }

    /// Sparse addition.
    pub fn add(&self, other: &CsrTile) -> Result<CsrTile> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "sparse_add",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut triples: Vec<(usize, usize, f64)> = self.iter().collect();
        triples.extend(other.iter());
        let merged = CsrTile::from_triples(self.rows, self.cols, triples);
        // Drop entries that cancelled to exactly zero.
        let surviving = merged.iter().filter(|&(_, _, v)| v != 0.0).collect();
        Ok(CsrTile::from_triples(self.rows, self.cols, surviving))
    }

    /// Transpose, returning a new CSR tile.
    pub fn transpose(&self) -> CsrTile {
        let triples = self.iter().map(|(i, j, v)| (j, i, v)).collect();
        CsrTile::from_triples(self.cols, self.rows, triples)
    }

    /// Scales every stored value by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrTile {
        // [1 0 2]
        // [0 0 3]
        CsrTile::from_triples(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0)])
    }

    #[test]
    fn triples_roundtrip_dense() {
        let s = sample();
        let d = s.to_dense();
        assert_eq!(d.data(), &[1.0, 0.0, 2.0, 0.0, 0.0, 3.0]);
        assert_eq!(CsrTile::from_dense(&d), s);
    }

    #[test]
    fn duplicate_triples_are_summed() {
        let s = CsrTile::from_triples(1, 2, vec![(0, 1, 2.0), (0, 1, 3.0)]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense().data(), &[0.0, 5.0]);
    }

    #[test]
    fn unsorted_triples() {
        let s = CsrTile::from_triples(2, 2, vec![(1, 1, 4.0), (0, 0, 1.0), (1, 0, 3.0)]);
        assert_eq!(s.to_dense().data(), &[1.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn from_raw_validation() {
        assert!(CsrTile::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err()); // short row_ptr
        assert!(CsrTile::from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err()); // len mismatch
        assert!(CsrTile::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err()); // col oob
        assert!(CsrTile::from_raw(1, 2, vec![1, 1], vec![], vec![]).is_err()); // bad start
        assert!(CsrTile::from_raw(1, 2, vec![0, 1], vec![1], vec![2.0]).is_ok());
    }

    #[test]
    fn spmm_matches_dense() {
        let s = sample();
        let b = DenseTile::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut c = DenseTile::zeros(2, 2);
        s.spmm_acc(&mut c, &b).unwrap();
        let dense_c = DenseTile::matmul(&s.to_dense(), &b).unwrap();
        assert_eq!(c, dense_c);
    }

    #[test]
    fn spmm_accumulates() {
        let s = sample();
        let b = DenseTile::from_vec(3, 2, vec![1.0; 6]);
        let mut c = DenseTile::from_vec(2, 2, vec![10.0; 4]);
        s.spmm_acc(&mut c, &b).unwrap();
        assert_eq!(c.data(), &[13.0, 13.0, 13.0, 13.0]);
    }

    #[test]
    fn gemm_ds_matches_dense() {
        let s = sample(); // 2x3
        let a = DenseTile::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut c = DenseTile::zeros(2, 3);
        s.gemm_ds_acc(&mut c, &a).unwrap();
        let expect = DenseTile::matmul(&a, &s.to_dense()).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = sample(); // 2x3
        let b = a.transpose(); // 3x2
        let c = a.spgemm(&b).unwrap();
        let expect = DenseTile::matmul(&a.to_dense(), &b.to_dense()).unwrap();
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn spgemm_shape_mismatch() {
        let a = sample();
        assert!(a.spgemm(&sample()).is_err());
    }

    #[test]
    fn elem_ops_on_support() {
        let s = sample();
        let d = DenseTile::from_vec(2, 3, vec![2.0; 6]);
        let m = s.elem_mul_dense(&d).unwrap();
        assert_eq!(m.to_dense().data(), &[2.0, 0.0, 4.0, 0.0, 0.0, 6.0]);
        let q = s.elem_div_dense(&d).unwrap();
        assert_eq!(q.to_dense().data(), &[0.5, 0.0, 1.0, 0.0, 0.0, 1.5]);
    }

    #[test]
    fn elem_div_zero_denominator() {
        let s = sample();
        let zeros = DenseTile::zeros(2, 3);
        let q = s.elem_div_dense(&zeros).unwrap();
        assert_eq!(q.nnz(), 0);
    }

    #[test]
    fn sparse_add_and_cancel() {
        let s = sample();
        let mut neg = s.clone();
        neg.scale(-1.0);
        let z = s.add(&neg).unwrap();
        assert_eq!(z.nnz(), 0);
        let two = s.add(&s).unwrap();
        assert_eq!(two.to_dense().data(), &[2.0, 0.0, 4.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let s = sample();
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn reductions() {
        let s = sample();
        assert_eq!(s.sum(), 6.0);
        assert_eq!(s.frob_sq(), 14.0);
    }

    #[test]
    fn iter_yields_sorted_triples() {
        let s = sample();
        let t: Vec<_> = s.iter().collect();
        assert_eq!(t, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0)]);
    }
}
