//! Byte-level compression for the tile spill path.
//!
//! A std-only LZSS variant sitting *behind* the
//! [`crate::serialize::encode_tile`] / [`crate::serialize::decode_tile`]
//! boundary: the spill plane compresses the encoded wire bytes of a tile
//! before appending them to a blob segment and decompresses on read-back,
//! so the codec never needs to know about tile structure and the wire
//! format stays the single source of truth.
//!
//! Format of a compressed stream (all little-endian):
//!
//! ```text
//! [raw_len: u32] [token stream]
//! token stream = (control byte; 8 flags LSB-first) × (8 tokens)
//!   flag 0 → literal: 1 byte, copied verbatim
//!   flag 1 → match:   dist u16 (1..=65535 back), len u8 (+MIN_MATCH)
//! ```
//!
//! Matching is greedy over a 4-byte rolling hash with single-probe hash
//! heads — O(n), deterministic, no allocation besides the output. On
//! incompressible input the flag bits cost up to 12.5% growth, so the
//! spill path stores whichever of `{raw, compressed}` is smaller (see
//! [`maybe_compress`]); the identity path doubles as the cross-checked
//! reference for the conformance tests.

use crate::error::{MatrixError, Result};

/// Shortest match worth encoding (a match token costs 3 bytes + 1 flag
/// bit; a 4-byte match is the break-even point).
const MIN_MATCH: usize = 4;
/// Longest match one token can carry (`MIN_MATCH + u8::MAX`).
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Match window: how far back a distance can reach (u16 range).
const WINDOW: usize = 65_535;
/// Hash-head table size (power of two).
const HASH_BITS: u32 = 15;

/// How a spilled buffer is stored, recorded next to the payload so
/// read-back knows whether to decompress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Stored verbatim — the uncompressed reference path.
    Raw,
    /// LZSS-compressed ([`lz_compress`] / [`lz_decompress`]).
    Lz,
}

impl Codec {
    /// Stable on-disk tag for blob-segment framing.
    pub fn tag(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Lz => 1,
        }
    }

    /// Inverse of [`Codec::tag`].
    pub fn from_tag(tag: u8) -> Result<Codec> {
        match tag {
            0 => Ok(Codec::Raw),
            1 => Ok(Codec::Lz),
            t => Err(MatrixError::Corrupt(format!("unknown codec tag {t}"))),
        }
    }
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // FNV-ish multiplicative hash of a 4-byte prefix, folded to HASH_BITS.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` with greedy LZSS. Always succeeds; the output may
/// be larger than the input on incompressible data (callers that care use
/// [`maybe_compress`]).
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    assert!(
        input.len() <= u32::MAX as usize,
        "spill buffers are tile-sized; {} bytes exceeds the u32 frame",
        input.len()
    );
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    // heads[h] = last position whose 4-byte prefix hashed to h (+1; 0 = none).
    let mut heads = vec![0u32; 1 << HASH_BITS];
    let mut pos = 0usize;
    // Control byte staging: up to 8 tokens buffered, then flushed.
    let mut flags = 0u8;
    let mut nflags = 0u8;
    let mut pending: Vec<u8> = Vec::with_capacity(8 * 3);
    let flush = |out: &mut Vec<u8>, flags: &mut u8, nflags: &mut u8, pending: &mut Vec<u8>| {
        if *nflags > 0 {
            out.push(*flags);
            out.extend_from_slice(pending);
            pending.clear();
            *flags = 0;
            *nflags = 0;
        }
    };
    while pos < input.len() {
        let mut emitted_match = false;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let cand = heads[h] as usize;
            heads[h] = (pos + 1) as u32;
            if cand > 0 {
                let cand = cand - 1;
                let dist = pos - cand;
                if (1..=WINDOW).contains(&dist) {
                    // Extend the match as far as it goes (bounded).
                    let limit = (input.len() - pos).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && input[cand + len] == input[pos + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH {
                        flags |= 1 << nflags;
                        pending.extend_from_slice(&(dist as u16).to_le_bytes());
                        pending.push((len - MIN_MATCH) as u8);
                        nflags += 1;
                        // Re-seed the hash head at a mid-match position so
                        // runs keep finding themselves.
                        let mid = pos + len / 2;
                        if mid + MIN_MATCH <= input.len() {
                            heads[hash4(&input[mid..])] = (mid + 1) as u32;
                        }
                        pos += len;
                        emitted_match = true;
                    }
                }
            }
        }
        if !emitted_match {
            pending.push(input[pos]);
            nflags += 1;
            pos += 1;
        }
        if nflags == 8 {
            flush(&mut out, &mut flags, &mut nflags, &mut pending);
        }
    }
    flush(&mut out, &mut flags, &mut nflags, &mut pending);
    out
}

/// Decompresses a [`lz_compress`] stream. Errors on any framing
/// inconsistency (truncation, out-of-range distances, length drift).
pub fn lz_decompress(input: &[u8]) -> Result<Vec<u8>> {
    if input.len() < 4 {
        return Err(MatrixError::Corrupt("lz stream shorter than header".into()));
    }
    let raw_len = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 4usize;
    while out.len() < raw_len {
        if pos >= input.len() {
            return Err(MatrixError::Corrupt("lz stream truncated at flags".into()));
        }
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if flags & (1 << bit) == 0 {
                let b = *input
                    .get(pos)
                    .ok_or_else(|| MatrixError::Corrupt("lz literal truncated".into()))?;
                out.push(b);
                pos += 1;
            } else {
                if pos + 3 > input.len() {
                    return Err(MatrixError::Corrupt("lz match token truncated".into()));
                }
                let dist = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                let len = input[pos + 2] as usize + MIN_MATCH;
                pos += 3;
                if dist == 0 || dist > out.len() {
                    return Err(MatrixError::Corrupt(format!(
                        "lz match distance {dist} exceeds {} decoded bytes",
                        out.len()
                    )));
                }
                if out.len() + len > raw_len {
                    return Err(MatrixError::Corrupt("lz match overruns raw length".into()));
                }
                // Byte-at-a-time copy: overlapping matches (dist < len)
                // are the RLE case and must self-reference.
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

/// Compresses when it helps: returns `(Codec::Lz, compressed)` when the
/// compressed form is strictly smaller, `(Codec::Raw, input.to_vec())`
/// otherwise — so a spilled buffer never grows past its raw size.
pub fn maybe_compress(input: &[u8]) -> (Codec, Vec<u8>) {
    let lz = lz_compress(input);
    if lz.len() < input.len() {
        (Codec::Lz, lz)
    } else {
        (Codec::Raw, input.to_vec())
    }
}

/// Decodes a buffer stored under `codec` back to raw bytes.
pub fn decompress(codec: Codec, data: &[u8]) -> Result<Vec<u8>> {
    match codec {
        Codec::Raw => Ok(data.to_vec()),
        Codec::Lz => lz_decompress(data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{decode_tile, encode_tile};
    use crate::Tile;
    use proptest::prelude::*;

    fn roundtrip(input: &[u8]) {
        let lz = lz_compress(input);
        let back = lz_decompress(&lz).expect("decompress");
        assert_eq!(back, input, "lz roundtrip must be identity");
        let (codec, stored) = maybe_compress(input);
        assert_eq!(decompress(codec, &stored).unwrap(), input);
        assert!(
            stored.len() <= input.len().max(4),
            "maybe_compress grew {} -> {}",
            input.len(),
            stored.len()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(&[]);
        roundtrip(&[7]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[0; 4]);
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let input: Vec<u8> = (0..65_536u32).map(|i| (i % 16) as u8).collect();
        let lz = lz_compress(&input);
        assert!(
            lz.len() * 8 < input.len(),
            "16-byte cycle should compress >8x, got {} -> {}",
            input.len(),
            lz.len()
        );
        assert_eq!(lz_decompress(&lz).unwrap(), input);
    }

    #[test]
    fn zero_tile_encoding_compresses() {
        let t = Tile::zeros(64, 64);
        let wire = encode_tile(&t);
        let (codec, stored) = maybe_compress(&wire);
        assert_eq!(codec, Codec::Lz);
        assert!(
            stored.len() * 10 < wire.len(),
            "all-zero dense tile: {} -> {}",
            wire.len(),
            stored.len()
        );
        let back = decode_tile(decompress(codec, &stored).unwrap().into()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn incompressible_input_stays_raw() {
        // A full-period LCG byte stream has no 4-byte repeats to speak of.
        let mut x = 0x2545_F491u32;
        let input: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        let (codec, stored) = maybe_compress(&input);
        assert_eq!(codec, Codec::Raw);
        assert_eq!(stored, input);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        assert!(lz_decompress(&[]).is_err());
        assert!(lz_decompress(&[9, 0, 0]).is_err());
        // Claims 100 raw bytes, provides nothing.
        assert!(lz_decompress(&[100, 0, 0, 0]).is_err());
        // Match referencing before the start of the output.
        let bad = [4u8, 0, 0, 0, 0b0000_0001, 9, 0, 0];
        assert!(lz_decompress(&bad).is_err());
        // Truncated match token.
        let bad = [8u8, 0, 0, 0, 0b0000_0010, b'a', 1, 0];
        assert!(lz_decompress(&bad).is_err());
        assert!(Codec::from_tag(9).is_err());
    }

    #[test]
    fn overlapping_match_is_rle() {
        // 1 literal then a long self-overlapping match (dist 1).
        let input = vec![42u8; 300];
        let lz = lz_compress(&input);
        assert!(lz.len() < 20, "run of 300 should be a few tokens: {lz:?}");
        assert_eq!(lz_decompress(&lz).unwrap(), input);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..2048)) {
            roundtrip(&input);
        }

        #[test]
        fn prop_roundtrip_structured_bytes(
            seed in any::<u64>(),
            period in 1usize..64,
            len in 0usize..4096,
        ) {
            // Noisy periodic data — the spill path's realistic middle ground.
            let mut x = seed | 1;
            let input: Vec<u8> = (0..len)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if x >> 61 == 0 { (x >> 32) as u8 } else { (i % period) as u8 }
                })
                .collect();
            roundtrip(&input);
        }

        #[test]
        fn prop_tile_wire_roundtrip(rows in 1usize..24, cols in 1usize..24, seed in any::<u64>()) {
            let dense = crate::gen::dense_uniform_tile(seed, 0, 0, rows, cols, -1.0, 1.0);
            let t = Tile::dense(dense);
            let wire = encode_tile(&t);
            let (codec, stored) = maybe_compress(&wire);
            let raw = decompress(codec, &stored).unwrap();
            prop_assert_eq!(&raw[..], &wire[..]);
            let back = decode_tile(raw.into()).unwrap();
            prop_assert_eq!(back, t);
        }
    }
}
