//! Matrix-level metadata: logical dimensions, tiling, and the tile grid.

use serde::{Deserialize, Serialize};

/// Metadata describing a tiled matrix: logical dimensions plus the tile
/// side length. The element data itself lives in the DFS (or in a
/// [`crate::LocalMatrix`] for in-process use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatrixMeta {
    /// Logical row count.
    pub rows: usize,
    /// Logical column count.
    pub cols: usize,
    /// Tile side length (tiles are square except at the trailing edges).
    pub tile_size: usize,
}

impl MatrixMeta {
    /// Creates metadata; `tile_size` must be non-zero.
    pub fn new(rows: usize, cols: usize, tile_size: usize) -> Self {
        assert!(tile_size > 0, "tile_size must be positive");
        MatrixMeta {
            rows,
            cols,
            tile_size,
        }
    }

    /// The tile grid for this matrix.
    pub fn grid(&self) -> TileGrid {
        TileGrid {
            tile_rows: self.rows.div_ceil(self.tile_size),
            tile_cols: self.cols.div_ceil(self.tile_size),
        }
    }

    /// Dimensions of tile `(ti, tj)`, accounting for ragged edges.
    pub fn tile_dims(&self, ti: usize, tj: usize) -> (usize, usize) {
        let g = self.grid();
        debug_assert!(
            ti < g.tile_rows && tj < g.tile_cols,
            "tile index out of grid"
        );
        let r = if ti + 1 == g.tile_rows && !self.rows.is_multiple_of(self.tile_size) {
            self.rows % self.tile_size
        } else {
            self.tile_size
        };
        let c = if tj + 1 == g.tile_cols && !self.cols.is_multiple_of(self.tile_size) {
            self.cols % self.tile_size
        } else {
            self.tile_size
        };
        (r, c)
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        let g = self.grid();
        g.tile_rows * g.tile_cols
    }

    /// Total number of elements.
    pub fn elements(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Metadata of the transpose.
    pub fn transposed(&self) -> MatrixMeta {
        MatrixMeta {
            rows: self.cols,
            cols: self.rows,
            tile_size: self.tile_size,
        }
    }

    /// Expected stored size in bytes at a given density (8 bytes/element
    /// dense, 12 bytes/entry + row pointers sparse, whichever is smaller —
    /// matching [`crate::Tile::stored_bytes`] at tile granularity).
    pub fn stored_bytes_at_density(&self, density: f64) -> u64 {
        let nnz = (self.elements() as f64 * density.clamp(0.0, 1.0)) as u64;
        let dense = self.elements() * 8;
        let sparse = 4 * (self.rows as u64 + self.grid().tile_rows as u64) + 12 * nnz;
        let header = 24 * self.tile_count() as u64;
        header + dense.min(sparse)
    }
}

/// Extent of a matrix' tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileGrid {
    /// Number of tile rows.
    pub tile_rows: usize,
    /// Number of tile columns.
    pub tile_cols: usize,
}

impl TileGrid {
    /// Iterates all `(ti, tj)` coordinates in row-major order.
    pub fn iter(self) -> impl Iterator<Item = (usize, usize)> {
        let cols = self.tile_cols;
        (0..self.tile_rows).flat_map(move |ti| (0..cols).map(move |tj| (ti, tj)))
    }

    /// Total tiles in the grid.
    pub fn count(&self) -> usize {
        self.tile_rows * self.tile_cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_exact_division() {
        let m = MatrixMeta::new(4000, 2000, 1000);
        let g = m.grid();
        assert_eq!((g.tile_rows, g.tile_cols), (4, 2));
        assert_eq!(m.tile_count(), 8);
        assert_eq!(m.tile_dims(3, 1), (1000, 1000));
    }

    #[test]
    fn grid_ragged_edges() {
        let m = MatrixMeta::new(2500, 1700, 1000);
        let g = m.grid();
        assert_eq!((g.tile_rows, g.tile_cols), (3, 2));
        assert_eq!(m.tile_dims(0, 0), (1000, 1000));
        assert_eq!(m.tile_dims(2, 0), (500, 1000));
        assert_eq!(m.tile_dims(0, 1), (1000, 700));
        assert_eq!(m.tile_dims(2, 1), (500, 700));
    }

    #[test]
    fn tiny_matrix_single_tile() {
        let m = MatrixMeta::new(3, 7, 1000);
        assert_eq!(m.tile_count(), 1);
        assert_eq!(m.tile_dims(0, 0), (3, 7));
    }

    #[test]
    fn transposed_meta() {
        let m = MatrixMeta::new(10, 20, 4);
        let t = m.transposed();
        assert_eq!((t.rows, t.cols), (20, 10));
        assert_eq!(t.tile_size, 4);
    }

    #[test]
    fn grid_iter_covers_all() {
        let m = MatrixMeta::new(25, 25, 10);
        let coords: Vec<_> = m.grid().iter().collect();
        assert_eq!(coords.len(), 9);
        assert_eq!(coords[0], (0, 0));
        assert_eq!(*coords.last().unwrap(), (2, 2));
    }

    #[test]
    fn stored_bytes_dense_vs_sparse() {
        let m = MatrixMeta::new(1000, 1000, 1000);
        let dense = m.stored_bytes_at_density(1.0);
        let sparse = m.stored_bytes_at_density(0.01);
        assert!(
            sparse < dense / 10,
            "1% density should be far smaller: {sparse} vs {dense}"
        );
    }

    #[test]
    #[should_panic(expected = "tile_size must be positive")]
    fn zero_tile_size_panics() {
        MatrixMeta::new(1, 1, 0);
    }
}
