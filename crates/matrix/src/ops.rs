//! Flop and byte accounting shared by the execution engine (to charge
//! simulated time for real work) and the cost models in `cumulon-core`
//! (to predict it).

use crate::tile::Tile;

/// Work performed by one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Work {
    /// Floating-point operations (multiply-adds count as 2).
    pub flops: f64,
    /// Bytes of input read by the kernel.
    pub bytes_in: f64,
    /// Bytes of output produced by the kernel.
    pub bytes_out: f64,
}

impl Work {
    /// Component-wise sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Work) -> Work {
        Work {
            flops: self.flops + other.flops,
            bytes_in: self.bytes_in + other.bytes_in,
            bytes_out: self.bytes_out + other.bytes_out,
        }
    }
}

impl std::iter::Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        iter.fold(Work::default(), Work::add)
    }
}

/// Work of a tile product `a × b`.
///
/// Dense×dense costs `2·m·l·n`; products with sparse operands scale with
/// the realised nnz: each stored entry of the sparse side touches a full
/// row/column of the dense side.
pub fn mul_work(a: &Tile, b: &Tile) -> Work {
    let m = a.rows() as f64;
    let l = a.cols() as f64;
    let n = b.cols() as f64;
    let bytes_in = (a.stored_bytes() + b.stored_bytes()) as f64;
    let flops = match (
        a.is_sparse() || a.is_phantom(),
        b.is_sparse() || b.is_phantom(),
    ) {
        // Fully dense operands: classic GEMM count.
        (false, false) => 2.0 * m * l * n,
        _ => {
            // nnz-proportional: entry (i,k) of a combines with row k of b
            // (density-weighted) and vice versa; take the dominating side.
            let a_eff = a.nnz() as f64 * 2.0 * n * b.density().clamp(1e-12, 1.0);
            let b_eff = b.nnz() as f64 * 2.0 * m * a.density().clamp(1e-12, 1.0);
            let dense_bound = 2.0 * m * l * n;
            a_eff.max(b_eff).min(dense_bound)
        }
    };
    // Output bytes are the product tile's storage; callers that accumulate
    // in memory should only charge the final write.
    let out_rows = a.rows();
    let out_cols = b.cols();
    let bytes_out = (out_rows * out_cols * 8) as f64;
    Work {
        flops,
        bytes_in,
        bytes_out,
    }
}

/// Work of an element-wise combination of two same-shape tiles.
pub fn elementwise_work(a: &Tile, b: &Tile) -> Work {
    let touched = if a.is_sparse() && b.is_sparse() {
        (a.nnz() + b.nnz()) as f64
    } else {
        (a.rows() * a.cols()) as f64
    };
    Work {
        flops: touched,
        bytes_in: (a.stored_bytes() + b.stored_bytes()) as f64,
        bytes_out: a.stored_bytes() as f64,
    }
}

/// Work of adding `src` into an accumulator of the same shape.
pub fn add_work(acc: &Tile, src: &Tile) -> Work {
    Work {
        flops: src.nnz() as f64,
        bytes_in: src.stored_bytes() as f64,
        bytes_out: acc.stored_bytes() as f64,
    }
}

/// Work of transposing a tile.
pub fn transpose_work(t: &Tile) -> Work {
    let b = t.stored_bytes() as f64;
    Work {
        flops: 0.0,
        bytes_in: b,
        bytes_out: b,
    }
}

/// Work of a unary scalar map over a tile.
pub fn map_work(t: &Tile) -> Work {
    let touched = if t.is_sparse() {
        t.nnz() as f64
    } else {
        (t.rows() * t.cols()) as f64
    };
    let b = t.stored_bytes() as f64;
    Work {
        flops: touched,
        bytes_in: b,
        bytes_out: b,
    }
}

/// Analytic dense-GEMM flops for planning (no tiles in hand yet).
pub fn gemm_flops(m: u64, l: u64, n: u64) -> f64 {
    2.0 * m as f64 * l as f64 * n as f64
}

/// Analytic flops for a multiply where the left side has the given density
/// (sparse×dense pattern).
pub fn spmm_flops(m: u64, l: u64, n: u64, left_density: f64) -> f64 {
    gemm_flops(m, l, n) * left_density.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dense_mul_work_is_2mln() {
        let a = Tile::zeros(10, 20);
        let b = Tile::zeros(20, 30);
        let w = mul_work(&a, &b);
        assert_eq!(w.flops, 2.0 * 10.0 * 20.0 * 30.0);
        assert_eq!(w.bytes_out, 10.0 * 30.0 * 8.0);
    }

    #[test]
    fn sparse_mul_work_scales_with_nnz() {
        let dense_a = Tile::dense(gen::dense_uniform_tile(1, 0, 0, 100, 100, 0.5, 1.0));
        let sparse_a = Tile::sparse(gen::sparse_uniform_tile(1, 0, 0, 100, 100, 0.01));
        let b = Tile::dense(gen::dense_uniform_tile(2, 0, 0, 100, 100, 0.5, 1.0));
        let dense_w = mul_work(&dense_a, &b);
        let sparse_w = mul_work(&sparse_a, &b);
        assert!(
            sparse_w.flops < dense_w.flops / 20.0,
            "sparse {} vs dense {}",
            sparse_w.flops,
            dense_w.flops
        );
    }

    #[test]
    fn sparse_work_never_exceeds_dense_bound() {
        let a = Tile::phantom(50, 50, 50 * 50);
        let b = Tile::phantom(50, 50, 50 * 50);
        let w = mul_work(&a, &b);
        assert!(w.flops <= 2.0 * 50.0f64.powi(3) + 1e-6);
    }

    #[test]
    fn elementwise_sparse_cheaper() {
        let s = Tile::sparse(gen::sparse_uniform_tile(3, 0, 0, 100, 100, 0.01));
        let d = Tile::zeros(100, 100);
        let ws = elementwise_work(&s, &s);
        let wd = elementwise_work(&d, &d);
        assert!(ws.flops < wd.flops / 10.0);
    }

    #[test]
    fn work_sum() {
        let w1 = Work {
            flops: 1.0,
            bytes_in: 2.0,
            bytes_out: 3.0,
        };
        let w2 = Work {
            flops: 10.0,
            bytes_in: 20.0,
            bytes_out: 30.0,
        };
        let s: Work = [w1, w2].into_iter().sum();
        assert_eq!(
            s,
            Work {
                flops: 11.0,
                bytes_in: 22.0,
                bytes_out: 33.0
            }
        );
    }

    #[test]
    fn analytic_flops() {
        assert_eq!(gemm_flops(10, 10, 10), 2000.0);
        assert_eq!(spmm_flops(10, 10, 10, 0.1), 200.0);
    }

    #[test]
    fn transpose_and_map_work() {
        let t = Tile::zeros(10, 10);
        assert_eq!(transpose_work(&t).flops, 0.0);
        assert_eq!(map_work(&t).flops, 100.0);
        assert_eq!(add_work(&t, &t).flops, 0.0); // zeros have no nnz
    }
}
