//! In-process tiled matrices, used by tests, reference implementations and
//! the driver-side pieces of workloads (small vectors/scalars).

use crate::dense::DenseTile;
use crate::error::{MatrixError, Result};
use crate::gen::Generator;
use crate::meta::MatrixMeta;
use crate::tile::{ElemOp, Tile};

/// A tiled matrix held entirely in memory, tile grid in row-major order.
///
/// `LocalMatrix` exists so that the distributed engine's results can be
/// collected and compared against reference computations, and so workloads
/// can manipulate driver-resident small matrices without a cluster round
/// trip.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalMatrix {
    meta: MatrixMeta,
    tiles: Vec<Tile>,
}

impl LocalMatrix {
    /// Assembles a matrix from tiles in row-major grid order.
    pub fn from_tiles(meta: MatrixMeta, tiles: Vec<Tile>) -> Result<Self> {
        let grid = meta.grid();
        if tiles.len() != grid.count() {
            return Err(MatrixError::Corrupt(format!(
                "expected {} tiles, got {}",
                grid.count(),
                tiles.len()
            )));
        }
        for (idx, (ti, tj)) in grid.iter().enumerate() {
            let want = meta.tile_dims(ti, tj);
            let got = (tiles[idx].rows(), tiles[idx].cols());
            if want != got {
                return Err(MatrixError::Corrupt(format!(
                    "tile ({ti},{tj}) has dims {got:?}, expected {want:?}"
                )));
            }
        }
        Ok(LocalMatrix { meta, tiles })
    }

    /// Materialises a full matrix from a generator.
    pub fn generate(meta: MatrixMeta, generator: &Generator) -> Self {
        let tiles = meta
            .grid()
            .iter()
            .map(|(ti, tj)| generator.generate(&meta, ti, tj))
            .collect();
        LocalMatrix { meta, tiles }
    }

    /// Builds from a dense row-major buffer of the full logical matrix.
    pub fn from_dense(rows: usize, cols: usize, tile_size: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols);
        let meta = MatrixMeta::new(rows, cols, tile_size);
        let tiles = meta
            .grid()
            .iter()
            .map(|(ti, tj)| {
                let (r, c) = meta.tile_dims(ti, tj);
                let base_r = ti * tile_size;
                let base_c = tj * tile_size;
                Tile::dense(DenseTile::from_fn(r, c, |i, j| {
                    data[(base_r + i) * cols + (base_c + j)]
                }))
            })
            .collect();
        LocalMatrix { meta, tiles }
    }

    /// Flattens to a dense row-major buffer (fails on phantom tiles).
    pub fn to_dense_vec(&self) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.meta.rows * self.meta.cols];
        for (idx, (ti, tj)) in self.meta.grid().iter().enumerate() {
            let d = self.tiles[idx].to_dense()?;
            let base_r = ti * self.meta.tile_size;
            let base_c = tj * self.meta.tile_size;
            for i in 0..d.rows() {
                for j in 0..d.cols() {
                    out[(base_r + i) * self.meta.cols + (base_c + j)] = d.get(i, j);
                }
            }
        }
        Ok(out)
    }

    /// Metadata accessor.
    pub fn meta(&self) -> MatrixMeta {
        self.meta
    }

    /// Tile accessor by grid coordinate.
    pub fn tile(&self, ti: usize, tj: usize) -> Result<&Tile> {
        let g = self.meta.grid();
        if ti >= g.tile_rows || tj >= g.tile_cols {
            return Err(MatrixError::TileOutOfBounds {
                tile: (ti, tj),
                grid: (g.tile_rows, g.tile_cols),
            });
        }
        Ok(&self.tiles[ti * g.tile_cols + tj])
    }

    /// Iterates `((ti, tj), tile)`.
    pub fn iter_tiles(&self) -> impl Iterator<Item = ((usize, usize), &Tile)> + '_ {
        self.meta.grid().iter().zip(self.tiles.iter())
    }

    /// Total non-zeros across tiles.
    pub fn nnz(&self) -> u64 {
        self.tiles.iter().map(Tile::nnz).sum()
    }

    /// Tiled matrix product. Requires matching tile sizes and inner
    /// dimensions.
    pub fn matmul(&self, other: &LocalMatrix) -> Result<LocalMatrix> {
        if self.meta.cols != other.meta.rows || self.meta.tile_size != other.meta.tile_size {
            return Err(MatrixError::ShapeMismatch {
                op: "local_matmul",
                left: (self.meta.rows, self.meta.cols),
                right: (other.meta.rows, other.meta.cols),
            });
        }
        let out_meta = MatrixMeta::new(self.meta.rows, other.meta.cols, self.meta.tile_size);
        let lg = self.meta.grid();
        let og = other.meta.grid();
        let mut tiles = Vec::with_capacity(out_meta.tile_count());
        for ti in 0..lg.tile_rows {
            for tj in 0..og.tile_cols {
                let mut acc: Option<Tile> = None;
                for tk in 0..lg.tile_cols {
                    let part = self.tile(ti, tk)?.mul(other.tile(tk, tj)?)?;
                    match &mut acc {
                        None => acc = Some(part),
                        Some(a) => a.add_assign(&part)?,
                    }
                }
                let (r, c) = out_meta.tile_dims(ti, tj);
                tiles.push(acc.unwrap_or_else(|| Tile::zeros(r, c)));
            }
        }
        LocalMatrix::from_tiles(out_meta, tiles)
    }

    /// Element-wise combination of two same-shape matrices.
    pub fn elementwise(&self, other: &LocalMatrix, op: ElemOp) -> Result<LocalMatrix> {
        if self.meta != other.meta {
            return Err(MatrixError::ShapeMismatch {
                op: op.name(),
                left: (self.meta.rows, self.meta.cols),
                right: (other.meta.rows, other.meta.cols),
            });
        }
        let tiles = self
            .tiles
            .iter()
            .zip(other.tiles.iter())
            .map(|(a, b)| a.elementwise(b, op))
            .collect::<Result<Vec<_>>>()?;
        LocalMatrix::from_tiles(self.meta, tiles)
    }

    /// Transposes the whole matrix (tile grid and each tile).
    pub fn transpose(&self) -> LocalMatrix {
        let out_meta = self.meta.transposed();
        let g = self.meta.grid();
        let mut tiles = Vec::with_capacity(self.tiles.len());
        for tj in 0..g.tile_cols {
            for ti in 0..g.tile_rows {
                tiles.push(self.tiles[ti * g.tile_cols + tj].transpose());
            }
        }
        LocalMatrix {
            meta: out_meta,
            tiles,
        }
    }

    /// Scales all tiles by `s`.
    pub fn scale(&mut self, s: f64) {
        for t in &mut self.tiles {
            t.scale(s);
        }
    }

    /// Applies a scalar map element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Copy) -> LocalMatrix {
        let tiles = self.tiles.iter().map(|t| t.map(f)).collect();
        LocalMatrix {
            meta: self.meta,
            tiles,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.tiles.iter().map(Tile::sum).sum()
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.tiles.iter().map(Tile::frob_sq).sum::<f64>().sqrt()
    }

    /// Maximum absolute element difference against another matrix, for
    /// approximate equality checks in tests.
    pub fn max_abs_diff(&self, other: &LocalMatrix) -> Result<f64> {
        let a = self.to_dense_vec()?;
        let b = other.to_dense_vec()?;
        if a.len() != b.len() {
            return Err(MatrixError::ShapeMismatch {
                op: "max_abs_diff",
                left: (self.meta.rows, self.meta.cols),
                right: (other.meta.rows, other.meta.cols),
            });
        }
        Ok(a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn seq_matrix(rows: usize, cols: usize, tile: usize) -> LocalMatrix {
        let data: Vec<f64> = (0..rows * cols).map(|i| (i % 13) as f64 - 5.0).collect();
        LocalMatrix::from_dense(rows, cols, tile, &data)
    }

    #[test]
    fn from_dense_roundtrip() {
        let m = seq_matrix(7, 9, 4);
        let flat = m.to_dense_vec().unwrap();
        let expect: Vec<f64> = (0..63).map(|i| (i % 13) as f64 - 5.0).collect();
        assert_eq!(flat, expect);
    }

    #[test]
    fn tiled_matmul_matches_reference() {
        let a = seq_matrix(7, 5, 3);
        let b = seq_matrix(5, 6, 3);
        let c = a.matmul(&b).unwrap();
        let expect = reference::matmul(
            &a.to_dense_vec().unwrap(),
            &b.to_dense_vec().unwrap(),
            7,
            5,
            6,
        );
        let got = c.to_dense_vec().unwrap();
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_tile_size_mismatch() {
        let a = seq_matrix(4, 4, 2);
        let b = seq_matrix(4, 4, 4);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_matches_reference() {
        let a = seq_matrix(7, 5, 3);
        let t = a.transpose();
        assert_eq!((t.meta().rows, t.meta().cols), (5, 7));
        let flat_a = a.to_dense_vec().unwrap();
        let flat_t = t.to_dense_vec().unwrap();
        for i in 0..7 {
            for j in 0..5 {
                assert_eq!(flat_t[j * 7 + i], flat_a[i * 5 + j]);
            }
        }
    }

    #[test]
    fn elementwise_and_reductions() {
        let a = seq_matrix(4, 4, 3);
        let sum2 = a.elementwise(&a, ElemOp::Add).unwrap();
        assert!((sum2.sum() - 2.0 * a.sum()).abs() < 1e-9);
        let diff = a.elementwise(&a, ElemOp::Sub).unwrap();
        assert_eq!(diff.frob_norm(), 0.0);
        let sq = a.elementwise(&a, ElemOp::Mul).unwrap();
        assert!((sq.sum() - a.frob_norm().powi(2)).abs() < 1e-9);
    }

    #[test]
    fn map_and_scale() {
        let mut a = seq_matrix(3, 3, 2);
        let doubled = a.map(|v| 2.0 * v);
        a.scale(2.0);
        assert_eq!(a.max_abs_diff(&doubled).unwrap(), 0.0);
    }

    #[test]
    fn from_tiles_validates() {
        let meta = MatrixMeta::new(4, 4, 2);
        assert!(LocalMatrix::from_tiles(meta, vec![Tile::zeros(2, 2); 3]).is_err());
        let bad_dims = vec![
            Tile::zeros(2, 2),
            Tile::zeros(2, 2),
            Tile::zeros(2, 2),
            Tile::zeros(1, 1),
        ];
        assert!(LocalMatrix::from_tiles(meta, bad_dims).is_err());
        assert!(LocalMatrix::from_tiles(meta, vec![Tile::zeros(2, 2); 4]).is_ok());
    }

    #[test]
    fn generated_identity_acts_as_identity() {
        let meta = MatrixMeta::new(6, 6, 4);
        let i = LocalMatrix::generate(meta, &Generator::Identity);
        let a = seq_matrix(6, 6, 4);
        let prod = a.matmul(&i).unwrap();
        assert_eq!(prod.max_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn tile_out_of_bounds() {
        let a = seq_matrix(4, 4, 2);
        assert!(matches!(
            a.tile(5, 0),
            Err(MatrixError::TileOutOfBounds { .. })
        ));
    }

    #[test]
    fn nnz_sums_tiles() {
        let meta = MatrixMeta::new(10, 10, 5);
        let z = LocalMatrix::generate(meta, &Generator::Zeros);
        assert_eq!(z.nnz(), 0);
        let u = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform {
                seed: 1,
                lo: 0.5,
                hi: 1.0,
            },
        );
        assert_eq!(u.nnz(), 100);
    }
}
