//! The register-blocked GEMM microkernel and its SIMD dispatch.
//!
//! The packed GEMM path (see [`crate::pack`] and
//! [`DenseTile::gemm_acc_packed`](crate::DenseTile::gemm_acc_packed))
//! bottoms out in one function: an `MR × NR` rank-`kc` update computed
//! entirely in registers. The kernel is written as plain scalar Rust over
//! fixed-size accumulator arrays — `[[f64; NR]; MR]` — shaped so the
//! autovectorizer reliably lowers each accumulator row to SIMD lanes. No
//! `std::arch` intrinsics are used; instead the same body is compiled
//! three times:
//!
//! * a **generic** clone (`mul` + `add`, portable everywhere);
//! * an **AVX2+FMA** clone behind `#[target_feature]`, where
//!   [`f64::mul_add`] lowers to `vfmadd` on 4-wide `ymm` lanes;
//! * an **AVX-512** clone (`avx512f,avx512vl,fma`), same body, wider
//!   registers available to the scheduler.
//!
//! Which clone runs is decided once per process by CPUID detection and
//! cached ([`simd_level`]). Dispatch is deterministic on a given host, so
//! repeated runs are bitwise-identical; across hosts of different SIMD
//! classes the FMA clones contract `a*b + c` in one rounding, so results
//! may differ from the generic clone in the last ulp — which is why the
//! packed path is conformance-checked against the reference kernels with
//! an epsilon bound, not bitwise (see the `kernel-conformance` invariant
//! in `cumulon check`).

use std::sync::atomic::{AtomicU8, Ordering};

/// Rows of the microkernel tile (accumulator register rows).
///
/// With `NR = 8`, `MR = 4` gives 8 independent 4-wide FMA chains — enough
/// to cover FMA latency on two issue ports — while fitting the whole
/// accumulator tile plus one broadcast and two B lanes in 16 `ymm`
/// registers.
pub const MR: usize = 4;
/// Columns of the microkernel tile (two 4-wide lanes, or one 8-wide).
pub const NR: usize = 8;

/// The microkernel's register-resident accumulator tile.
pub type Acc = [[f64; NR]; MR];

/// SIMD class the microkernel dispatches to, best-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar/autovectorized clone, no FMA contraction.
    Generic,
    /// AVX2 + FMA clone (`vfmadd` on `ymm`).
    Avx2Fma,
    /// AVX-512 F/VL + FMA clone.
    Avx512,
}

impl SimdLevel {
    /// Short human-readable name (stable, used in bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Generic => "generic",
            SimdLevel::Avx2Fma => "avx2+fma",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

// Cached detection result: 0 = undetected, else SimdLevel as u8 + 1.
static DETECTED: AtomicU8 = AtomicU8::new(0);
// Test/bench override: 0 = none, else SimdLevel as u8 + 1. Overrides are
// clamped to the detected level — forcing a clone the CPU cannot run is
// never allowed.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn to_u8(l: SimdLevel) -> u8 {
    match l {
        SimdLevel::Generic => 1,
        SimdLevel::Avx2Fma => 2,
        SimdLevel::Avx512 => 3,
    }
}

fn from_u8(v: u8) -> SimdLevel {
    match v {
        2 => SimdLevel::Avx2Fma,
        3 => SimdLevel::Avx512,
        _ => SimdLevel::Generic,
    }
}

fn detect() -> SimdLevel {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512vl")
            && is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return SimdLevel::Avx2Fma;
        }
    }
    SimdLevel::Generic
}

/// The best SIMD level this host supports (CPUID-detected once, cached).
pub fn detected_simd_level() -> SimdLevel {
    let v = DETECTED.load(Ordering::Relaxed);
    if v != 0 {
        return from_u8(v);
    }
    let l = detect();
    DETECTED.store(to_u8(l), Ordering::Relaxed);
    l
}

/// The SIMD level the microkernel will actually dispatch to: the detected
/// level, unless a (clamped) override is in force.
pub fn simd_level() -> SimdLevel {
    let detected = detected_simd_level();
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => detected,
        v => from_u8(v).min(detected),
    }
}

/// Forces dispatch to a specific clone, clamped to what the host supports.
/// `None` restores CPUID dispatch.
///
/// This is a process-global knob intended for benchmarks and conformance
/// tests (measuring each clone, or pinning the generic clone to compare
/// against FMA contraction). Production paths never call it, so normal
/// runs stay deterministic per host.
pub fn set_simd_override(level: Option<SimdLevel>) {
    OVERRIDE.store(level.map_or(0, to_u8), Ordering::Relaxed);
}

/// `acc += Ap × Bp` where `Ap` is an `MR`-interleaved packed micro-panel
/// (`kc × MR`, see [`crate::pack::pack_a`]) and `Bp` an `NR`-wide packed
/// micro-panel (`kc × NR`, see [`crate::pack::pack_b`]).
///
/// Panels must hold at least `kc` steps; the accumulator is updated in
/// `k`-ascending order with one contraction per `(k, r, j)` — identical
/// association in every clone, FMA rounding aside.
#[inline]
pub fn run(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut Acc) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    match simd_level() {
        // SAFETY: the clone's target features were CPUID-verified by
        // `detect` (overrides are clamped to the detected level).
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Avx512 => unsafe { kernel_avx512(kc, a_panel, b_panel, acc) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => unsafe { kernel_avx2(kc, a_panel, b_panel, acc) },
        _ => kernel_generic(kc, a_panel, b_panel, acc),
    }
}

/// The shared kernel body. `FMA` selects single-rounding contraction
/// (`f64::mul_add`, which the `target_feature` clones lower to `vfmadd`;
/// the generic clone must *not* use it — without hardware FMA it calls
/// soft-float `fma()`).
#[inline(always)]
fn body<const FMA: bool>(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut Acc) {
    // Local copy so the accumulator tile lives in registers for the whole
    // k-loop; written back once.
    let mut t = *acc;
    for (ak, bk) in a_panel
        .chunks_exact(MR)
        .zip(b_panel.chunks_exact(NR))
        .take(kc)
    {
        let bk: &[f64; NR] = bk.try_into().expect("NR chunk");
        for r in 0..MR {
            let av = ak[r];
            for j in 0..NR {
                if FMA {
                    t[r][j] = av.mul_add(bk[j], t[r][j]);
                } else {
                    t[r][j] += av * bk[j];
                }
            }
        }
    }
    *acc = t;
}

fn kernel_generic(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut Acc) {
    body::<false>(kc, a_panel, b_panel, acc)
}

/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut Acc) {
    body::<true>(kc, a_panel, b_panel, acc)
}

/// # Safety
/// Caller must ensure the CPU supports AVX-512 F/VL and FMA.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn kernel_avx512(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut Acc) {
    body::<true>(kc, a_panel, b_panel, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(kc: usize, a: &[f64], b: &[f64]) -> Acc {
        let mut acc = [[0.0; NR]; MR];
        for k in 0..kc {
            for r in 0..MR {
                for j in 0..NR {
                    acc[r][j] += a[k * MR + r] * b[k * NR + j];
                }
            }
        }
        acc
    }

    #[test]
    fn all_available_clones_match_naive() {
        let kc = 37;
        let a: Vec<f64> = (0..kc * MR).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..kc * NR).map(|i| (i as f64 * 0.11).cos()).collect();
        let want = naive(kc, &a, &b);
        let detected = detected_simd_level();
        for level in [SimdLevel::Generic, SimdLevel::Avx2Fma, SimdLevel::Avx512] {
            if level > detected {
                continue;
            }
            set_simd_override(Some(level));
            let mut acc = [[0.0; NR]; MR];
            run(kc, &a, &b, &mut acc);
            set_simd_override(None);
            for r in 0..MR {
                for j in 0..NR {
                    let (x, y) = (acc[r][j], want[r][j]);
                    assert!(
                        (x - y).abs() <= 1e-13 * kc as f64,
                        "{} clone diverged at ({r},{j}): {x} vs {y}",
                        level.name()
                    );
                }
            }
        }
    }

    #[test]
    fn override_is_clamped_to_detected() {
        set_simd_override(Some(SimdLevel::Avx512));
        assert!(simd_level() <= detected_simd_level());
        set_simd_override(None);
        assert_eq!(simd_level(), detected_simd_level());
    }

    #[test]
    fn kc_zero_is_identity() {
        let mut acc = [[1.5; NR]; MR];
        run(0, &[], &[], &mut acc);
        assert_eq!(acc, [[1.5; NR]; MR]);
    }
}
