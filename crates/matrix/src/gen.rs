//! Deterministic, tile-addressable random data generation.
//!
//! Distributed matrix generation must be reproducible regardless of which
//! task generates which tile, so tile content is a pure function of
//! `(matrix seed, tile row, tile col)`. Every generator here derives a
//! per-tile RNG from those three values with a splitmix-style hash.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dense::DenseTile;
use crate::meta::MatrixMeta;
use crate::sparse::CsrTile;
use crate::tile::Tile;

/// Derives the per-tile seed from a matrix seed and tile coordinates.
pub fn tile_seed(matrix_seed: u64, ti: usize, tj: usize) -> u64 {
    // splitmix64 over a combination of the three inputs.
    let mut z = matrix_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + ti as u64))
        .wrapping_add(0x2545_f491_4f6c_dd1du64.wrapping_mul(1 + tj as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates a dense tile with uniform values in `[lo, hi)`.
pub fn dense_uniform_tile(
    matrix_seed: u64,
    ti: usize,
    tj: usize,
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
) -> DenseTile {
    let mut rng = StdRng::seed_from_u64(tile_seed(matrix_seed, ti, tj));
    let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
    DenseTile::from_vec(rows, cols, data)
}

/// Generates a dense tile with standard-normal values (Box–Muller, so only
/// `rand`'s uniform source is needed).
pub fn dense_gaussian_tile(
    matrix_seed: u64,
    ti: usize,
    tj: usize,
    rows: usize,
    cols: usize,
) -> DenseTile {
    let mut rng = StdRng::seed_from_u64(tile_seed(matrix_seed, ti, tj));
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0f64..1.0);
        let r: f64 = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(r * theta.cos());
        if data.len() < n {
            data.push(r * theta.sin());
        }
    }
    DenseTile::from_vec(rows, cols, data)
}

/// Generates a sparse tile where each cell is non-zero independently with
/// probability `density`; values are uniform in `[0, 1)` (non-negative, as
/// GNMF requires).
pub fn sparse_uniform_tile(
    matrix_seed: u64,
    ti: usize,
    tj: usize,
    rows: usize,
    cols: usize,
    density: f64,
) -> CsrTile {
    let mut rng = StdRng::seed_from_u64(tile_seed(matrix_seed, ti, tj));
    let expected = ((rows * cols) as f64 * density).ceil() as usize;
    let mut triples = Vec::with_capacity(expected + expected / 4 + 4);
    // Geometric skipping: visit only the non-zero cells, O(nnz) not O(cells).
    let total = rows * cols;
    if density >= 1.0 {
        for idx in 0..total {
            triples.push((idx / cols, idx % cols, rng.random_range(0.0..1.0)));
        }
    } else if density > 0.0 {
        let mut idx = skip_len(&mut rng, density);
        while idx < total {
            triples.push((idx / cols, idx % cols, rng.random_range(0.0f64..1.0)));
            idx += 1 + skip_len(&mut rng, density);
        }
    }
    CsrTile::from_triples(rows, cols, triples)
}

/// Samples a geometric gap length for density-`p` Bernoulli cells.
fn skip_len(rng: &mut StdRng, p: f64) -> usize {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as usize
}

/// Descriptor of how a matrix' content is generated; carried by matrix
/// metadata so tasks can produce any tile on demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Generator {
    /// Uniform dense values in `[lo, hi)`.
    DenseUniform {
        /// Matrix-level seed.
        seed: u64,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Standard normal dense values.
    DenseGaussian {
        /// Matrix-level seed.
        seed: u64,
    },
    /// Bernoulli-sparse uniform non-negative values.
    SparseUniform {
        /// Matrix-level seed.
        seed: u64,
        /// Per-cell non-zero probability.
        density: f64,
    },
    /// All-zero tiles (dense representation).
    Zeros,
    /// Identity pattern (1.0 on the global diagonal).
    Identity,
}

impl Generator {
    /// Materialises tile `(ti, tj)` of a matrix described by `meta`.
    pub fn generate(&self, meta: &MatrixMeta, ti: usize, tj: usize) -> Tile {
        let (r, c) = meta.tile_dims(ti, tj);
        match *self {
            Generator::DenseUniform { seed, lo, hi } => {
                Tile::dense(dense_uniform_tile(seed, ti, tj, r, c, lo, hi))
            }
            Generator::DenseGaussian { seed } => {
                Tile::dense(dense_gaussian_tile(seed, ti, tj, r, c))
            }
            Generator::SparseUniform { seed, density } => {
                Tile::sparse(sparse_uniform_tile(seed, ti, tj, r, c, density))
            }
            Generator::Zeros => Tile::zeros(r, c),
            Generator::Identity => {
                let base_r = ti * meta.tile_size;
                let base_c = tj * meta.tile_size;
                Tile::dense(DenseTile::from_fn(r, c, |i, j| {
                    if base_r + i == base_c + j {
                        1.0
                    } else {
                        0.0
                    }
                }))
            }
        }
    }

    /// Expected density of generated data, for phantom-mode nnz estimates.
    pub fn expected_density(&self) -> f64 {
        match *self {
            Generator::DenseUniform { .. } | Generator::DenseGaussian { .. } => 1.0,
            Generator::SparseUniform { density, .. } => density,
            Generator::Zeros => 0.0,
            Generator::Identity => 0.0, // ~1/n; negligible and shape-dependent
        }
    }

    /// Phantom version of tile `(ti, tj)`: dims + nnz estimate only.
    pub fn generate_phantom(&self, meta: &MatrixMeta, ti: usize, tj: usize) -> Tile {
        let (r, c) = meta.tile_dims(ti, tj);
        let nnz = match *self {
            Generator::Identity => r.min(c) as u64,
            _ => ((r * c) as f64 * self.expected_density()).round() as u64,
        };
        Tile::phantom(r, c, nnz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_seed_distinct_and_stable() {
        let a = tile_seed(42, 0, 0);
        let b = tile_seed(42, 0, 1);
        let c = tile_seed(42, 1, 0);
        let d = tile_seed(43, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, tile_seed(42, 0, 0), "must be deterministic");
    }

    #[test]
    fn dense_uniform_in_range() {
        let t = dense_uniform_tile(7, 2, 3, 20, 30, -1.0, 2.0);
        assert!(t.data().iter().all(|&v| (-1.0..2.0).contains(&v)));
        // Deterministic.
        assert_eq!(t, dense_uniform_tile(7, 2, 3, 20, 30, -1.0, 2.0));
    }

    #[test]
    fn gaussian_moments_plausible() {
        let t = dense_gaussian_tile(1, 0, 0, 100, 100);
        let n = t.data().len() as f64;
        let mean = t.sum() / n;
        let var = t.frob_sq() / n - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_odd_element_count() {
        let t = dense_gaussian_tile(1, 0, 0, 3, 3);
        assert_eq!(t.data().len(), 9);
    }

    #[test]
    fn sparse_density_close_to_target() {
        let t = sparse_uniform_tile(11, 0, 0, 200, 200, 0.05);
        let density = t.nnz() as f64 / 40_000.0;
        assert!((density - 0.05).abs() < 0.01, "density {density}");
        assert!(t.iter().all(|(_, _, v)| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn sparse_extreme_densities() {
        assert_eq!(sparse_uniform_tile(1, 0, 0, 10, 10, 0.0).nnz(), 0);
        assert_eq!(sparse_uniform_tile(1, 0, 0, 10, 10, 1.0).nnz(), 100);
    }

    #[test]
    fn generator_identity_tracks_global_diagonal() {
        let meta = MatrixMeta::new(6, 6, 4);
        let g = Generator::Identity;
        // Tile (1,1) holds global rows/cols 4..6; its local diagonal is set.
        let t = g.generate(&meta, 1, 1);
        let d = t.to_dense().unwrap();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 1.0);
        assert_eq!(d.get(0, 1), 0.0);
        // Off-diagonal tile is all zero.
        let off = g.generate(&meta, 0, 1);
        assert_eq!(off.nnz(), 0);
    }

    #[test]
    fn generator_phantom_matches_real_nnz() {
        let meta = MatrixMeta::new(100, 100, 50);
        let g = Generator::SparseUniform {
            seed: 3,
            density: 0.1,
        };
        let real = g.generate(&meta, 0, 0);
        let ph = g.generate_phantom(&meta, 0, 0);
        assert!(ph.is_phantom());
        let rel = (real.nnz() as f64 - ph.nnz() as f64).abs() / ph.nnz() as f64;
        assert!(rel < 0.25, "estimate off by {rel}");
    }

    #[test]
    fn generator_edge_tiles_sized_correctly() {
        let meta = MatrixMeta::new(10, 7, 4);
        let g = Generator::DenseUniform {
            seed: 1,
            lo: 0.0,
            hi: 1.0,
        };
        let t = g.generate(&meta, 2, 1);
        assert_eq!((t.rows(), t.cols()), (2, 3));
    }
}
