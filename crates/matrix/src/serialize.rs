//! Tile (de)serialization for the DFS.
//!
//! Layout (little-endian):
//!
//! ```text
//! [u32 magic][u32 kind][u64 rows][u64 cols]          -- 24-byte header
//! kind 0 (dense):   rows*cols f64 values
//! kind 1 (sparse):  [u64 nnz][(rows+1) u32 row_ptr][nnz u32 col_idx][nnz f64 values]
//! kind 2 (phantom): [u64 nnz]
//! ```
//!
//! Phantom tiles serialize their metadata so simulated-mode runs can move
//! "data" through the DFS with realistic byte accounting coming from
//! [`crate::Tile::stored_bytes`], while the physical buffer stays tiny.
//!
//! The encoder and decoder move the numeric payloads with slice-level
//! copies (a little-endian in-memory `f64`/`u32` buffer *is* its wire form,
//! so the copy is one `memcpy`, not a per-element loop). Big-endian hosts
//! fall back to the element-wise path; both produce identical bytes. The
//! historical element-wise codec is kept as [`encode_tile_elementwise`] /
//! [`decode_tile_elementwise`] so tests can assert byte equality.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::dense::DenseTile;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrTile;
use crate::tile::{Tile, TileData};

const MAGIC: u32 = 0x434d_544c; // "CMTL"
const HEADER: u64 = 24;

/// The exact number of bytes [`encode_tile`] produces for this tile,
/// computed without encoding. The DFS handle plane uses this to split
/// tile-handle files into blocks (and charge I/O) exactly as if the tile
/// had been serialized.
pub fn encoded_len(tile: &Tile) -> u64 {
    match tile.payload() {
        TileData::Dense(_) => HEADER + (tile.rows() as u64) * (tile.cols() as u64) * 8,
        TileData::Sparse(s) => {
            let nnz = s.raw_parts().2.len() as u64;
            HEADER + 8 + (tile.rows() as u64 + 1) * 4 + nnz * 4 + nnz * 8
        }
        TileData::Phantom { .. } => HEADER + 8,
    }
}

/// Appends `vals` in little-endian wire order with one slice copy.
fn put_f64s(buf: &mut BytesMut, vals: &[f64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: an f64 slice is valid to view as initialized bytes; on a
        // little-endian host the in-memory layout equals the wire layout.
        let raw = unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 8) };
        buf.extend_from_slice(raw);
    }
    #[cfg(not(target_endian = "little"))]
    for v in vals {
        buf.put_f64_le(*v);
    }
}

/// Appends `vals` in little-endian wire order with one slice copy.
fn put_u32s(buf: &mut BytesMut, vals: &[u32]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: as in `put_f64s`.
        let raw = unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 4) };
        buf.extend_from_slice(raw);
    }
    #[cfg(not(target_endian = "little"))]
    for v in vals {
        buf.put_u32_le(*v);
    }
}

/// Reads `n` little-endian f64s with one copy into an aligned buffer.
/// Caller must have checked `bytes.remaining() >= n * 8`.
fn get_f64s(bytes: &mut Bytes, n: usize) -> Vec<f64> {
    #[cfg(target_endian = "little")]
    {
        let mut out = vec![0.0f64; n];
        // SAFETY: source has >= n*8 readable bytes (checked by caller);
        // destination is an owned, aligned Vec<f64> of exactly n elements.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, n * 8);
        }
        bytes.advance(n * 8);
        out
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(bytes.get_f64_le());
        }
        out
    }
}

/// Reads `n` little-endian u32s with one copy into an aligned buffer.
/// Caller must have checked `bytes.remaining() >= n * 4`.
fn get_u32s(bytes: &mut Bytes, n: usize) -> Vec<u32> {
    #[cfg(target_endian = "little")]
    {
        let mut out = vec![0u32; n];
        // SAFETY: as in `get_f64s`.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, n * 4);
        }
        bytes.advance(n * 4);
        out
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(bytes.get_u32_le());
        }
        out
    }
}

/// Serializes a tile to a byte buffer.
pub fn encode_tile(tile: &Tile) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(tile) as usize);
    buf.put_u32_le(MAGIC);
    match tile.payload() {
        TileData::Dense(d) => {
            buf.put_u32_le(0);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            put_f64s(&mut buf, d.data());
        }
        TileData::Sparse(s) => {
            buf.put_u32_le(1);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            let (row_ptr, col_idx, values) = s.raw_parts();
            buf.put_u64_le(values.len() as u64);
            put_u32s(&mut buf, row_ptr);
            put_u32s(&mut buf, col_idx);
            put_f64s(&mut buf, values);
        }
        TileData::Phantom { nnz } => {
            buf.put_u32_le(2);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            buf.put_u64_le(*nnz);
        }
    }
    buf.freeze()
}

/// Deserializes a tile from bytes produced by [`encode_tile`].
pub fn decode_tile(mut bytes: Bytes) -> Result<Tile> {
    if bytes.remaining() < 24 {
        return Err(MatrixError::Corrupt("buffer shorter than header".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != MAGIC {
        return Err(MatrixError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let kind = bytes.get_u32_le();
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u64_le() as usize;
    match kind {
        0 => {
            let n = rows * cols;
            if bytes.remaining() < n * 8 {
                return Err(MatrixError::Corrupt("dense payload truncated".into()));
            }
            let data = get_f64s(&mut bytes, n);
            Ok(Tile::dense(DenseTile::from_vec(rows, cols, data)))
        }
        1 => {
            if bytes.remaining() < 8 {
                return Err(MatrixError::Corrupt("sparse header truncated".into()));
            }
            let nnz = bytes.get_u64_le() as usize;
            let need = (rows + 1) * 4 + nnz * 4 + nnz * 8;
            if bytes.remaining() < need {
                return Err(MatrixError::Corrupt("sparse payload truncated".into()));
            }
            let row_ptr = get_u32s(&mut bytes, rows + 1);
            let col_idx = get_u32s(&mut bytes, nnz);
            let values = get_f64s(&mut bytes, nnz);
            Ok(Tile::sparse(CsrTile::from_raw(
                rows, cols, row_ptr, col_idx, values,
            )?))
        }
        2 => {
            if bytes.remaining() < 8 {
                return Err(MatrixError::Corrupt("phantom payload truncated".into()));
            }
            let nnz = bytes.get_u64_le();
            Ok(Tile::phantom(rows, cols, nnz))
        }
        other => Err(MatrixError::Corrupt(format!("unknown tile kind {other}"))),
    }
}

/// The pre-bulk-copy encoder: one `put_*_le` per element. Kept as the
/// reference implementation the fast path is tested against.
pub fn encode_tile_elementwise(tile: &Tile) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u32_le(MAGIC);
    match tile.payload() {
        TileData::Dense(d) => {
            buf.put_u32_le(0);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            buf.reserve(d.data().len() * 8);
            for v in d.data() {
                buf.put_f64_le(*v);
            }
        }
        TileData::Sparse(s) => {
            buf.put_u32_le(1);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            let (row_ptr, col_idx, values) = s.raw_parts();
            buf.put_u64_le(values.len() as u64);
            buf.reserve(row_ptr.len() * 4 + col_idx.len() * 4 + values.len() * 8);
            for p in row_ptr {
                buf.put_u32_le(*p);
            }
            for c in col_idx {
                buf.put_u32_le(*c);
            }
            for v in values {
                buf.put_f64_le(*v);
            }
        }
        TileData::Phantom { nnz } => {
            buf.put_u32_le(2);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            buf.put_u64_le(*nnz);
        }
    }
    buf.freeze()
}

/// The pre-bulk-copy decoder: one `get_*_le` per element. Kept as the
/// reference implementation the fast path is tested against.
pub fn decode_tile_elementwise(mut bytes: Bytes) -> Result<Tile> {
    if bytes.remaining() < 24 {
        return Err(MatrixError::Corrupt("buffer shorter than header".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != MAGIC {
        return Err(MatrixError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let kind = bytes.get_u32_le();
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u64_le() as usize;
    match kind {
        0 => {
            let n = rows * cols;
            if bytes.remaining() < n * 8 {
                return Err(MatrixError::Corrupt("dense payload truncated".into()));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(bytes.get_f64_le());
            }
            Ok(Tile::dense(DenseTile::from_vec(rows, cols, data)))
        }
        1 => {
            if bytes.remaining() < 8 {
                return Err(MatrixError::Corrupt("sparse header truncated".into()));
            }
            let nnz = bytes.get_u64_le() as usize;
            let need = (rows + 1) * 4 + nnz * 4 + nnz * 8;
            if bytes.remaining() < need {
                return Err(MatrixError::Corrupt("sparse payload truncated".into()));
            }
            let mut row_ptr = Vec::with_capacity(rows + 1);
            for _ in 0..=rows {
                row_ptr.push(bytes.get_u32_le());
            }
            let mut col_idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                col_idx.push(bytes.get_u32_le());
            }
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                values.push(bytes.get_f64_le());
            }
            Ok(Tile::sparse(CsrTile::from_raw(
                rows, cols, row_ptr, col_idx, values,
            )?))
        }
        2 => {
            if bytes.remaining() < 8 {
                return Err(MatrixError::Corrupt("phantom payload truncated".into()));
            }
            let nnz = bytes.get_u64_le();
            Ok(Tile::phantom(rows, cols, nnz))
        }
        other => Err(MatrixError::Corrupt(format!("unknown tile kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dense_roundtrip() {
        let t = Tile::dense(gen::dense_uniform_tile(5, 0, 0, 13, 7, -2.0, 2.0));
        let bytes = encode_tile(&t);
        assert_eq!(decode_tile(bytes).unwrap(), t);
    }

    #[test]
    fn sparse_roundtrip() {
        let t = Tile::sparse(gen::sparse_uniform_tile(5, 1, 2, 40, 30, 0.1));
        let bytes = encode_tile(&t);
        assert_eq!(decode_tile(bytes).unwrap(), t);
    }

    #[test]
    fn phantom_roundtrip() {
        let t = Tile::phantom(1000, 2000, 12345);
        let bytes = encode_tile(&t);
        assert_eq!(bytes.len(), 32, "phantom tiles stay tiny on the wire");
        assert_eq!(decode_tile(bytes).unwrap(), t);
    }

    #[test]
    fn dense_encoding_matches_stored_bytes() {
        let t = Tile::zeros(10, 10);
        assert_eq!(encode_tile(&t).len() as u64, t.stored_bytes());
    }

    #[test]
    fn sparse_encoding_size_close_to_stored_bytes() {
        let t = Tile::sparse(gen::sparse_uniform_tile(5, 0, 0, 50, 50, 0.1));
        let enc = encode_tile(&t).len() as u64;
        // stored_bytes() is the model; the actual encoding carries one extra
        // u64 (the nnz header field).
        assert_eq!(enc, t.stored_bytes() + 8);
    }

    /// The bulk fast path must produce byte-for-byte what the element-wise
    /// codec produced, and both decoders must agree, for every tile kind —
    /// including non-finite and signed-zero payloads where a value-level
    /// round-trip would hide bit differences.
    #[test]
    fn bulk_codec_matches_elementwise_codec() {
        let weird = Tile::zeros(3, 4).map(|_| -0.0);
        let tiles = vec![
            Tile::dense(gen::dense_uniform_tile(9, 2, 3, 17, 5, -1e9, 1e9)),
            Tile::sparse(gen::sparse_uniform_tile(4, 0, 1, 33, 29, 0.07)),
            Tile::phantom(123, 456, 789),
            Tile::zeros(1, 1),
            weird,
            Tile::dense(gen::dense_uniform_tile(1, 0, 0, 1, 64, 0.0, 1.0)).map(|x| {
                if x > 0.5 {
                    f64::NAN
                } else {
                    f64::INFINITY
                }
            }),
        ];
        for t in &tiles {
            let fast = encode_tile(t);
            let slow = encode_tile_elementwise(t);
            assert_eq!(fast, slow, "encodings differ for {t:?}");
            let via_fast = decode_tile(fast.clone()).unwrap();
            let via_slow = decode_tile_elementwise(fast).unwrap();
            // Compare by encoded bytes so NaN payloads count as equal iff
            // bit-identical.
            assert_eq!(
                encode_tile_elementwise(&via_fast),
                encode_tile_elementwise(&via_slow)
            );
        }
    }

    #[test]
    fn encoded_len_is_exact() {
        let tiles = vec![
            Tile::dense(gen::dense_uniform_tile(5, 0, 0, 13, 7, -2.0, 2.0)),
            Tile::sparse(gen::sparse_uniform_tile(5, 1, 2, 40, 30, 0.1)),
            Tile::phantom(1000, 2000, 12345),
            Tile::zeros(1, 1),
        ];
        for t in &tiles {
            assert_eq!(encoded_len(t), encode_tile(t).len() as u64, "{t:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_tile(Bytes::from_static(b"short")).is_err());
        let mut bad = BytesMut::new();
        bad.put_u32_le(0xdead_beef);
        bad.put_u32_le(0);
        bad.put_u64_le(1);
        bad.put_u64_le(1);
        bad.put_f64_le(1.0);
        assert!(decode_tile(bad.freeze()).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let t = Tile::zeros(4, 4);
        let full = encode_tile(&t);
        let truncated = full.slice(0..full.len() - 8);
        assert!(decode_tile(truncated).is_err());
        assert!(decode_tile_elementwise(full.slice(0..full.len() - 8)).is_err());
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(super::MAGIC);
        buf.put_u32_le(9);
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        assert!(decode_tile(buf.freeze()).is_err());
    }
}
