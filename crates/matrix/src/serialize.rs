//! Tile (de)serialization for the DFS.
//!
//! Layout (little-endian):
//!
//! ```text
//! [u32 magic][u32 kind][u64 rows][u64 cols]          -- 24-byte header
//! kind 0 (dense):   rows*cols f64 values
//! kind 1 (sparse):  [u64 nnz][(rows+1) u32 row_ptr][nnz u32 col_idx][nnz f64 values]
//! kind 2 (phantom): [u64 nnz]
//! ```
//!
//! Phantom tiles serialize their metadata so simulated-mode runs can move
//! "data" through the DFS with realistic byte accounting coming from
//! [`crate::Tile::stored_bytes`], while the physical buffer stays tiny.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::dense::DenseTile;
use crate::error::{MatrixError, Result};
use crate::sparse::CsrTile;
use crate::tile::{Tile, TileData};

const MAGIC: u32 = 0x434d_544c; // "CMTL"

/// Serializes a tile to a byte buffer.
pub fn encode_tile(tile: &Tile) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u32_le(MAGIC);
    match tile.payload() {
        TileData::Dense(d) => {
            buf.put_u32_le(0);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            buf.reserve(d.data().len() * 8);
            for v in d.data() {
                buf.put_f64_le(*v);
            }
        }
        TileData::Sparse(s) => {
            buf.put_u32_le(1);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            let (row_ptr, col_idx, values) = s.raw_parts();
            buf.put_u64_le(values.len() as u64);
            buf.reserve(row_ptr.len() * 4 + col_idx.len() * 4 + values.len() * 8);
            for p in row_ptr {
                buf.put_u32_le(*p);
            }
            for c in col_idx {
                buf.put_u32_le(*c);
            }
            for v in values {
                buf.put_f64_le(*v);
            }
        }
        TileData::Phantom { nnz } => {
            buf.put_u32_le(2);
            buf.put_u64_le(tile.rows() as u64);
            buf.put_u64_le(tile.cols() as u64);
            buf.put_u64_le(*nnz);
        }
    }
    buf.freeze()
}

/// Deserializes a tile from bytes produced by [`encode_tile`].
pub fn decode_tile(mut bytes: Bytes) -> Result<Tile> {
    if bytes.remaining() < 24 {
        return Err(MatrixError::Corrupt("buffer shorter than header".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != MAGIC {
        return Err(MatrixError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let kind = bytes.get_u32_le();
    let rows = bytes.get_u64_le() as usize;
    let cols = bytes.get_u64_le() as usize;
    match kind {
        0 => {
            let n = rows * cols;
            if bytes.remaining() < n * 8 {
                return Err(MatrixError::Corrupt("dense payload truncated".into()));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(bytes.get_f64_le());
            }
            Ok(Tile::dense(DenseTile::from_vec(rows, cols, data)))
        }
        1 => {
            if bytes.remaining() < 8 {
                return Err(MatrixError::Corrupt("sparse header truncated".into()));
            }
            let nnz = bytes.get_u64_le() as usize;
            let need = (rows + 1) * 4 + nnz * 4 + nnz * 8;
            if bytes.remaining() < need {
                return Err(MatrixError::Corrupt("sparse payload truncated".into()));
            }
            let mut row_ptr = Vec::with_capacity(rows + 1);
            for _ in 0..=rows {
                row_ptr.push(bytes.get_u32_le());
            }
            let mut col_idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                col_idx.push(bytes.get_u32_le());
            }
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                values.push(bytes.get_f64_le());
            }
            Ok(Tile::sparse(CsrTile::from_raw(
                rows, cols, row_ptr, col_idx, values,
            )?))
        }
        2 => {
            if bytes.remaining() < 8 {
                return Err(MatrixError::Corrupt("phantom payload truncated".into()));
            }
            let nnz = bytes.get_u64_le();
            Ok(Tile::phantom(rows, cols, nnz))
        }
        other => Err(MatrixError::Corrupt(format!("unknown tile kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dense_roundtrip() {
        let t = Tile::dense(gen::dense_uniform_tile(5, 0, 0, 13, 7, -2.0, 2.0));
        let bytes = encode_tile(&t);
        assert_eq!(decode_tile(bytes).unwrap(), t);
    }

    #[test]
    fn sparse_roundtrip() {
        let t = Tile::sparse(gen::sparse_uniform_tile(5, 1, 2, 40, 30, 0.1));
        let bytes = encode_tile(&t);
        assert_eq!(decode_tile(bytes).unwrap(), t);
    }

    #[test]
    fn phantom_roundtrip() {
        let t = Tile::phantom(1000, 2000, 12345);
        let bytes = encode_tile(&t);
        assert_eq!(bytes.len(), 32, "phantom tiles stay tiny on the wire");
        assert_eq!(decode_tile(bytes).unwrap(), t);
    }

    #[test]
    fn dense_encoding_matches_stored_bytes() {
        let t = Tile::zeros(10, 10);
        assert_eq!(encode_tile(&t).len() as u64, t.stored_bytes());
    }

    #[test]
    fn sparse_encoding_size_close_to_stored_bytes() {
        let t = Tile::sparse(gen::sparse_uniform_tile(5, 0, 0, 50, 50, 0.1));
        let enc = encode_tile(&t).len() as u64;
        // stored_bytes() is the model; the actual encoding carries one extra
        // u64 (the nnz header field).
        assert_eq!(enc, t.stored_bytes() + 8);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_tile(Bytes::from_static(b"short")).is_err());
        let mut bad = BytesMut::new();
        bad.put_u32_le(0xdead_beef);
        bad.put_u32_le(0);
        bad.put_u64_le(1);
        bad.put_u64_le(1);
        bad.put_f64_le(1.0);
        assert!(decode_tile(bad.freeze()).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let t = Tile::zeros(4, 4);
        let full = encode_tile(&t);
        let truncated = full.slice(0..full.len() - 8);
        assert!(decode_tile(truncated).is_err());
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(super::MAGIC);
        buf.put_u32_le(9);
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        assert!(decode_tile(buf.freeze()).is_err());
    }
}
