//! Dense row-major tiles and their kernels.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::{MatrixError, Result};
use crate::microkernel::{self, MR, NR};
use crate::pack;

/// Worker threads the packed GEMM kernel may use *inside one tile
/// multiply* (`0` = all host cores, `1` = serial). Default 1: intra-task
/// threading is opt-in because the cluster executor already parallelizes
/// across tasks; splitting inside a task only pays off for huge tiles on
/// otherwise-idle cores.
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the intra-kernel thread count (process-global; `0` = all host
/// cores, `1` = serial). Results are bitwise-identical at every setting:
/// threads split the output into disjoint row panels, so each element's
/// summation order never changes.
pub fn set_kernel_threads(n: usize) {
    KERNEL_THREADS.store(n, Ordering::Relaxed);
}

/// Current intra-kernel thread setting (resolved: `0` becomes the host
/// core count).
pub fn kernel_threads() -> usize {
    match KERNEL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// A dense row-major `f64` tile.
///
/// Tiles are small enough (a few MB) that row-major with a register-blocked
/// GEMM microkernel is competitive without further packing.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTile {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseTile {
    /// Creates a zero-filled tile.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseTile {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tile from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "dense tile data length must equal rows*cols"
        );
        DenseTile { rows, cols, data }
    }

    /// Creates a tile by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseTile { rows, cols, data }
    }

    /// Creates an identity-pattern tile (1.0 where `row == col`).
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tile, returning its backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Number of non-zero entries (exact count).
    pub fn nnz(&self) -> u64 {
        self.data.iter().filter(|&&v| v != 0.0).count() as u64
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &DenseTile) -> Result<()> {
        self.check_same_shape("add", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// `self -= other`, element-wise.
    pub fn sub_assign(&mut self, other: &DenseTile) -> Result<()> {
        self.check_same_shape("sub", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
        Ok(())
    }

    /// `self *= other`, element-wise (Hadamard product).
    pub fn mul_assign_elem(&mut self, other: &DenseTile) -> Result<()> {
        self.check_same_shape("elem_mul", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= *b;
        }
        Ok(())
    }

    /// `self /= other`, element-wise. Division by zero yields zero, matching
    /// the convention GNMF-style multiplicative updates rely on (a zero
    /// denominator only occurs where the numerator is also zero).
    pub fn div_assign_elem(&mut self, other: &DenseTile) -> Result<()> {
        self.check_same_shape("elem_div", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = if *b == 0.0 { 0.0 } else { *a / *b };
        }
        Ok(())
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Adds scalar `s` to every element.
    pub fn add_scalar(&mut self, s: f64) {
        for a in &mut self.data {
            *a += s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns the transposed tile.
    pub fn transpose(&self) -> DenseTile {
        let mut out = DenseTile::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger tiles.
        const B: usize = 32;
        for bi in (0..self.rows).step_by(B) {
            for bj in (0..self.cols).step_by(B) {
                let imax = (bi + B).min(self.rows);
                let jmax = (bj + B).min(self.cols);
                for i in bi..imax {
                    for j in bj..jmax {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Row sums as a `rows × 1` tile.
    pub fn row_sums(&self) -> DenseTile {
        let mut out = DenseTile::zeros(self.rows, 1);
        for i in 0..self.rows {
            out.data[i] = self.data[i * self.cols..(i + 1) * self.cols].iter().sum();
        }
        out
    }

    /// Column sums as a `1 × cols` tile.
    pub fn col_sums(&self) -> DenseTile {
        let mut out = DenseTile::zeros(1, self.cols);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, v) in out.data.iter_mut().zip(row.iter()) {
                *o += *v;
            }
        }
        out
    }

    /// `c += a × b` (accumulating GEMM). This is the workhorse of the whole
    /// system: partial products over the shared dimension accumulate into
    /// the same output tile.
    ///
    /// Dispatches between a streaming i-k-j kernel (small/skinny operands)
    /// and the packed-panel SIMD kernel (large tiles) — see
    /// [`DenseTile::gemm_acc_packed`].
    pub fn gemm_acc(c: &mut DenseTile, a: &DenseTile, b: &DenseTile) -> Result<()> {
        Self::check_gemm_shapes(c, a, b)?;
        // Measured crossover (see `gemm_bench` dispatch table): streaming
        // wins below n≈8 (0.4x at n=4, where packing/alloc overhead
        // dominates a sub-microsecond multiply), ties at 6, and packed
        // wins from 8 up (1.5x at n=8 rising to 2.8x by n=48).
        const PACKED_MIN_DIM: usize = 8;
        if a.rows >= PACKED_MIN_DIM && a.cols >= PACKED_MIN_DIM && b.cols >= PACKED_MIN_DIM {
            Self::gemm_acc_packed(c, a, b)
        } else {
            Self::gemm_acc_streaming(c, a, b)
        }
    }

    fn check_gemm_shapes(c: &DenseTile, a: &DenseTile, b: &DenseTile) -> Result<()> {
        if a.cols != b.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "gemm",
                left: (a.rows, a.cols),
                right: (b.rows, b.cols),
            });
        }
        if c.rows != a.rows || c.cols != b.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "gemm-out",
                left: (c.rows, c.cols),
                right: (a.rows, b.cols),
            });
        }
        Ok(())
    }

    /// The streaming i-k-j kernel: the inner loop runs over whole rows of
    /// `b` and `c`, vectorized via `axpy_row`; zero entries of `a` are
    /// skipped (helpful for nearly-sparse dense tiles).
    pub fn gemm_acc_streaming(c: &mut DenseTile, a: &DenseTile, b: &DenseTile) -> Result<()> {
        Self::check_gemm_shapes(c, a, b)?;
        let n = b.cols;
        for i in 0..a.rows {
            let c_row = &mut c.data[i * n..(i + 1) * n];
            let a_row = &a.data[i * a.cols..(i + 1) * a.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b.data[k * n..(k + 1) * n];
                axpy_row(c_row, b_row, aik);
            }
        }
        Ok(())
    }

    /// Cache-blocked GEMM: panels of `b` sized to stay L2-resident, with a
    /// 4×row microkernel that keeps four accumulator rows of `c` live while
    /// streaming each `b` row exactly once per 4 output rows — quartering
    /// `b` traffic versus the streaming kernel.
    pub fn gemm_acc_blocked(c: &mut DenseTile, a: &DenseTile, b: &DenseTile) -> Result<()> {
        Self::check_gemm_shapes(c, a, b)?;
        // Block sizes: KC·NC·8B ≈ 256 KiB keeps the b-panel in L2.
        const KC: usize = 512;
        const NC: usize = 256;
        const MR: usize = 4;
        let (m, l, n) = (a.rows, a.cols, b.cols);
        for k0 in (0..l).step_by(KC) {
            let k1 = (k0 + KC).min(l);
            for j0 in (0..n).step_by(NC) {
                let j1 = (j0 + NC).min(n);
                let mut i = 0;
                // --- 4-row microkernel ---------------------------------
                while i + MR <= m {
                    // Four a-rows of this k-panel.
                    let a0 = &a.data[i * l + k0..i * l + k1];
                    let a1 = &a.data[(i + 1) * l + k0..(i + 1) * l + k1];
                    let a2 = &a.data[(i + 2) * l + k0..(i + 2) * l + k1];
                    let a3 = &a.data[(i + 3) * l + k0..(i + 3) * l + k1];
                    // Split c into four disjoint row slices.
                    let (c01, c23) = c.data[i * n..(i + 4) * n].split_at_mut(2 * n);
                    let (c0, c1) = c01.split_at_mut(n);
                    let (c2, c3) = c23.split_at_mut(n);
                    let c0 = &mut c0[j0..j1];
                    let c1 = &mut c1[j0..j1];
                    let c2 = &mut c2[j0..j1];
                    let c3 = &mut c3[j0..j1];
                    for (kk, k) in (k0..k1).enumerate() {
                        let b_row = &b.data[k * n + j0..k * n + j1];
                        let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                        for (idx, &bv) in b_row.iter().enumerate() {
                            c0[idx] += v0 * bv;
                            c1[idx] += v1 * bv;
                            c2[idx] += v2 * bv;
                            c3[idx] += v3 * bv;
                        }
                    }
                    i += MR;
                }
                // --- remainder rows -------------------------------------
                while i < m {
                    let a_row = &a.data[i * l + k0..i * l + k1];
                    let c_row = &mut c.data[i * n + j0..i * n + j1];
                    for (kk, k) in (k0..k1).enumerate() {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b.data[k * n + j0..k * n + j1];
                        axpy_row(c_row, b_row, aik);
                    }
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// BLIS-style packed-panel GEMM: `c += a × b`.
    ///
    /// The classic five-loop nest. Working from the outside in: `NC`-wide
    /// column slabs of `b`, `KC`-deep rank-k slices (packed once into
    /// [`pack::pack_b`] micro-panels), `MC`-tall row blocks of `a` (packed
    /// into [`pack::pack_a`] micro-panels), then `NR`-wide / `MR`-tall
    /// micro-tiles computed by the register-resident
    /// [`crate::microkernel`]. Block sizes keep the A block
    /// (`MC·KC` ≈ 256 KiB) L2-resident and each B micro-panel (`KC·NR` =
    /// 16 KiB) L1-resident across all row panels.
    ///
    /// Numerics: each output element accumulates its `KC`-slice partial
    /// sums in `k`-ascending order into `c`, but the within-slice sum is
    /// associated differently from the streaming kernel (and contracted
    /// via FMA on SIMD hosts), so agreement with
    /// [`gemm_acc_streaming`](Self::gemm_acc_streaming) is epsilon-bounded
    /// rather than bitwise — pinned by the `kernel-conformance` invariant.
    ///
    /// When [`kernel_threads`] is above 1 and the multiply is large enough
    /// to amortize thread startup, the `MC` row loop is split into
    /// contiguous `MR`-aligned chunks across scoped threads. Every output
    /// element is still computed by exactly one thread in exactly the
    /// serial order, so results are bitwise-identical at any thread count.
    pub fn gemm_acc_packed(c: &mut DenseTile, a: &DenseTile, b: &DenseTile) -> Result<()> {
        Self::check_gemm_shapes(c, a, b)?;
        const KC: usize = 512;
        const NC: usize = 4096;
        let (m, l, n) = (a.rows, a.cols, b.cols);
        // Threads only engage above ~2·256³ flops: below that a tile
        // multiply is tens of microseconds and spawn overhead dominates.
        const PAR_MIN_FLOPS: f64 = 2.0 * 256.0 * 256.0 * 256.0;
        let mut threads = kernel_threads().min(m.div_ceil(MR));
        if (2.0 * m as f64 * l as f64 * n as f64) < PAR_MIN_FLOPS {
            threads = 1;
        }
        let mut b_pack = Vec::new();
        for j0 in (0..n).step_by(NC) {
            let nc = NC.min(n - j0);
            for k0 in (0..l).step_by(KC) {
                let kc = KC.min(l - k0);
                pack::pack_b(&b.data, n, k0, kc, j0, nc, &mut b_pack);
                if threads <= 1 {
                    let mut a_pack = Vec::new();
                    packed_row_block(
                        &mut c.data,
                        &a.data,
                        l,
                        n,
                        0,
                        m,
                        k0,
                        kc,
                        j0,
                        nc,
                        &b_pack,
                        &mut a_pack,
                    );
                } else {
                    // MR-aligned contiguous row chunks, one per thread.
                    let chunk_rows = m.div_ceil(threads).div_ceil(MR) * MR;
                    let b_pack = &b_pack;
                    let a_data = &a.data;
                    std::thread::scope(|s| {
                        let mut rest = &mut c.data[..];
                        let mut row0 = 0;
                        while row0 < m {
                            let rows = chunk_rows.min(m - row0);
                            let (chunk, tail) = rest.split_at_mut(rows * n);
                            rest = tail;
                            s.spawn(move || {
                                let mut a_pack = Vec::new();
                                packed_row_block(
                                    chunk,
                                    a_data,
                                    l,
                                    n,
                                    row0,
                                    rows,
                                    k0,
                                    kc,
                                    j0,
                                    nc,
                                    b_pack,
                                    &mut a_pack,
                                );
                            });
                            row0 += rows;
                        }
                    });
                }
            }
        }
        Ok(())
    }

    /// Convenience wrapper: returns `a × b` as a fresh tile.
    pub fn matmul(a: &DenseTile, b: &DenseTile) -> Result<DenseTile> {
        let mut c = DenseTile::zeros(a.rows, b.cols);
        DenseTile::gemm_acc(&mut c, a, b)?;
        Ok(c)
    }

    fn check_same_shape(&self, op: &'static str, other: &DenseTile) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch {
                op,
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(())
    }
}

/// Packed-GEMM macrokernel over one contiguous chunk of output rows.
///
/// `c_rows` is the chunk's backing slice (`rows × n`, starting at global
/// row `row0`); `b_pack` holds the current `kc × nc` slab of `b` already
/// packed. Packs each `MC`-tall A block into `a_pack` (a reusable
/// scratch buffer) and drives the microkernel over every micro-tile,
/// masking the write-back at ragged edges.
#[allow(clippy::too_many_arguments)]
fn packed_row_block(
    c_rows: &mut [f64],
    a: &[f64],
    l: usize,
    n: usize,
    row0: usize,
    rows: usize,
    k0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    b_pack: &[f64],
    a_pack: &mut Vec<f64>,
) {
    const MC: usize = 64;
    let jpanels = nc.div_ceil(NR);
    for ic in (0..rows).step_by(MC) {
        let mc = MC.min(rows - ic);
        pack::pack_a(a, l, row0 + ic, mc, k0, kc, a_pack);
        let ipanels = mc.div_ceil(MR);
        for jp in 0..jpanels {
            let b_panel = &b_pack[jp * kc * NR..][..kc * NR];
            let j_base = j0 + jp * NR;
            let cols = NR.min(j0 + nc - j_base);
            for ip in 0..ipanels {
                let a_panel = &a_pack[ip * kc * MR..][..kc * MR];
                let mut acc = [[0.0; NR]; MR];
                microkernel::run(kc, a_panel, b_panel, &mut acc);
                let i_base = ic + ip * MR;
                let mrows = MR.min(mc - ip * MR);
                for (r, acc_row) in acc.iter().enumerate().take(mrows) {
                    let c_row = &mut c_rows[(i_base + r) * n + j_base..][..cols];
                    for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                        *cv += *av;
                    }
                }
            }
        }
    }
}

/// `y += alpha * x` over whole rows; written so LLVM vectorizes the loop.
#[inline]
fn axpy_row(y: &mut [f64], x: &[f64], alpha: f64) {
    debug_assert_eq!(y.len(), x.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_abc() -> (DenseTile, DenseTile) {
        let a = DenseTile::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseTile::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        (a, b)
    }

    #[test]
    fn matmul_small() {
        let (a, b) = tile_abc();
        let c = DenseTile::matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_accumulates() {
        let (a, b) = tile_abc();
        let mut c = DenseTile::from_vec(2, 2, vec![1.0; 4]);
        DenseTile::gemm_acc(&mut c, &a, &b).unwrap();
        assert_eq!(c.data(), &[59.0, 65.0, 140.0, 155.0]);
    }

    #[test]
    fn gemm_shape_mismatch() {
        let a = DenseTile::zeros(2, 3);
        let b = DenseTile::zeros(4, 2);
        let mut c = DenseTile::zeros(2, 2);
        let err = DenseTile::gemm_acc(&mut c, &a, &b).unwrap_err();
        assert!(matches!(err, MatrixError::ShapeMismatch { op: "gemm", .. }));
    }

    #[test]
    fn gemm_out_shape_mismatch() {
        let (a, b) = tile_abc();
        let mut c = DenseTile::zeros(3, 3);
        let err = DenseTile::gemm_acc(&mut c, &a, &b).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::ShapeMismatch { op: "gemm-out", .. }
        ));
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let (a, _) = tile_abc();
        let i3 = DenseTile::identity(3);
        let c = DenseTile::matmul(&a, &i3).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_roundtrip() {
        let (a, _) = tile_abc();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn transpose_blocked_matches_naive_on_odd_sizes() {
        let a = DenseTile::from_fn(37, 53, |i, j| (i * 53 + j) as f64);
        let t = a.transpose();
        for i in 0..37 {
            for j in 0..53 {
                assert_eq!(t.get(j, i), a.get(i, j));
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let mut a = DenseTile::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseTile::from_vec(1, 4, vec![2.0, 2.0, 0.0, 4.0]);
        a.mul_assign_elem(&b).unwrap();
        assert_eq!(a.data(), &[2.0, 4.0, 0.0, 16.0]);
        a.div_assign_elem(&b).unwrap();
        assert_eq!(a.data(), &[1.0, 2.0, 0.0, 4.0]); // 0/0 -> 0
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[3.0, 4.0, 0.0, 8.0]);
        a.sub_assign(&b).unwrap();
        assert_eq!(a.data(), &[1.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn elementwise_shape_check() {
        let mut a = DenseTile::zeros(2, 2);
        let b = DenseTile::zeros(2, 3);
        assert!(a.add_assign(&b).is_err());
        assert!(a.sub_assign(&b).is_err());
        assert!(a.mul_assign_elem(&b).is_err());
        assert!(a.div_assign_elem(&b).is_err());
    }

    #[test]
    fn scale_and_map() {
        let mut a = DenseTile::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[2.0, -4.0, 6.0]);
        a.map_inplace(f64::abs);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
        a.add_scalar(1.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn reductions() {
        let a = DenseTile::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.frob_sq(), 91.0);
        assert_eq!(a.row_sums().data(), &[6.0, 15.0]);
        assert_eq!(a.col_sums().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.nnz(), 6);
    }

    #[test]
    fn nnz_counts_zeros() {
        let a = DenseTile::from_vec(2, 2, vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(a.nnz(), 2);
    }
}

#[cfg(test)]
mod blocked_gemm_tests {
    use super::*;
    use crate::gen;

    fn check_agree(m: usize, l: usize, n: usize, seed: u64) {
        let a = gen::dense_uniform_tile(seed, 0, 0, m, l, -1.0, 1.0);
        let b = gen::dense_uniform_tile(seed, 0, 1, l, n, -1.0, 1.0);
        let mut c_stream = DenseTile::from_fn(m, n, |i, j| (i + j) as f64 * 0.01);
        let mut c_block = c_stream.clone();
        DenseTile::gemm_acc_streaming(&mut c_stream, &a, &b).unwrap();
        DenseTile::gemm_acc_blocked(&mut c_block, &a, &b).unwrap();
        for (x, y) in c_stream.data().iter().zip(c_block.data().iter()) {
            assert!(
                (x - y).abs() < 1e-9 * l as f64,
                "kernels disagree: {x} vs {y}"
            );
        }
    }

    #[test]
    fn kernels_agree_on_varied_shapes() {
        // Shapes straddling every block boundary and the MR=4 remainder.
        for (m, l, n) in [
            (4, 4, 4),
            (5, 7, 3),
            (127, 129, 131),
            (128, 128, 128),
            (130, 257, 259),
            (257, 100, 33),
            (3, 300, 300),
        ] {
            check_agree(m, l, n, (m * 31 + l * 7 + n) as u64);
        }
    }

    #[test]
    fn dispatcher_uses_blocked_for_large_tiles() {
        // Behavioural check: results identical through the dispatcher.
        let a = gen::dense_uniform_tile(1, 0, 0, 200, 200, -1.0, 1.0);
        let b = gen::dense_uniform_tile(2, 0, 0, 200, 200, -1.0, 1.0);
        let via_dispatch = DenseTile::matmul(&a, &b).unwrap();
        let mut via_stream = DenseTile::zeros(200, 200);
        DenseTile::gemm_acc_streaming(&mut via_stream, &a, &b).unwrap();
        for (x, y) in via_dispatch.data().iter().zip(via_stream.data().iter()) {
            assert!((x - y).abs() < 1e-9 * 200.0);
        }
    }

    #[test]
    fn blocked_accumulates_like_streaming() {
        let a = gen::dense_uniform_tile(3, 0, 0, 140, 140, -1.0, 1.0);
        let b = gen::dense_uniform_tile(4, 0, 0, 140, 140, -1.0, 1.0);
        let mut c = DenseTile::from_fn(140, 140, |_, _| 1.0);
        DenseTile::gemm_acc_blocked(&mut c, &a, &b).unwrap();
        let mut expect = DenseTile::from_fn(140, 140, |_, _| 1.0);
        DenseTile::gemm_acc_streaming(&mut expect, &a, &b).unwrap();
        for (x, y) in c.data().iter().zip(expect.data().iter()) {
            assert!((x - y).abs() < 1e-9 * 140.0);
        }
    }

    #[test]
    fn blocked_shape_checks() {
        let a = DenseTile::zeros(130, 130);
        let b = DenseTile::zeros(131, 130);
        let mut c = DenseTile::zeros(130, 130);
        assert!(DenseTile::gemm_acc_blocked(&mut c, &a, &b).is_err());
    }
}
