//! Naive untiled reference kernels.
//!
//! These are deliberately simple O(n³)/O(n²) implementations against flat
//! row-major buffers. The test suites (including property tests) use them
//! as ground truth for the tiled kernels and for the distributed engine's
//! end-to-end results.

/// `C = A × B` for row-major buffers; `a` is `m×l`, `b` is `l×n`.
pub fn matmul(a: &[f64], b: &[f64], m: usize, l: usize, n: usize) -> Vec<f64> {
    assert_eq!(a.len(), m * l);
    assert_eq!(b.len(), l * n);
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for k in 0..l {
            let aik = a[i * l + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Transpose of an `m×n` row-major buffer.
pub fn transpose(a: &[f64], m: usize, n: usize) -> Vec<f64> {
    assert_eq!(a.len(), m * n);
    let mut t = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            t[j * m + i] = a[i * n + j];
        }
    }
    t
}

/// Element-wise `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Element-wise `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise `a ⊙ b`.
pub fn elem_mul(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).collect()
}

/// Element-wise `a ⊘ b` with the 0/0 → 0 convention.
pub fn elem_div(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| if *y == 0.0 { 0.0 } else { x / y })
        .collect()
}

/// Frobenius norm.
pub fn frob_norm(a: &[f64]) -> f64 {
    a.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = [1.0, 2.0, 3.0]; // 1x3
        let b = [1.0, 1.0, 1.0]; // 3x1
        assert_eq!(matmul(&a, &b, 1, 3, 1), vec![6.0]);
    }

    #[test]
    fn transpose_rect() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        assert_eq!(transpose(&a, 2, 3), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn elementwise_kernels() {
        let a = [2.0, 4.0];
        let b = [1.0, 0.0];
        assert_eq!(add(&a, &b), vec![3.0, 4.0]);
        assert_eq!(sub(&a, &b), vec![1.0, 4.0]);
        assert_eq!(elem_mul(&a, &b), vec![2.0, 0.0]);
        assert_eq!(elem_div(&a, &b), vec![2.0, 0.0]);
    }

    #[test]
    fn frob() {
        assert_eq!(frob_norm(&[3.0, 4.0]), 5.0);
    }
}
