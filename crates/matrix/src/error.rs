//! Error type shared by the matrix substrate.

use std::fmt;

/// Errors raised by tile and matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Operation being attempted, e.g. `"gemm"`.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A tile index was outside the matrix' tile grid.
    TileOutOfBounds {
        /// Requested tile coordinate.
        tile: (usize, usize),
        /// Grid extent in tiles.
        grid: (usize, usize),
    },
    /// An operation that needs materialised data received a phantom tile.
    PhantomData {
        /// Operation being attempted.
        op: &'static str,
    },
    /// A serialized tile could not be decoded.
    Corrupt(String),
    /// Sparse structure is internally inconsistent (bad CSR arrays).
    InvalidSparse(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::TileOutOfBounds { tile, grid } => write!(
                f,
                "tile ({}, {}) out of bounds for {}x{} tile grid",
                tile.0, tile.1, grid.0, grid.1
            ),
            MatrixError::PhantomData { op } => {
                write!(
                    f,
                    "operation {op} requires materialised data but got a phantom tile"
                )
            }
            MatrixError::Corrupt(msg) => write!(f, "corrupt tile encoding: {msg}"),
            MatrixError::InvalidSparse(msg) => write!(f, "invalid sparse structure: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// Convenient result alias for the matrix substrate.
pub type Result<T> = std::result::Result<T, MatrixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = MatrixError::ShapeMismatch {
            op: "gemm",
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in gemm: left is 2x3, right is 4x5"
        );
    }

    #[test]
    fn display_out_of_bounds() {
        let e = MatrixError::TileOutOfBounds {
            tile: (9, 0),
            grid: (3, 3),
        };
        assert!(e.to_string().contains("tile (9, 0)"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&MatrixError::Corrupt("x".into()));
    }
}
