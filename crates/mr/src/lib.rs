//! # cumulon-mr
//!
//! The baseline substrate: a MapReduce engine simulation and SystemML-style
//! matrix operators on top of it.
//!
//! Cumulon's headline performance claim is architectural: matrix workloads
//! pay real structural costs on classic MapReduce — key-value blocking, a
//! sort/spill/shuffle/merge pipeline between map and reduce, one (or two)
//! rigid MR jobs per operator with intermediate results materialised to
//! replicated HDFS, and per-job scheduling latency. To reproduce the
//! paper's comparisons without the authors' Hadoop/SystemML testbed, this
//! crate implements those costs faithfully on the same simulated cluster
//! (`cumulon-cluster`) and DFS (`cumulon-dfs`) that Cumulon-RS runs on:
//!
//! * [`engine`] — a generic MR engine: map tasks emit tagged tiles keyed by
//!   block coordinate; emitted bytes are charged as map-side spill (disk),
//!   shuffle fetch (network) and reduce-side merge (disk); every MR job
//!   additionally pays a scheduling latency. Both map and reduce tasks run
//!   real tile math, so baseline results are verifiable.
//! * [`systemml`] — matrix operators in the style SystemML executed on
//!   Hadoop MR1: replication-based matrix multiply (RMM, one job),
//!   cross-product multiply (CPMM, two jobs with replicated intermediate
//!   materialisation), shuffle-based element-wise/transpose operators, and
//!   an unfused op-at-a-time program executor.

pub mod engine;
pub mod systemml;

pub use engine::{Emitter, MrConfig, MrEngine, MrJobSpec, ReduceKey, TaggedTile};
pub use systemml::{MrOp, MrProgram, MulStrategy};
