//! A MapReduce engine simulated on the cumulon cluster substrate.
//!
//! An MR job is lowered to (up to) two map-only cluster jobs — the map
//! phase and the reduce phase — chained by a dependency, plus explicit
//! charges for the machinery between them:
//!
//! * **map output spill**: emitted bytes are written to local disk
//!   (`sort_spill_passes` times over, modelling multi-pass external sort);
//! * **shuffle fetch**: each reducer pulls its partition over the network;
//! * **reduce merge**: fetched bytes make `merge_passes` additional local
//!   disk round trips before the reduce function sees them;
//! * **job scheduling latency**: each MR job pays `job_startup_s` once, on
//!   its first phase's critical path.
//!
//! Values are [`TaggedTile`]s so joins (e.g. pairing A- and B-operand tiles
//! in a matrix-multiply reducer) can tell their inputs apart.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use cumulon_cluster::billing::BillingPolicy;
use cumulon_cluster::scheduler::{FailurePlan, Scheduler, SchedulerConfig};
use cumulon_cluster::{
    ClusterSpec, ExecMode, HardwareModel, Job, JobDag, RunReport, Task, TaskCtx,
};
use cumulon_dfs::{IoReceipt, TileStore};
use cumulon_matrix::Tile;

use cumulon_cluster::error::Result;

/// Reduce key: an output block coordinate (or any `(u32, u32)` grouping).
pub type ReduceKey = (u32, u32);

/// A shuffle value: a tile tagged with its operand and its position along
/// the join dimension.
#[derive(Debug, Clone)]
pub struct TaggedTile {
    /// Operand tag (0 = left/A, 1 = right/B, free-form otherwise).
    pub tag: u8,
    /// Join index (e.g. the shared dimension `k` in a multiply).
    pub k: u32,
    /// The payload. Shared so a mapper fanning one tile out to many keys
    /// emits handles, not deep copies.
    pub tile: Arc<Tile>,
}

impl TaggedTile {
    /// Serialized size on the shuffle wire (tile + key/tag header).
    pub fn wire_bytes(&self) -> u64 {
        self.tile.stored_bytes() + 16
    }
}

/// MR framework cost constants.
#[derive(Debug, Clone, Copy)]
pub struct MrConfig {
    /// Per-MR-job scheduling latency in seconds (JobTracker round trips).
    pub job_startup_s: f64,
    /// How many times map output is written to local disk before serving
    /// (1.0 = single spill; >1 models multi-pass external sort).
    pub sort_spill_passes: f64,
    /// Local-disk round trips on the reduce side before reducing.
    pub merge_passes: f64,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            job_startup_s: 15.0,
            sort_spill_passes: 1.0,
            merge_passes: 1.0,
        }
    }
}

/// Collects map emissions and tallies their bytes.
pub struct Emitter {
    out: Vec<(ReduceKey, TaggedTile)>,
    bytes: u64,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            out: Vec::new(),
            bytes: 0,
        }
    }

    /// Emits a value for a key.
    pub fn emit(&mut self, key: ReduceKey, value: TaggedTile) {
        self.bytes += value.wire_bytes();
        self.out.push((key, value));
    }

    /// Bytes emitted so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Map function: reads inputs through the task context, emits tagged tiles.
pub type MapFn = Arc<dyn Fn(&mut TaskCtx, &mut Emitter) -> Result<()> + Send + Sync>;
/// Reduce function: one key and its values; writes outputs via the context.
pub type ReduceFn = Arc<dyn Fn(&mut TaskCtx, ReduceKey, &[TaggedTile]) -> Result<()> + Send + Sync>;

/// Specification of one MR job.
pub struct MrJobSpec {
    /// Job name (phases are suffixed `.map` / `.reduce`).
    pub name: String,
    /// One map task per entry.
    pub mappers: Vec<MapFn>,
    /// Reduce function (ignored when `reducers == 0`).
    pub reducer: Option<ReduceFn>,
    /// Number of reduce tasks. 0 = map-only job (mappers write outputs
    /// directly through their context).
    pub reducers: usize,
    /// Indices of MR jobs (in the submitted batch) this job depends on.
    pub deps: Vec<usize>,
}

/// One slot per map task, filled with that mapper's emissions. Slots keep
/// shuffle contents independent of mapper *completion* order (map tasks may
/// run concurrently on the worker pool, and a retried attempt simply
/// overwrites its own slot); reducers merge slots in mapper-index order, so
/// reduce input order is canonical.
type ShuffleBuf = Arc<Mutex<Vec<Option<Vec<(ReduceKey, TaggedTile)>>>>>;

/// Deterministic key → reducer partitioner.
pub fn partition(key: ReduceKey, reducers: usize) -> usize {
    let h = (key.0 as u64)
        .wrapping_mul(2_654_435_761)
        .wrapping_add(key.1 as u64);
    (h % reducers.max(1) as u64) as usize
}

/// The MapReduce engine: runs batches of MR jobs on a simulated cluster.
pub struct MrEngine {
    spec: ClusterSpec,
    store: TileStore,
    hw: HardwareModel,
    config: MrConfig,
    billing: BillingPolicy,
}

impl MrEngine {
    /// Creates an engine over an existing tile store (so baselines and
    /// Cumulon can read the same inputs).
    pub fn new(spec: ClusterSpec, store: TileStore, hw: HardwareModel, config: MrConfig) -> Self {
        MrEngine {
            spec,
            store,
            hw,
            config,
            billing: BillingPolicy::HourlyCeil,
        }
    }

    /// Overrides the billing policy.
    pub fn set_billing(&mut self, policy: BillingPolicy) {
        self.billing = policy;
    }

    /// The tile store.
    pub fn store(&self) -> &TileStore {
        &self.store
    }

    /// The cluster spec this engine schedules onto.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// Runs a batch of MR jobs (dependencies refer to batch indices).
    pub fn run(&self, specs: Vec<MrJobSpec>, mode: ExecMode) -> Result<RunReport> {
        let mut dag = JobDag::new();
        // Cluster-job index of each MR job's final phase.
        let mut final_phase: Vec<usize> = Vec::with_capacity(specs.len());
        let config = self.config;

        for spec in &specs {
            let cluster_deps: Vec<usize> = spec.deps.iter().map(|&d| final_phase[d]).collect();
            let shuffle: ShuffleBuf = Arc::new(Mutex::new(vec![None; spec.mappers.len()]));

            // --- map phase -------------------------------------------------
            let mut map_tasks = Vec::with_capacity(spec.mappers.len());
            for (idx, mapper) in spec.mappers.iter().enumerate() {
                let mapper = Arc::clone(mapper);
                let shuffle = Arc::clone(&shuffle);
                let spills = config.sort_spill_passes;
                let startup = if idx == 0 { config.job_startup_s } else { 0.0 };
                map_tasks.push(Task::new(move |ctx| {
                    ctx.charge_seconds(startup);
                    let mut emitter = Emitter::new();
                    mapper(ctx, &mut emitter)?;
                    let bytes = emitter.bytes();
                    // Spill map output to local disk (sort passes write and
                    // re-read all but the final copy).
                    ctx.charge_write_io(IoReceipt {
                        bytes: (bytes as f64 * spills) as u64,
                        local_bytes: (bytes as f64 * spills) as u64,
                        remote_bytes: 0,
                    });
                    if spills > 1.0 {
                        ctx.charge_read_io(IoReceipt {
                            bytes: (bytes as f64 * (spills - 1.0)) as u64,
                            local_bytes: (bytes as f64 * (spills - 1.0)) as u64,
                            remote_bytes: 0,
                        });
                    }
                    shuffle.lock()[idx] = Some(emitter.out);
                    Ok(())
                }));
            }
            let has_map = !map_tasks.is_empty();
            let map_job_idx = if has_map {
                Some(dag.push(
                    Job::new(format!("{}.map", spec.name), "mr-map", map_tasks),
                    cluster_deps.clone(),
                ))
            } else {
                None
            };

            // --- reduce phase ----------------------------------------------
            if spec.reducers > 0 {
                let reducer = spec
                    .reducer
                    .as_ref()
                    .expect("reducers > 0 requires a reduce function");
                let reducers = spec.reducers;
                let mut reduce_tasks = Vec::with_capacity(reducers);
                for r in 0..reducers {
                    let reducer = Arc::clone(reducer);
                    let shuffle = Arc::clone(&shuffle);
                    let merges = config.merge_passes;
                    let startup = if !has_map && r == 0 {
                        config.job_startup_s
                    } else {
                        0.0
                    };
                    reduce_tasks.push(Task::new(move |ctx| {
                        ctx.charge_seconds(startup);
                        // This reducer's partition: keys sorted, values in
                        // mapper-index order then emission order — canonical
                        // regardless of which order the map tasks finished.
                        let mine: Vec<(ReduceKey, Vec<TaggedTile>)> = {
                            let buf = shuffle.lock();
                            let mut grouped: BTreeMap<ReduceKey, Vec<TaggedTile>> = BTreeMap::new();
                            for entries in buf.iter().flatten() {
                                for (key, value) in entries {
                                    if partition(*key, reducers) == r {
                                        grouped.entry(*key).or_default().push(value.clone());
                                    }
                                }
                            }
                            grouped.into_iter().collect()
                        };
                        let fetched: u64 = mine
                            .iter()
                            .flat_map(|(_, vs)| vs.iter())
                            .map(TaggedTile::wire_bytes)
                            .sum();
                        // Shuffle fetch over the network.
                        ctx.charge_read_io(IoReceipt {
                            bytes: fetched,
                            local_bytes: 0,
                            remote_bytes: fetched,
                        });
                        // Merge passes on local disk.
                        let merge_bytes = (fetched as f64 * merges) as u64;
                        ctx.charge_write_io(IoReceipt {
                            bytes: merge_bytes,
                            local_bytes: merge_bytes,
                            remote_bytes: 0,
                        });
                        ctx.charge_read_io(IoReceipt {
                            bytes: merge_bytes,
                            local_bytes: merge_bytes,
                            remote_bytes: 0,
                        });
                        for (key, values) in &mine {
                            reducer(ctx, *key, values)?;
                        }
                        Ok(())
                    }));
                }
                let reduce_deps = match map_job_idx {
                    Some(m) => vec![m],
                    None => cluster_deps,
                };
                let idx = dag.push(
                    Job::new(format!("{}.reduce", spec.name), "mr-reduce", reduce_tasks),
                    reduce_deps,
                );
                final_phase.push(idx);
            } else {
                final_phase.push(map_job_idx.expect("job must have mappers or reducers"));
            }
        }

        let scheduler = Scheduler::new(self.spec, self.store.clone(), self.hw, self.billing);
        scheduler.run(
            &dag,
            mode,
            SchedulerConfig::default(),
            &FailurePlan::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_dfs::{Dfs, DfsConfig};
    use cumulon_matrix::{DenseTile, MatrixMeta};

    fn engine() -> MrEngine {
        let spec = ClusterSpec::named("m1.large", 2, 2).unwrap();
        let store = TileStore::new(Dfs::new(spec.nodes, DfsConfig::default()));
        MrEngine::new(spec, store, HardwareModel::default(), MrConfig::default())
    }

    fn identity_tile(n: usize) -> Tile {
        Tile::dense(DenseTile::identity(n))
    }

    #[test]
    fn map_reduce_roundtrip_sums_by_key() {
        let e = engine();
        e.store().register("out", MatrixMeta::new(2, 2, 2)).unwrap();
        // Two mappers each emit the identity to key (0,0): reducer sums.
        let mapper: MapFn = Arc::new(|_ctx, em| {
            em.emit(
                (0, 0),
                TaggedTile {
                    tag: 0,
                    k: 0,
                    tile: Arc::new(identity_tile(2)),
                },
            );
            Ok(())
        });
        let reducer: ReduceFn = Arc::new(|ctx, _key, values| {
            let mut acc = Tile::zeros(2, 2);
            for v in values {
                acc.add_assign(&v.tile)?;
                ctx.charge(cumulon_matrix::ops::add_work(&acc, &v.tile));
            }
            ctx.write_tile("out", 0, 0, &acc)?;
            Ok(())
        });
        let spec = MrJobSpec {
            name: "sum".into(),
            mappers: vec![Arc::clone(&mapper), mapper],
            reducer: Some(reducer),
            reducers: 1,
            deps: vec![],
        };
        let report = e.run(vec![spec], ExecMode::Real).unwrap();
        assert_eq!(report.jobs.len(), 2); // map + reduce phases
        let out = e.store().get_local("out").unwrap();
        assert_eq!(out.sum(), 4.0); // 2 × identity(2)
    }

    #[test]
    fn shuffle_bytes_are_charged() {
        let e = engine();
        e.store().register("out", MatrixMeta::new(2, 2, 2)).unwrap();
        let mapper: MapFn = Arc::new(|_ctx, em| {
            em.emit(
                (0, 0),
                TaggedTile {
                    tag: 0,
                    k: 0,
                    tile: Arc::new(identity_tile(2)),
                },
            );
            Ok(())
        });
        let reducer: ReduceFn = Arc::new(|ctx, _k, vs| {
            ctx.write_tile("out", 0, 0, vs[0].tile.clone())?;
            Ok(())
        });
        let spec = MrJobSpec {
            name: "x".into(),
            mappers: vec![mapper],
            reducer: Some(reducer),
            reducers: 1,
            deps: vec![],
        };
        let report = e.run(vec![spec], ExecMode::Real).unwrap();
        let map = report.job("x.map").unwrap();
        let red = report.job("x.reduce").unwrap();
        assert!(map.receipt.write.local_bytes > 0, "spill charged");
        assert!(red.receipt.read.remote_bytes > 0, "shuffle fetch charged");
        assert!(red.receipt.read.local_bytes > 0, "merge pass charged");
    }

    #[test]
    fn job_startup_lands_on_critical_path() {
        let run_with_startup = |startup: f64| {
            let spec = ClusterSpec::named("m1.large", 1, 1).unwrap();
            let store = TileStore::new(Dfs::new(1, DfsConfig::default()));
            let e = MrEngine::new(
                spec,
                store,
                HardwareModel {
                    noise: cumulon_cluster::hw::NoiseModel::none(),
                    ..Default::default()
                },
                MrConfig {
                    job_startup_s: startup,
                    ..Default::default()
                },
            );
            let mapper: MapFn = Arc::new(|_, _| Ok(()));
            let spec = MrJobSpec {
                name: "m".into(),
                mappers: vec![mapper],
                reducer: None,
                reducers: 0,
                deps: vec![],
            };
            e.run(vec![spec], ExecMode::Real).unwrap().makespan_s
        };
        let slow = run_with_startup(30.0);
        let fast = run_with_startup(0.0);
        assert!((slow - fast - 30.0).abs() < 1.0, "slow {slow} fast {fast}");
    }

    #[test]
    fn chained_jobs_respect_deps() {
        let e = engine();
        e.store().register("a", MatrixMeta::new(2, 2, 2)).unwrap();
        e.store().register("b", MatrixMeta::new(2, 2, 2)).unwrap();
        let m1: MapFn = Arc::new(|ctx, _| {
            ctx.write_tile("a", 0, 0, identity_tile(2))?;
            Ok(())
        });
        let m2: MapFn = Arc::new(|ctx, _| {
            let t = ctx.read_tile("a", 0, 0)?; // requires job 0 to be done
            ctx.write_tile("b", 0, 0, t)?;
            Ok(())
        });
        let specs = vec![
            MrJobSpec {
                name: "j0".into(),
                mappers: vec![m1],
                reducer: None,
                reducers: 0,
                deps: vec![],
            },
            MrJobSpec {
                name: "j1".into(),
                mappers: vec![m2],
                reducer: None,
                reducers: 0,
                deps: vec![0],
            },
        ];
        let report = e.run(specs, ExecMode::Real).unwrap();
        assert!(report.job("j1.map").unwrap().start_s >= report.job("j0.map").unwrap().end_s);
        assert_eq!(e.store().get_local("b").unwrap().sum(), 2.0);
    }

    #[test]
    fn partitioner_covers_all_reducers() {
        let mut seen = [false; 4];
        for i in 0..16u32 {
            for j in 0..16u32 {
                seen[partition((i, j), 4)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(partition((3, 5), 1), 0);
    }

    #[test]
    fn multiple_reducers_split_keys() {
        let e = engine();
        e.store().register("out", MatrixMeta::new(4, 4, 2)).unwrap();
        let mapper: MapFn = Arc::new(|_ctx, em| {
            for i in 0..2u32 {
                for j in 0..2u32 {
                    em.emit(
                        (i, j),
                        TaggedTile {
                            tag: 0,
                            k: 0,
                            tile: Arc::new(identity_tile(2)),
                        },
                    );
                }
            }
            Ok(())
        });
        let reducer: ReduceFn = Arc::new(|ctx, key, vs| {
            ctx.write_tile("out", key.0 as usize, key.1 as usize, vs[0].tile.clone())?;
            Ok(())
        });
        let spec = MrJobSpec {
            name: "p".into(),
            mappers: vec![mapper],
            reducer: Some(reducer),
            reducers: 3,
            deps: vec![],
        };
        e.run(vec![spec], ExecMode::Real).unwrap();
        let out = e.store().get_local("out").unwrap();
        assert_eq!(out.sum(), 8.0); // four identity(2) tiles
    }
}
