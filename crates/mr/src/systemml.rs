//! SystemML-style matrix operators on MapReduce.
//!
//! SystemML (and HAMA-style systems) execute linear algebra on Hadoop MR1
//! one operator at a time, with matrices blocked into key-value records.
//! This module reproduces the two classic matrix-multiply strategies and
//! the shuffle-based unary/binary operators:
//!
//! * **RMM** (replication-based matrix multiply): one MR job; each A-block
//!   `(i,k)` is replicated to every output column `j` and each B-block
//!   `(k,j)` to every output row `i`, so the shuffle carries
//!   `|A|·N + |B|·M` block copies.
//! * **CPMM** (cross-product matrix multiply): two MR jobs; job 1 groups by
//!   the shared dimension `k` and materialises *partial products* —
//!   `K` full-size partial result matrices written to replicated DFS
//!   storage — which job 2 re-reads, shuffles by output block, and sums.
//! * element-wise and transpose operators each pay a full MR job whose
//!   shuffle carries the entire result matrix; scalar ops are map-only.
//!
//! No fusion across operators and a per-job scheduling latency: exactly the
//! structural overheads Cumulon's map-only, multi-input, fused execution
//! model avoids.

use std::sync::Arc;

use cumulon_cluster::error::{ClusterError, Result};
use cumulon_cluster::{ExecMode, RunReport};
use cumulon_matrix::ops as mops;
use cumulon_matrix::tile::ElemOp;
use cumulon_matrix::{MatrixMeta, Tile};

use crate::engine::{MapFn, MrEngine, MrJobSpec, ReduceFn, TaggedTile};

/// Matrix-multiply execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulStrategy {
    /// Replication-based, one MR job.
    Rmm,
    /// Cross-product, two MR jobs with materialised partials.
    Cpmm,
    /// Pick by estimated shuffle volume (SystemML's own heuristic).
    Auto,
}

/// One SystemML-style operator over named matrices in the tile store.
#[derive(Debug, Clone)]
pub enum MrOp {
    /// `out = a × b`
    Mul {
        /// Left operand name.
        a: String,
        /// Right operand name.
        b: String,
        /// Output name.
        out: String,
        /// Multiply strategy.
        strategy: MulStrategy,
    },
    /// `out = a (op) b`, element-wise.
    Elementwise {
        /// Left operand name.
        a: String,
        /// Right operand name.
        b: String,
        /// Output name.
        out: String,
        /// The element-wise operator.
        op: ElemOp,
    },
    /// `out = aᵀ`
    Transpose {
        /// Operand name.
        a: String,
        /// Output name.
        out: String,
    },
    /// `out = factor · a` (map-only job).
    Scale {
        /// Operand name.
        a: String,
        /// Output name.
        out: String,
        /// Scalar factor.
        factor: f64,
    },
}

/// A straight-line program of operators, executed op-at-a-time (no fusion).
#[derive(Debug, Clone, Default)]
pub struct MrProgram {
    /// Operators in execution order.
    pub ops: Vec<MrOp>,
}

impl MrProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operator (builder style).
    pub fn push(mut self, op: MrOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Executes the program on the MR engine. Output matrices are
    /// registered in the engine's tile store as a side effect.
    pub fn execute(&self, engine: &MrEngine, mode: ExecMode) -> Result<RunReport> {
        let mut specs: Vec<MrJobSpec> = Vec::new();
        for op in &self.ops {
            // Serialize operators: each op's first job depends on the
            // previous op's last job (SystemML's op-at-a-time execution).
            let dep = specs
                .len()
                .checked_sub(1)
                .map(|d| vec![d])
                .unwrap_or_default();
            match op {
                MrOp::Mul {
                    a,
                    b,
                    out,
                    strategy,
                } => {
                    let (am, bm) = (lookup(engine, a)?, lookup(engine, b)?);
                    check_mul(&am, &bm, a, b)?;
                    let out_meta = MatrixMeta::new(am.rows, bm.cols, am.tile_size);
                    register(engine, out, out_meta)?;
                    let strategy = resolve_strategy(
                        *strategy,
                        &am,
                        &bm,
                        density_of(engine, a),
                        density_of(engine, b),
                        engine.spec().total_slots(),
                    );
                    match strategy {
                        MulStrategy::Rmm => {
                            specs.push(rmm_job(engine, a, b, out, am, bm, out_meta, dep));
                        }
                        MulStrategy::Cpmm => {
                            let (j1, j2) = cpmm_jobs(engine, a, b, out, am, bm, out_meta, dep)?;
                            specs.push(j1);
                            let j1_idx = specs.len() - 1;
                            let mut j2 = j2;
                            j2.deps = vec![j1_idx];
                            specs.push(j2);
                        }
                        MulStrategy::Auto => unreachable!("resolved above"),
                    }
                }
                MrOp::Elementwise { a, b, out, op } => {
                    let (am, bm) = (lookup(engine, a)?, lookup(engine, b)?);
                    if am != bm {
                        return Err(ClusterError::InvalidSpec(format!(
                            "elementwise operands {a} and {b} have different shapes"
                        )));
                    }
                    register(engine, out, am)?;
                    specs.push(elementwise_job(engine, a, b, out, am, *op, dep));
                }
                MrOp::Transpose { a, out } => {
                    let am = lookup(engine, a)?;
                    register(engine, out, am.transposed())?;
                    specs.push(transpose_job(engine, a, out, am, dep));
                }
                MrOp::Scale { a, out, factor } => {
                    let am = lookup(engine, a)?;
                    register(engine, out, am)?;
                    specs.push(scale_job(engine, a, out, am, *factor, dep));
                }
            }
        }
        engine.run(specs, mode)
    }
}

fn lookup(engine: &MrEngine, name: &str) -> Result<MatrixMeta> {
    Ok(engine.store().lookup(name)?.meta)
}

/// Expected density of a matrix (from its generator if generator-backed,
/// else assumed dense) — used only to size mapper input splits.
fn density_of(engine: &MrEngine, name: &str) -> f64 {
    engine
        .store()
        .lookup(name)
        .ok()
        .and_then(|h| h.generator.map(|g| g.expected_density()))
        .unwrap_or(1.0)
}

/// Hadoop-style input split: one mapper per ~128 MB of stored tiles.
const SPLIT_BYTES: u64 = 128 << 20;

/// Groups a matrix' tile coordinates into mapper-sized chunks. `fan_out`
/// is how many copies of each tile the mapper will emit (RMM replication):
/// splits are sized by *emitted* volume so a replicating map phase
/// parallelises the way Hadoop's many-small-files inputs do.
fn mapper_chunks_fanout(
    meta: MatrixMeta,
    density: f64,
    fan_out: usize,
) -> Vec<Vec<(usize, usize)>> {
    let tiles = meta.tile_count().max(1);
    let avg_tile = meta.stored_bytes_at_density(density) / tiles as u64 * fan_out.max(1) as u64;
    let per_mapper = (SPLIT_BYTES / avg_tile.max(1)).clamp(1, 8_192) as usize;
    let coords: Vec<(usize, usize)> = meta.grid().iter().collect();
    coords.chunks(per_mapper).map(|c| c.to_vec()).collect()
}

/// Groups a matrix' tile coordinates into plain ~128 MB input splits.
fn mapper_chunks(meta: MatrixMeta, density: f64) -> Vec<Vec<(usize, usize)>> {
    mapper_chunks_fanout(meta, density, 1)
}

fn register(engine: &MrEngine, name: &str, meta: MatrixMeta) -> Result<()> {
    engine.store().register(name, meta)?;
    Ok(())
}

fn check_mul(am: &MatrixMeta, bm: &MatrixMeta, a: &str, b: &str) -> Result<()> {
    if am.cols != bm.rows || am.tile_size != bm.tile_size {
        return Err(ClusterError::InvalidSpec(format!(
            "cannot multiply {a} ({}x{}, tile {}) by {b} ({}x{}, tile {})",
            am.rows, am.cols, am.tile_size, bm.rows, bm.cols, bm.tile_size
        )));
    }
    Ok(())
}

/// SystemML's heuristic: RMM when the replicated shuffle is smaller than
/// CPMM's traffic, measured in *bytes* (so sparse operands are cheap to
/// replicate). RMM replicates every A block to each of the `Nt` output
/// columns and every B block to each of the `Mt` output rows. CPMM
/// shuffles each input once, then its `G` reduce groups
/// (`G = min(Kt, slots)`, thanks to reducer-side pre-aggregation) each
/// materialise one full-size partial matrix to 3×-replicated storage and
/// job 2 reads it back.
fn resolve_strategy(
    s: MulStrategy,
    am: &MatrixMeta,
    bm: &MatrixMeta,
    da: f64,
    db: f64,
    total_slots: u32,
) -> MulStrategy {
    match s {
        MulStrategy::Auto => {
            let ga = am.grid();
            let (mt, nt) = (ga.tile_rows as f64, bm.grid().tile_cols as f64);
            let kt = ga.tile_cols as f64;
            let bytes_a = am.stored_bytes_at_density(da) as f64;
            let bytes_b = bm.stored_bytes_at_density(db) as f64;
            let out_dense = (am.rows as f64) * (bm.cols as f64) * 8.0;
            let groups = kt.min(total_slots.max(1) as f64);
            let rmm_vol = nt * bytes_a + mt * bytes_b;
            let cpmm_vol = bytes_a + bytes_b + 4.0 * groups * out_dense;
            if rmm_vol <= cpmm_vol {
                MulStrategy::Rmm
            } else {
                MulStrategy::Cpmm
            }
        }
        other => other,
    }
}

/// Builds the single RMM job.
#[allow(clippy::too_many_arguments)]
fn rmm_job(
    engine: &MrEngine,
    a: &str,
    b: &str,
    out: &str,
    am: MatrixMeta,
    bm: MatrixMeta,
    out_meta: MatrixMeta,
    deps: Vec<usize>,
) -> MrJobSpec {
    let ga = am.grid();
    let gb = bm.grid();
    let (mt, nt) = (ga.tile_rows, gb.tile_cols);
    let mut mappers: Vec<MapFn> = Vec::new();
    for chunk in mapper_chunks_fanout(am, density_of(engine, a), nt) {
        let a = a.to_string();
        mappers.push(Arc::new(move |ctx, em| {
            for &(ti, tk) in &chunk {
                let tile = ctx.read_tile(&a, ti, tk)?;
                for j in 0..nt {
                    em.emit(
                        (ti as u32, j as u32),
                        TaggedTile {
                            tag: 0,
                            k: tk as u32,
                            tile: tile.clone(),
                        },
                    );
                }
            }
            Ok(())
        }));
    }
    for chunk in mapper_chunks_fanout(bm, density_of(engine, b), mt) {
        let b = b.to_string();
        mappers.push(Arc::new(move |ctx, em| {
            for &(tk, tj) in &chunk {
                let tile = ctx.read_tile(&b, tk, tj)?;
                for i in 0..mt {
                    em.emit(
                        (i as u32, tj as u32),
                        TaggedTile {
                            tag: 1,
                            k: tk as u32,
                            tile: tile.clone(),
                        },
                    );
                }
            }
            Ok(())
        }));
    }
    let out = out.to_string();
    let reducer: ReduceFn = Arc::new(move |ctx, key, values| {
        let (ti, tj) = (key.0 as usize, key.1 as usize);
        let mut acc: Option<Tile> = None;
        // Pair A and B contributions by shared index k. A streaming reducer
        // holds the accumulator plus one pair at a time.
        let mut a_by_k: Vec<Option<&Tile>> = Vec::new();
        let mut b_by_k: Vec<Option<&Tile>> = Vec::new();
        for v in values {
            let side = if v.tag == 0 { &mut a_by_k } else { &mut b_by_k };
            let k = v.k as usize;
            if side.len() <= k {
                side.resize(k + 1, None);
            }
            side[k] = Some(&v.tile);
        }
        for k in 0..a_by_k.len().min(b_by_k.len()) {
            if let (Some(at), Some(bt)) = (a_by_k[k], b_by_k[k]) {
                ctx.charge(mops::mul_work(at, bt));
                let partial = at.mul(bt)?;
                match &mut acc {
                    None => acc = Some(partial),
                    Some(c) => {
                        ctx.charge(mops::add_work(c, &partial));
                        c.add_assign(&partial)?;
                    }
                }
            }
        }
        if let Some(c) = acc {
            ctx.charge_mem_mb(c.stored_bytes() as f64 / 1e6 * 3.0);
            ctx.write_tile(&out, ti, tj, c)?;
        }
        Ok(())
    });
    let reducers = reducer_count(engine, out_meta);
    MrJobSpec {
        name: format!("rmm({a}x{b})"),
        mappers,
        reducer: Some(reducer),
        reducers,
        deps,
    }
}

/// Builds the two CPMM jobs. Intermediate partial matrices `__cpmm_<out>_g`
/// (one per reduce *group*, thanks to reducer-side pre-aggregation across
/// the shared dimension) are registered and written to the (replicated)
/// store between the jobs.
#[allow(clippy::too_many_arguments)]
fn cpmm_jobs(
    engine: &MrEngine,
    a: &str,
    b: &str,
    out: &str,
    am: MatrixMeta,
    bm: MatrixMeta,
    out_meta: MatrixMeta,
    deps: Vec<usize>,
) -> Result<(MrJobSpec, MrJobSpec)> {
    let ga = am.grid();
    let kt = ga.tile_cols;
    // Shared-dimension bands are hashed into `groups` reduce groups; each
    // group pre-aggregates its partial products before materialising.
    let groups = kt.min((engine.spec().total_slots() as usize).max(1));
    for g in 0..groups {
        register(engine, &cpmm_partial_name(out, g), out_meta)?;
    }

    // Job 1: group by k-band group, compute pre-aggregated partials.
    let mut mappers: Vec<MapFn> = Vec::new();
    for chunk in mapper_chunks(am, density_of(engine, a)) {
        let a = a.to_string();
        mappers.push(Arc::new(move |ctx, em| {
            for &(ti, tk) in &chunk {
                let tile = ctx.read_tile(&a, ti, tk)?;
                // Join index packs (shared k, own index) so the reducer
                // can pair contributions with the same k.
                let k = ((tk as u32) << 16) | ti as u32;
                em.emit(((tk % groups) as u32, 0), TaggedTile { tag: 0, k, tile });
            }
            Ok(())
        }));
    }
    for chunk in mapper_chunks(bm, density_of(engine, b)) {
        let b = b.to_string();
        mappers.push(Arc::new(move |ctx, em| {
            for &(tk, tj) in &chunk {
                let tile = ctx.read_tile(&b, tk, tj)?;
                let k = ((tk as u32) << 16) | tj as u32;
                em.emit(((tk % groups) as u32, 0), TaggedTile { tag: 1, k, tile });
            }
            Ok(())
        }));
    }
    let out1 = out.to_string();
    let reducer1: ReduceFn = Arc::new(move |ctx, key, values| {
        let g = key.0 as usize;
        let partial_name = cpmm_partial_name(&out1, g);
        // acc[(i, j)] accumulates over every shared band in this group:
        // the pre-aggregation that makes CPMM competitive.
        let mut acc: std::collections::BTreeMap<(usize, usize), Tile> =
            std::collections::BTreeMap::new();
        for va in values.iter().filter(|v| v.tag == 0) {
            let (ka, i) = ((va.k >> 16) as usize, (va.k & 0xffff) as usize);
            for vb in values.iter().filter(|v| v.tag == 1) {
                let (kb, j) = ((vb.k >> 16) as usize, (vb.k & 0xffff) as usize);
                if ka != kb {
                    continue;
                }
                ctx.charge(mops::mul_work(&va.tile, &vb.tile));
                let p = va.tile.mul(&vb.tile)?;
                match acc.entry((i, j)) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(p);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        ctx.charge(mops::add_work(e.get(), &p));
                        e.get_mut().add_assign(&p)?;
                    }
                }
            }
        }
        let acc_bytes: u64 = acc.values().map(Tile::stored_bytes).sum();
        ctx.charge_mem_mb(acc_bytes as f64 / 1e6);
        for ((i, j), tile) in acc {
            ctx.write_tile(&partial_name, i, j, tile)?;
        }
        Ok(())
    });
    let job1 = MrJobSpec {
        name: format!("cpmm1({a}x{b})"),
        mappers,
        reducer: Some(reducer1),
        reducers: groups,
        deps,
    };

    // Job 2: re-read partials, shuffle by output block, sum. Partial tiles
    // for output blocks no group produced (possible only when a group saw
    // no data) simply do not exist; mappers skip missing tiles.
    let mut mappers2: Vec<MapFn> = Vec::with_capacity(groups);
    let go = out_meta.grid();
    for g in 0..groups {
        let partial_name = cpmm_partial_name(out, g);
        mappers2.push(Arc::new(move |ctx, em| {
            for ti in 0..go.tile_rows {
                for tj in 0..go.tile_cols {
                    match ctx.read_tile(&partial_name, ti, tj) {
                        Ok(tile) => em.emit(
                            (ti as u32, tj as u32),
                            TaggedTile {
                                tag: 0,
                                k: g as u32,
                                tile,
                            },
                        ),
                        Err(ClusterError::Storage(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
            Ok(())
        }));
    }
    let out2 = out.to_string();
    let reducer2: ReduceFn = Arc::new(move |ctx, key, values| {
        let mut acc: Option<Tile> = None;
        for v in values {
            match &mut acc {
                None => acc = Some((*v.tile).clone()),
                Some(c) => {
                    ctx.charge(mops::add_work(c, &v.tile));
                    c.add_assign(&v.tile)?;
                }
            }
        }
        if let Some(c) = acc {
            ctx.write_tile(&out2, key.0 as usize, key.1 as usize, c)?;
        }
        Ok(())
    });
    let job2 = MrJobSpec {
        name: format!("cpmm2({a}x{b})"),
        mappers: mappers2,
        reducer: Some(reducer2),
        reducers: reducer_count(engine, out_meta),
        deps: vec![], // fixed up by the caller
    };
    Ok((job1, job2))
}

fn cpmm_partial_name(out: &str, k: usize) -> String {
    format!("__cpmm_{out}_{k}")
}

fn elementwise_job(
    engine: &MrEngine,
    a: &str,
    b: &str,
    out: &str,
    meta: MatrixMeta,
    op: ElemOp,
    deps: Vec<usize>,
) -> MrJobSpec {
    let mut mappers: Vec<MapFn> = Vec::new();
    for chunk in mapper_chunks(meta, density_of(engine, a)) {
        let (a, b) = (a.to_string(), b.to_string());
        mappers.push(Arc::new(move |ctx, em| {
            for &(ti, tj) in &chunk {
                let at = ctx.read_tile(&a, ti, tj)?;
                let bt = ctx.read_tile(&b, ti, tj)?;
                ctx.charge(mops::elementwise_work(&at, &bt));
                let c = at.elementwise(&bt, op)?;
                em.emit(
                    (ti as u32, tj as u32),
                    TaggedTile {
                        tag: 0,
                        k: 0,
                        tile: Arc::new(c),
                    },
                );
            }
            Ok(())
        }));
    }
    let out = out.to_string();
    let reducer: ReduceFn = Arc::new(move |ctx, key, values| {
        ctx.write_tile(&out, key.0 as usize, key.1 as usize, values[0].tile.clone())?;
        Ok(())
    });
    let reducers = reducer_count(engine, meta);
    MrJobSpec {
        name: format!("elem_{}({a},{b})", op.name()),
        mappers,
        reducer: Some(reducer),
        reducers,
        deps,
    }
}

fn transpose_job(
    engine: &MrEngine,
    a: &str,
    out: &str,
    meta: MatrixMeta,
    deps: Vec<usize>,
) -> MrJobSpec {
    let mut mappers: Vec<MapFn> = Vec::new();
    for chunk in mapper_chunks(meta, density_of(engine, a)) {
        let a = a.to_string();
        mappers.push(Arc::new(move |ctx, em| {
            for &(ti, tj) in &chunk {
                let t = ctx.read_tile(&a, ti, tj)?;
                ctx.charge(mops::transpose_work(&t));
                em.emit(
                    (tj as u32, ti as u32),
                    TaggedTile {
                        tag: 0,
                        k: 0,
                        tile: Arc::new(t.transpose()),
                    },
                );
            }
            Ok(())
        }));
    }
    let out = out.to_string();
    let reducer: ReduceFn = Arc::new(move |ctx, key, values| {
        ctx.write_tile(&out, key.0 as usize, key.1 as usize, values[0].tile.clone())?;
        Ok(())
    });
    let reducers = reducer_count(engine, meta.transposed());
    MrJobSpec {
        name: format!("transpose({a})"),
        mappers,
        reducer: Some(reducer),
        reducers,
        deps,
    }
}

fn scale_job(
    engine: &MrEngine,
    a: &str,
    out: &str,
    meta: MatrixMeta,
    factor: f64,
    deps: Vec<usize>,
) -> MrJobSpec {
    let mut mappers: Vec<MapFn> = Vec::new();
    for chunk in mapper_chunks(meta, density_of(engine, a)) {
        let (a, out) = (a.to_string(), out.to_string());
        mappers.push(Arc::new(move |ctx, em| {
            for &(ti, tj) in &chunk {
                let t = ctx.read_tile(&a, ti, tj)?;
                ctx.charge(mops::map_work(&t));
                let mut t = Arc::unwrap_or_clone(t);
                t.scale(factor);
                ctx.write_tile(&out, ti, tj, t)?;
            }
            let _ = em; // map-only: nothing emitted
            Ok(())
        }));
    }
    MrJobSpec {
        name: format!("scale({a})"),
        mappers,
        reducer: None,
        reducers: 0,
        deps,
    }
}

fn reducer_count(engine: &MrEngine, out_meta: MatrixMeta) -> usize {
    out_meta
        .tile_count()
        .min((engine.spec().total_slots() as usize).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_cluster::{ClusterSpec, HardwareModel};
    use cumulon_dfs::{Dfs, DfsConfig, TileStore};
    use cumulon_matrix::gen::Generator;
    use cumulon_matrix::LocalMatrix;

    use crate::engine::MrConfig;

    fn engine() -> MrEngine {
        let spec = ClusterSpec::named("m1.large", 3, 2).unwrap();
        let store = TileStore::new(Dfs::new(spec.nodes, DfsConfig::default()));
        MrEngine::new(spec, store, HardwareModel::default(), MrConfig::default())
    }

    fn load(engine: &MrEngine, name: &str, rows: usize, cols: usize, seed: u64) -> LocalMatrix {
        let meta = MatrixMeta::new(rows, cols, 4);
        let m = LocalMatrix::generate(
            meta,
            &Generator::DenseUniform {
                seed,
                lo: -1.0,
                hi: 1.0,
            },
        );
        engine.store().put_local(name, &m).unwrap();
        m
    }

    fn assert_close(a: &LocalMatrix, b: &LocalMatrix) {
        assert!(a.max_abs_diff(b).unwrap() < 1e-9, "matrices differ");
    }

    #[test]
    fn rmm_matches_local() {
        let e = engine();
        let a = load(&e, "A", 10, 6, 1);
        let b = load(&e, "B", 6, 8, 2);
        let prog = MrProgram::new().push(MrOp::Mul {
            a: "A".into(),
            b: "B".into(),
            out: "C".into(),
            strategy: MulStrategy::Rmm,
        });
        let report = prog.execute(&e, ExecMode::Real).unwrap();
        assert_close(&e.store().get_local("C").unwrap(), &a.matmul(&b).unwrap());
        // One MR job = two phases.
        assert_eq!(report.jobs.len(), 2);
    }

    #[test]
    fn cpmm_matches_local() {
        let e = engine();
        let a = load(&e, "A", 8, 8, 3);
        let b = load(&e, "B", 8, 5, 4);
        let prog = MrProgram::new().push(MrOp::Mul {
            a: "A".into(),
            b: "B".into(),
            out: "C".into(),
            strategy: MulStrategy::Cpmm,
        });
        let report = prog.execute(&e, ExecMode::Real).unwrap();
        assert_close(&e.store().get_local("C").unwrap(), &a.matmul(&b).unwrap());
        // Two MR jobs = four phases.
        assert_eq!(report.jobs.len(), 4);
    }

    #[test]
    fn cpmm_materialises_replicated_partials() {
        let e = engine();
        load(&e, "A", 8, 8, 3);
        load(&e, "B", 8, 8, 4);
        let prog = MrProgram::new().push(MrOp::Mul {
            a: "A".into(),
            b: "B".into(),
            out: "C".into(),
            strategy: MulStrategy::Cpmm,
        });
        let report = prog.execute(&e, ExecMode::Real).unwrap();
        let job1_reduce = report
            .jobs
            .iter()
            .find(|j| j.name.starts_with("cpmm1") && j.name.ends_with(".reduce"))
            .unwrap();
        assert!(
            job1_reduce.receipt.write.remote_bytes > 0,
            "partials must pay replicated DFS writes"
        );
    }

    #[test]
    fn elementwise_and_transpose_match_local() {
        let e = engine();
        let a = load(&e, "A", 7, 5, 5);
        let b = load(&e, "B", 7, 5, 6);
        let prog = MrProgram::new()
            .push(MrOp::Elementwise {
                a: "A".into(),
                b: "B".into(),
                out: "S".into(),
                op: ElemOp::Add,
            })
            .push(MrOp::Transpose {
                a: "S".into(),
                out: "St".into(),
            });
        prog.execute(&e, ExecMode::Real).unwrap();
        let expect = a.elementwise(&b, ElemOp::Add).unwrap().transpose();
        assert_close(&e.store().get_local("St").unwrap(), &expect);
    }

    #[test]
    fn scale_is_map_only() {
        let e = engine();
        let a = load(&e, "A", 6, 6, 7);
        let prog = MrProgram::new().push(MrOp::Scale {
            a: "A".into(),
            out: "A2".into(),
            factor: 2.0,
        });
        let report = prog.execute(&e, ExecMode::Real).unwrap();
        assert_eq!(report.jobs.len(), 1, "map-only job has a single phase");
        let mut expect = a.clone();
        expect.scale(2.0);
        assert_close(&e.store().get_local("A2").unwrap(), &expect);
    }

    #[test]
    fn auto_strategy_resolves() {
        // Long shared dimension with a moderate output: RMM's replication
        // (2·Mt·Kt·Nt) dwarfs CPMM's pre-aggregated partials → CPMM.
        let a = MatrixMeta::new(16, 400, 4); // 4 × 100 tiles
        let b = MatrixMeta::new(400, 16, 4); // 100 × 4 tiles
        assert_eq!(
            resolve_strategy(MulStrategy::Auto, &a, &b, 1.0, 1.0, 6),
            MulStrategy::Cpmm
        );
        // Tiny shared dimension → RMM.
        let a2 = MatrixMeta::new(400, 4, 4);
        let b2 = MatrixMeta::new(4, 400, 4);
        assert_eq!(
            resolve_strategy(MulStrategy::Auto, &a2, &b2, 1.0, 1.0, 6),
            MulStrategy::Rmm
        );
        // Explicit strategies pass through.
        assert_eq!(
            resolve_strategy(MulStrategy::Rmm, &a, &b, 1.0, 1.0, 6),
            MulStrategy::Rmm
        );
        assert_eq!(
            resolve_strategy(MulStrategy::Cpmm, &a2, &b2, 1.0, 1.0, 6),
            MulStrategy::Cpmm
        );
    }

    #[test]
    fn mul_shape_mismatch_rejected() {
        let e = engine();
        load(&e, "A", 4, 4, 1);
        load(&e, "B", 5, 4, 2);
        let prog = MrProgram::new().push(MrOp::Mul {
            a: "A".into(),
            b: "B".into(),
            out: "C".into(),
            strategy: MulStrategy::Rmm,
        });
        assert!(prog.execute(&e, ExecMode::Real).is_err());
    }

    #[test]
    fn chain_of_ops_serializes() {
        let e = engine();
        let a = load(&e, "A", 6, 6, 8);
        let prog = MrProgram::new()
            .push(MrOp::Mul {
                a: "A".into(),
                b: "A".into(),
                out: "A2".into(),
                strategy: MulStrategy::Rmm,
            })
            .push(MrOp::Mul {
                a: "A2".into(),
                b: "A".into(),
                out: "A3".into(),
                strategy: MulStrategy::Rmm,
            });
        let report = prog.execute(&e, ExecMode::Real).unwrap();
        let expect = a.matmul(&a).unwrap().matmul(&a).unwrap();
        assert_close(&e.store().get_local("A3").unwrap(), &expect);
        // Two ops × (map + reduce).
        assert_eq!(report.jobs.len(), 4);
    }

    #[test]
    fn phantom_mode_runs_at_scale() {
        let e = engine();
        let meta = MatrixMeta::new(4_000, 4_000, 1_000);
        e.store()
            .register_generated("BIG", meta, Generator::DenseGaussian { seed: 1 })
            .unwrap();
        let prog = MrProgram::new().push(MrOp::Mul {
            a: "BIG".into(),
            b: "BIG".into(),
            out: "BIG2".into(),
            strategy: MulStrategy::Rmm,
        });
        let report = prog.execute(&e, ExecMode::Simulated).unwrap();
        assert!(report.makespan_s > 0.0);
        // Output tiles exist but are phantoms.
        let (tile, _) = e.store().read_tile("BIG2", 0, 0, None, false).unwrap();
        assert!(tile.is_phantom());
    }
}
