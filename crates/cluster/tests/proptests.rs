//! Property tests for the cluster substrate: scheduling bounds, billing
//! monotonicity, and determinism.

use cumulon_cluster::billing::{cluster_cost, BillingPolicy};
use cumulon_cluster::hw::NoiseModel;
use cumulon_cluster::scheduler::{FailurePlan, SchedulerConfig};
use cumulon_cluster::{Cluster, ClusterSpec, ExecMode, HardwareModel, Job, JobDag, Task};
use cumulon_dfs::DfsConfig;
use cumulon_matrix::ops::Work;
use proptest::prelude::*;

fn quiet_cluster(nodes: u32, slots: u32) -> Cluster {
    let hw = HardwareModel {
        noise: NoiseModel::none(),
        ..Default::default()
    };
    Cluster::provision_with(
        ClusterSpec::named("m1.large", nodes, slots).unwrap(),
        hw,
        DfsConfig::default(),
    )
    .unwrap()
}

fn burn_dag(flops_list: &[f64]) -> JobDag {
    let mut dag = JobDag::new();
    let tasks = flops_list
        .iter()
        .map(|&flops| {
            Task::new(move |ctx| {
                ctx.charge(Work {
                    flops,
                    bytes_in: 0.0,
                    bytes_out: 0.0,
                });
                Ok(())
            })
        })
        .collect();
    dag.push(Job::new("burn", "burn", tasks), vec![]);
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// List-scheduling bounds: makespan is at least the critical path (the
    /// longest single task) and at least total-work / slots; and no larger
    /// than running everything sequentially.
    #[test]
    fn makespan_respects_scheduling_bounds(
        flops in proptest::collection::vec(1e8f64..5e10, 1..20),
        nodes in 1u32..5,
        slots in 1u32..3,
    ) {
        let cluster = quiet_cluster(nodes, slots);
        let dag = burn_dag(&flops);
        let report = cluster.run(&dag, ExecMode::Real).unwrap();
        let durations: Vec<f64> =
            report.jobs[0].tasks.iter().map(|t| t.end_s - t.start_s).collect();
        let total: f64 = durations.iter().sum();
        let longest = durations.iter().copied().fold(0.0, f64::max);
        let s = (nodes * slots) as f64;
        prop_assert!(report.makespan_s >= longest - 1e-9);
        prop_assert!(report.makespan_s >= total / s - 1e-9);
        prop_assert!(report.makespan_s <= total + 1e-9, "never slower than sequential");
    }

    /// Equal tasks, no noise: exact wave structure.
    #[test]
    fn equal_tasks_run_in_exact_waves(
        n_tasks in 1usize..25,
        nodes in 1u32..4,
        slots in 1u32..3,
    ) {
        let cluster = quiet_cluster(nodes, slots);
        let dag = burn_dag(&vec![1e9; n_tasks]);
        let report = cluster.run(&dag, ExecMode::Real).unwrap();
        let d = report.jobs[0].tasks[0].end_s - report.jobs[0].tasks[0].start_s;
        let waves = n_tasks.div_ceil((nodes * slots) as usize) as f64;
        prop_assert!((report.makespan_s - waves * d).abs() < 1e-9,
            "makespan {} != {waves} waves x {d}", report.makespan_s);
    }

    /// Adding nodes never hurts (no noise, work-conserving scheduler).
    #[test]
    fn more_nodes_never_slower(
        flops in proptest::collection::vec(1e8f64..2e10, 1..12),
    ) {
        let t2 = quiet_cluster(2, 2).run(&burn_dag(&flops), ExecMode::Real).unwrap().makespan_s;
        let t4 = quiet_cluster(4, 2).run(&burn_dag(&flops), ExecMode::Real).unwrap().makespan_s;
        prop_assert!(t4 <= t2 + 1e-9, "{t4} > {t2}");
    }

    /// Billing properties: monotone in time and nodes; hourly ≥ per-second;
    /// hourly is flat within an hour.
    #[test]
    fn billing_properties(
        nodes in 1u32..100,
        price in 0.01f64..5.0,
        secs in 1.0f64..50_000.0,
    ) {
        let h = cluster_cost(BillingPolicy::HourlyCeil, nodes, price, secs);
        let p = cluster_cost(BillingPolicy::PerSecond, nodes, price, secs);
        prop_assert!(h >= p - 1e-12, "hourly {h} < per-second {p}");
        prop_assert!(h <= p + nodes as f64 * price, "ceil adds at most one hour");
        let h_more_time = cluster_cost(BillingPolicy::HourlyCeil, nodes, price, secs + 1.0);
        prop_assert!(h_more_time >= h);
        let h_more_nodes = cluster_cost(BillingPolicy::HourlyCeil, nodes + 1, price, secs);
        prop_assert!(h_more_nodes >= h);
    }

    /// Determinism: identical configuration, identical report.
    #[test]
    fn runs_are_deterministic(
        flops in proptest::collection::vec(1e8f64..2e10, 1..10),
        fail_p in 0.0f64..0.3,
    ) {
        let run = || {
            let cluster = Cluster::provision(
                ClusterSpec::named("c1.medium", 3, 2).unwrap(),
            )
            .unwrap();
            let failures = FailurePlan { task_failure_prob: fail_p, seed: 9, ..Default::default() };
            cluster
                .run_with(&burn_dag(&flops), ExecMode::Real, SchedulerConfig::default(), &failures)
                .unwrap()
                .makespan_s
        };
        prop_assert_eq!(run(), run());
    }

    /// Speculative execution never loses tasks and never exceeds the
    /// non-speculative makespan (first copy wins; backups only use slots
    /// that would idle).
    #[test]
    fn speculation_is_safe(
        flops in proptest::collection::vec(1e9f64..2e10, 2..10),
        seed in 0u64..50,
    ) {
        let mk = |speculative: bool| {
            let hw = HardwareModel {
                noise: NoiseModel { sigma: 0.6, seed },
                ..Default::default()
            };
            let cluster = Cluster::provision_with(
                ClusterSpec::named("m1.large", 3, 2).unwrap(),
                hw,
                DfsConfig::default(),
            )
            .unwrap();
            let config = SchedulerConfig { speculative, ..Default::default() };
            cluster
                .run_with(&burn_dag(&flops), ExecMode::Real, config, &FailurePlan::default())
                .unwrap()
        };
        let base = mk(false);
        let spec = mk(true);
        prop_assert_eq!(spec.jobs[0].tasks.len(), flops.len());
        prop_assert!(spec.makespan_s <= base.makespan_s + 1e-9,
            "speculation regressed: {} vs {}", spec.makespan_s, base.makespan_s);
    }
}
