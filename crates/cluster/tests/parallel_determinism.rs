//! Determinism contract of the parallel wave executor: a run at any worker
//! thread count is *bitwise-identical* to the sequential (`threads = 1`)
//! run — run reports, fault accounting, and output matrices — including
//! under injected task failures and node kills. Every float is compared by
//! its bit pattern, not by `==`.

use cumulon_cluster::hw::NoiseModel;
use cumulon_cluster::metrics::JobStats;
use cumulon_cluster::scheduler::{FailurePlan, RunFailure, SchedulerConfig};
use cumulon_cluster::{
    Cluster, ClusterSpec, ExecMode, HardwareModel, Job, JobDag, RunReport, Task, TaskReceipt, Trace,
};
use cumulon_dfs::DfsConfig;
use cumulon_matrix::ops::Work;
use cumulon_matrix::{LocalMatrix, MatrixMeta, Tile};
use proptest::prelude::*;

const TILE: usize = 4;

/// Shape of a randomly generated tile-shuffling DAG.
#[derive(Debug, Clone)]
struct DagShape {
    /// Tiles (grid rows) of each job's output matrix; one task per tile.
    job_tiles: Vec<usize>,
    /// `deps_mask[j]` selects dependencies among jobs `0..j` by bit.
    deps_mask: Vec<u64>,
}

fn dag_shape() -> impl Strategy<Value = DagShape> {
    proptest::collection::vec((1usize..5, any::<u64>()), 1..5).prop_map(|v| DagShape {
        job_tiles: v.iter().map(|&(t, _)| t).collect(),
        deps_mask: v.iter().map(|&(_, m)| m).collect(),
    })
}

/// Builds the DAG over matrices `m0..mN` on `store`, one real tile task per
/// output tile: each task seeds a deterministic tile, folds in one tile of
/// every dependency matrix, and writes its own tile.
fn build_dag(shape: &DagShape, store: &cumulon_dfs::TileStore) -> JobDag {
    let mut dag = JobDag::new();
    for (j, &tiles) in shape.job_tiles.iter().enumerate() {
        store
            .register(&format!("m{j}"), MatrixMeta::new(tiles * TILE, TILE, TILE))
            .unwrap();
        let deps: Vec<usize> = (0..j)
            .filter(|d| shape.deps_mask[j] & (1 << d) != 0)
            .collect();
        let dep_tiles: Vec<(usize, usize)> =
            deps.iter().map(|&d| (d, shape.job_tiles[d])).collect();
        let mut tasks = Vec::with_capacity(tiles);
        for t in 0..tiles {
            let dep_tiles = dep_tiles.clone();
            let out = format!("m{j}");
            tasks.push(
                Task::new(move |ctx| {
                    let seed = (j * 31 + t * 7) as f64;
                    let mut acc = Tile::zeros(TILE, TILE).map(move |_| seed * 0.5 + 1.0);
                    for &(d, dt) in &dep_tiles {
                        let dep = ctx.read_tile(&format!("m{d}"), t % dt, 0)?;
                        ctx.charge(cumulon_matrix::ops::add_work(&acc, &dep));
                        acc.add_assign(&dep)?;
                    }
                    ctx.charge(Work {
                        flops: seed * 1e8 + 1e8,
                        bytes_in: 0.0,
                        bytes_out: 0.0,
                    });
                    acc.scale(0.75);
                    ctx.write_tile(&out, t, 0, &acc)?;
                    Ok(())
                })
                .with_locality(&format!("m{j}"), t, 0),
            );
        }
        dag.push(Job::new(format!("j{j}"), "shuffle", tasks), deps);
    }
    dag
}

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn receipt_key(r: &TaskReceipt) -> String {
    format!(
        "w[{},{},{}] r[{},{},{}] wr[{},{},{}] mem{} fix{} io{}",
        bits(r.work.flops),
        bits(r.work.bytes_in),
        bits(r.work.bytes_out),
        r.read.bytes,
        r.read.local_bytes,
        r.read.remote_bytes,
        r.write.bytes,
        r.write.local_bytes,
        r.write.remote_bytes,
        bits(r.mem_mb),
        bits(r.fixed_s),
        r.io_ops,
    )
}

fn job_key(j: &JobStats) -> String {
    let tasks: Vec<String> = j
        .tasks
        .iter()
        .map(|t| {
            format!(
                "{}@{}[{}-{}]x{}l{}",
                t.task,
                t.node,
                bits(t.start_s),
                bits(t.end_s),
                t.attempts,
                t.input_local
            )
        })
        .collect();
    format!(
        "{}/{} [{}-{}] tasks({}) {}",
        j.name,
        j.op_label,
        bits(j.start_s),
        bits(j.end_s),
        tasks.join(","),
        receipt_key(&j.receipt)
    )
}

fn report_key(r: &RunReport) -> String {
    let jobs: Vec<String> = r.jobs.iter().map(job_key).collect();
    format!(
        "{} n{} s{} mk{} bh{} $ {} {:?}\n{}",
        r.instance,
        r.nodes,
        r.slots,
        bits(r.makespan_s),
        bits(r.billed_hours),
        bits(r.cost_dollars),
        r.faults,
        jobs.join("\n")
    )
}

fn failure_key(f: &RunFailure) -> String {
    let jobs: Vec<String> = f.completed_jobs.iter().map(job_key).collect();
    format!(
        "err({}) failed{:?} lost{:?} dead{:?} mk{} {:?}\n{}",
        f.error,
        f.failed,
        f.lost_blocks,
        f.dead_nodes,
        bits(f.makespan_s),
        f.faults,
        jobs.join("\n")
    )
}

/// One full run at a given thread count: fresh cluster, fresh DFS state,
/// same seeds. Returns a canonical key for whatever happened plus the
/// output matrices of a successful run. With `traced` the run records
/// spans into an enabled [`Trace`] handle — the key must not change.
fn run_once(
    shape: &DagShape,
    failures: &FailurePlan,
    noise_seed: u64,
    threads: usize,
    traced: bool,
) -> (String, Vec<LocalMatrix>) {
    let hw = HardwareModel {
        noise: NoiseModel {
            sigma: 0.3,
            seed: noise_seed,
        },
        ..Default::default()
    };
    let cluster = Cluster::provision_with(
        ClusterSpec::named("m1.large", 3, 2).unwrap(),
        hw,
        DfsConfig::default(),
    )
    .unwrap();
    let dag = build_dag(shape, cluster.store());
    let config = SchedulerConfig {
        speculative: true,
        ..SchedulerConfig::default()
    }
    .with_threads(threads);
    let trace = if traced {
        Trace::enabled()
    } else {
        Trace::disabled()
    };
    match cluster.try_run_with_traced(&dag, ExecMode::Real, config, failures, &trace) {
        Ok(report) => {
            let outputs = (0..shape.job_tiles.len())
                .map(|j| cluster.store().get_local(&format!("m{j}")).unwrap())
                .collect();
            (report_key(&report), outputs)
        }
        Err(failure) => (failure_key(&failure), Vec::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel execution is bitwise-equal to sequential, for random DAGs,
    /// thread counts, injected task failures, and node kill schedules.
    #[test]
    fn parallel_runs_bitwise_match_sequential(
        shape in dag_shape(),
        threads in 2usize..8,
        fail_p in 0.0f64..0.35,
        fail_seed in 0u64..1000,
        noise_seed in 0u64..1000,
        kills in proptest::collection::vec((1.0f64..500.0, 0u32..3), 0..3),
    ) {
        let failures = FailurePlan {
            task_failure_prob: fail_p,
            node_failures: kills.iter().map(|&(t, n)| (t, n)).collect(),
            seed: fail_seed,
            ..Default::default()
        };
        let (seq_key, seq_out) = run_once(&shape, &failures, noise_seed, 1, false);
        let (par_key, par_out) = run_once(&shape, &failures, noise_seed, threads, false);
        prop_assert_eq!(seq_key, par_key);
        prop_assert_eq!(seq_out, par_out);
    }

    /// Tracing is observational: an enabled trace handle never perturbs
    /// the run — reports, fault accounting, and output matrices are
    /// bitwise-identical with tracing on and off, at any thread count and
    /// under injected faults.
    #[test]
    fn tracing_never_perturbs_results(
        shape in dag_shape(),
        threads in 1usize..8,
        fail_p in 0.0f64..0.35,
        fail_seed in 0u64..1000,
        noise_seed in 0u64..1000,
        kills in proptest::collection::vec((1.0f64..500.0, 0u32..3), 0..3),
    ) {
        let failures = FailurePlan {
            task_failure_prob: fail_p,
            node_failures: kills.iter().map(|&(t, n)| (t, n)).collect(),
            seed: fail_seed,
            ..Default::default()
        };
        let (off_key, off_out) = run_once(&shape, &failures, noise_seed, threads, false);
        let (on_key, on_out) = run_once(&shape, &failures, noise_seed, threads, true);
        prop_assert_eq!(off_key, on_key);
        prop_assert_eq!(off_out, on_out);
    }

    /// Thread count is not part of the outcome: every pool size produces
    /// the same report as every other.
    #[test]
    fn all_pool_sizes_agree(
        shape in dag_shape(),
        noise_seed in 0u64..1000,
    ) {
        let failures = FailurePlan::default();
        let (base, out_base) = run_once(&shape, &failures, noise_seed, 2, false);
        for threads in [3, 5, 16] {
            let (key, out) = run_once(&shape, &failures, noise_seed, threads, false);
            prop_assert_eq!(&base, &key, "threads={} diverged", threads);
            prop_assert_eq!(&out_base, &out);
        }
    }
}
