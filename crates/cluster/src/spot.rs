//! Spot-market model: a piecewise-constant price trace, a bid price, and
//! the correlated bulk revocations the market inflicts on nodes bid below
//! the clearing price.
//!
//! The market is exogenous to the simulation: a [`SpotMarket`] is compiled
//! into [`Revocation`] events *before* a run starts and injected through
//! the DES alongside the existing failure plan (see
//! [`crate::scheduler::FailurePlan::revocations`]). Every time the price
//! trace rises above the bid, all still-live spot nodes are reclaimed in
//! one correlated event, with a warning issued `warning_lead_s` earlier —
//! the window the scheduler uses to drain doomed nodes gracefully.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::scheduler::Revocation;

/// A spot-market position: the price trace the market will follow, the
/// per-node-hour bid, and the revocation warning lead time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotMarket {
    /// Piecewise-constant price trace: `(start_time_s, $/node-hour)`
    /// segments in ascending time order. The last segment extends forever.
    pub prices: Vec<(f64, f64)>,
    /// Bid in $/node-hour. Nodes survive while `price <= bid`.
    pub bid: f64,
    /// Seconds of warning before a revocation takes effect (0 = none).
    pub warning_lead_s: f64,
}

impl SpotMarket {
    /// A market whose price never moves (never revokes while `bid >= price`).
    pub fn flat(price: f64, bid: f64) -> Self {
        SpotMarket {
            prices: vec![(0.0, price)],
            bid,
            warning_lead_s: 0.0,
        }
    }

    /// A deterministic synthetic price walk: `steps` segments of
    /// `step_s` seconds each, multiplicative noise around `mean` price.
    /// The same seed always yields the same trace.
    pub fn synthetic(seed: u64, mean: f64, volatility: f64, step_s: f64, steps: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5f0f_1234_9e37_79b9);
        let mut prices = Vec::with_capacity(steps.max(1));
        let mut level = mean;
        for i in 0..steps.max(1) {
            let shock: f64 = rng.random_range(-1.0f64..1.0);
            // Mean-reverting multiplicative walk, clamped to stay positive.
            level = (0.7 * level + 0.3 * mean) * (1.0 + volatility * shock);
            level = level.max(mean * 0.05);
            prices.push((i as f64 * step_s, level));
        }
        SpotMarket {
            prices,
            bid: mean,
            warning_lead_s: 0.0,
        }
    }

    /// Returns the market with a different bid.
    pub fn with_bid(mut self, bid: f64) -> Self {
        self.bid = bid;
        self
    }

    /// Returns the market with a revocation warning lead time.
    pub fn with_warning_lead(mut self, lead_s: f64) -> Self {
        self.warning_lead_s = lead_s;
        self
    }

    /// The market price at simulated time `t` (0 before the first segment).
    pub fn price_at(&self, t: f64) -> f64 {
        let mut price = self.prices.first().map(|&(_, p)| p).unwrap_or(0.0);
        for &(start, p) in &self.prices {
            if start <= t {
                price = p;
            } else {
                break;
            }
        }
        price
    }

    /// Times at which the price crosses from at-or-below the bid to above
    /// it — the instants the market reclaims all spot capacity.
    pub fn outbid_times(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut above = false;
        for &(start, price) in &self.prices {
            let now_above = price > self.bid;
            if now_above && !above {
                out.push(start);
            }
            above = now_above;
        }
        out
    }

    /// Compiles the market into correlated bulk [`Revocation`] events for
    /// the given spot node ids. Nodes already dead when an event fires are
    /// skipped by the scheduler, so repeated crossings are harmless.
    pub fn revocations(&self, spot_nodes: &[u32]) -> Vec<Revocation> {
        if spot_nodes.is_empty() {
            return Vec::new();
        }
        self.outbid_times()
            .into_iter()
            .map(|at_s| Revocation {
                at_s,
                nodes: spot_nodes.to_vec(),
                warning_lead_s: self.warning_lead_s,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_lookup_is_piecewise_constant() {
        let m = SpotMarket {
            prices: vec![(0.0, 0.10), (100.0, 0.50), (200.0, 0.08)],
            bid: 0.25,
            warning_lead_s: 0.0,
        };
        assert_eq!(m.price_at(0.0), 0.10);
        assert_eq!(m.price_at(99.9), 0.10);
        assert_eq!(m.price_at(100.0), 0.50);
        assert_eq!(m.price_at(250.0), 0.08);
    }

    #[test]
    fn outbid_crossings_detected_once_per_excursion() {
        let m = SpotMarket {
            prices: vec![
                (0.0, 0.10),
                (50.0, 0.30), // crossing 1
                (80.0, 0.40), // still above: no new crossing
                (120.0, 0.10),
                (200.0, 0.30), // crossing 2
            ],
            bid: 0.25,
            warning_lead_s: 30.0,
        };
        assert_eq!(m.outbid_times(), vec![50.0, 200.0]);
        let revs = m.revocations(&[2, 3]);
        assert_eq!(revs.len(), 2);
        assert_eq!(revs[0].at_s, 50.0);
        assert_eq!(revs[0].nodes, vec![2, 3]);
        assert_eq!(revs[0].warning_lead_s, 30.0);
    }

    #[test]
    fn flat_market_never_revokes_at_or_below_bid() {
        let m = SpotMarket::flat(0.10, 0.10);
        assert!(m.outbid_times().is_empty());
        assert!(m.revocations(&[0]).is_empty());
        assert!(m.revocations(&[]).is_empty());
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_positive() {
        let a = SpotMarket::synthetic(7, 0.10, 0.5, 300.0, 24);
        let b = SpotMarket::synthetic(7, 0.10, 0.5, 300.0, 24);
        assert_eq!(a, b, "same seed must yield the same trace");
        assert!(a.prices.iter().all(|&(_, p)| p > 0.0));
        let c = SpotMarket::synthetic(8, 0.10, 0.5, 300.0, 24);
        assert_ne!(a, c, "different seeds should diverge");
    }
}
