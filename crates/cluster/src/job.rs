//! Map-only jobs, tasks and the task execution context.
//!
//! A Cumulon physical plan lowers to a DAG of [`Job`]s. Each job is a bag
//! of independent [`Task`]s (no shuffle, no reduce); tasks read input tiles
//! from the tile store, compute, and write output tiles back. The
//! [`TaskCtx`] both services those requests and records a [`TaskReceipt`]
//! of everything the task consumed, which the hardware model converts into
//! simulated seconds.

use std::sync::Arc;

use cumulon_dfs::dfs::NodeId;
use cumulon_dfs::{IoReceipt, TileStore};
use cumulon_matrix::ops::Work;
use cumulon_matrix::Tile;

use crate::error::{ClusterError, Result};

/// CPU cost of generating one matrix cell (seeded RNG + store), in flops —
/// shared with the analytic estimator in `cumulon-core`.
pub const GEN_FLOPS_PER_CELL: f64 = 12.0;

/// Whether tasks materialise real tile data or metadata-only phantoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Real tile math; results are collectable and verifiable.
    Real,
    /// Phantom tiles: shapes/nnz/bytes flow, values do not. Used for
    /// paper-scale experiments.
    Simulated,
}

/// Resource consumption of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TaskReceipt {
    /// Kernel work performed (flops; kernel-level byte movement).
    pub work: Work,
    /// Bytes read from the DFS, split by locality.
    pub read: IoReceipt,
    /// Bytes written to the DFS (including replication traffic).
    pub write: IoReceipt,
    /// Peak memory demand of the task in MB (inputs + outputs resident).
    pub mem_mb: f64,
    /// Fixed framework-imposed seconds (e.g. MapReduce job scheduling
    /// latency), added verbatim to the task's duration.
    pub fixed_s: f64,
    /// Number of DFS file operations (tile reads + writes): each pays a
    /// per-operation overhead (namenode round trip, open, seek).
    pub io_ops: u64,
}

impl TaskReceipt {
    /// Component-wise sum (for job-level aggregation).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: TaskReceipt) -> TaskReceipt {
        TaskReceipt {
            work: self.work.add(other.work),
            read: self.read.add(other.read),
            write: self.write.add(other.write),
            mem_mb: self.mem_mb.max(other.mem_mb),
            fixed_s: self.fixed_s + other.fixed_s,
            io_ops: self.io_ops + other.io_ops,
        }
    }
}

/// One output-tile write staged by a deferred-write [`TaskCtx`]. The tile
/// stays a shared handle (no encoding on the write path); the scheduler
/// commits staged writes in canonical task order, which replays the DFS
/// placement RNG draws exactly as a sequential run would.
#[derive(Clone)]
pub struct StagedWrite {
    /// Destination matrix name.
    pub matrix: String,
    /// Tile row index.
    pub ti: usize,
    /// Tile column index.
    pub tj: usize,
    /// The output tile, shared.
    pub tile: Arc<Tile>,
    /// Logical stored size of the tile (for receipt rescaling and memory
    /// accounting).
    pub stored_bytes: u64,
}

/// One operation recorded by a recording [`TaskCtx`] (see
/// [`TaskCtx::new_recording`]). A speculative execution logs every
/// context interaction in program order; replaying the log against a fresh
/// context at the canonical time reproduces the exact receipt — including
/// f64 accumulation order — the task would have produced had it run then,
/// as long as every replayed read still returns the recorded tile.
#[derive(Clone)]
pub enum TaskOp {
    /// A successful tile read and the handle it returned.
    Read {
        /// Source matrix name.
        matrix: String,
        /// Tile row index.
        ti: usize,
        /// Tile column index.
        tj: usize,
        /// The tile the recording read returned (for replay validation).
        tile: Arc<Tile>,
    },
    /// A successful tile write.
    Write {
        /// Destination matrix name.
        matrix: String,
        /// Tile row index.
        ti: usize,
        /// Tile column index.
        tj: usize,
        /// The written tile, shared.
        tile: Arc<Tile>,
    },
    /// [`TaskCtx::charge`].
    Charge(Work),
    /// [`TaskCtx::charge_mem_mb`].
    ChargeMem(f64),
    /// [`TaskCtx::charge_read_io`].
    ChargeReadIo(IoReceipt),
    /// [`TaskCtx::charge_write_io`].
    ChargeWriteIo(IoReceipt),
    /// [`TaskCtx::charge_seconds`].
    ChargeSeconds(f64),
    /// [`TaskCtx::charge_io_ops`].
    ChargeIoOps(u64),
}

/// Whether tile writes hit the store immediately or are staged for an
/// in-order commit by the scheduler.
enum WriteMode {
    Direct,
    Deferred(Vec<StagedWrite>),
}

/// Execution context handed to a task's logic. Wraps the tile store with
/// receipt accounting and carries the placement decided by the scheduler.
pub struct TaskCtx {
    store: TileStore,
    /// Node this attempt runs on.
    pub node: NodeId,
    /// Execution mode for tile reads.
    pub mode: ExecMode,
    receipt: TaskReceipt,
    writes: WriteMode,
    /// Present in recording mode: the op log for later replay.
    ops: Option<Vec<TaskOp>>,
}

impl TaskCtx {
    /// Creates a context (scheduler-internal, public for tests and custom
    /// engines). Writes go straight to the tile store.
    pub fn new(store: TileStore, node: NodeId, mode: ExecMode) -> Self {
        TaskCtx {
            store,
            node,
            mode,
            receipt: TaskReceipt::default(),
            writes: WriteMode::Direct,
            ops: None,
        }
    }

    /// Creates a deferred-write context: [`TaskCtx::write_tile`] validates
    /// and stages instead of touching the DFS, so task compute can run on a
    /// worker thread without perturbing the placement RNG. The scheduler
    /// commits the staged writes in canonical task order via
    /// [`TaskCtx::into_parts`].
    pub fn new_deferred(store: TileStore, node: NodeId, mode: ExecMode) -> Self {
        TaskCtx {
            store,
            node,
            mode,
            receipt: TaskReceipt::default(),
            writes: WriteMode::Deferred(Vec::new()),
            ops: None,
        }
    }

    /// Creates a recording context for lookahead speculation: deferred
    /// writes plus an op log of every context interaction. The node is a
    /// placeholder — recording runs before the scheduler knows where the
    /// task will land, and nothing node-dependent survives into the log
    /// (receipts are recomputed at replay against the real node).
    pub fn new_recording(store: TileStore, mode: ExecMode) -> Self {
        TaskCtx {
            store,
            node: NodeId(u32::MAX),
            mode,
            receipt: TaskReceipt::default(),
            writes: WriteMode::Deferred(Vec::new()),
            ops: Some(Vec::new()),
        }
    }

    /// Consumes a recording context, returning the op log.
    pub fn into_ops(self) -> Vec<TaskOp> {
        self.ops.unwrap_or_default()
    }

    /// Consumes the context, returning the receipt accumulated so far plus
    /// any staged writes (empty for direct-write contexts). For deferred
    /// contexts the receipt's `write` field is still zero — the scheduler
    /// adds the commit receipts in staging order, reproducing the exact
    /// accumulation sequence of a direct-write run.
    pub fn into_parts(self) -> (TaskReceipt, Vec<StagedWrite>) {
        let staged = match self.writes {
            WriteMode::Direct => Vec::new(),
            WriteMode::Deferred(staged) => staged,
        };
        (self.receipt, staged)
    }

    /// Reads a tile of a registered matrix, charging I/O and memory (and,
    /// for generator-backed matrices, the generation CPU instead of I/O).
    pub fn read_tile(&mut self, matrix: &str, ti: usize, tj: usize) -> Result<Arc<Tile>> {
        // Read-your-own-writes for deferred contexts: a tile this task has
        // already staged is served from the staging buffer with the receipt
        // a committed-then-read-back tile would produce (the writer-local
        // replica is always placed first and read first, so the read is
        // fully local).
        if let WriteMode::Deferred(staged) = &self.writes {
            if let Some(w) = staged
                .iter()
                .rev()
                .find(|w| w.matrix == matrix && w.ti == ti && w.tj == tj)
            {
                let stored = w.stored_bytes;
                let tile = Arc::clone(&w.tile);
                let io = IoReceipt {
                    bytes: stored,
                    local_bytes: stored,
                    remote_bytes: 0,
                };
                self.receipt.read = self.receipt.read.add(io);
                if io != IoReceipt::default() {
                    self.receipt.io_ops += 1;
                }
                self.receipt.mem_mb += stored as f64 / 1e6;
                if let Some(ops) = &mut self.ops {
                    ops.push(TaskOp::Read {
                        matrix: matrix.to_string(),
                        ti,
                        tj,
                        tile: Arc::clone(&tile),
                    });
                }
                return Ok(tile);
            }
        }
        let phantom = self.mode == ExecMode::Simulated;
        let (tile, io) = self
            .store
            .read_tile(matrix, ti, tj, Some(self.node), phantom)?;
        if io == IoReceipt::default() && self.store.lookup(matrix)?.generator.is_some() {
            // Generating a tile costs ~a few flops per cell of RNG work.
            let cells = (tile.rows() * tile.cols()) as f64;
            self.receipt.work = self.receipt.work.add(Work {
                flops: GEN_FLOPS_PER_CELL * cells,
                bytes_in: 0.0,
                bytes_out: 0.0,
            });
        }
        self.receipt.read = self.receipt.read.add(io);
        if io != IoReceipt::default() {
            self.receipt.io_ops += 1;
        }
        // Tiles read are resident for the task's lifetime; charge their
        // *dense logical* footprint when the tile participates in dense
        // kernels and its stored size otherwise.
        self.receipt.mem_mb += tile.stored_bytes() as f64 / 1e6;
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::Read {
                matrix: matrix.to_string(),
                ti,
                tj,
                tile: Arc::clone(&tile),
            });
        }
        Ok(tile)
    }

    /// Writes an output tile, charging I/O and memory. Accepts an owned
    /// `Tile`, an `Arc<Tile>`, or `&Tile` (cloned); hot paths hand over
    /// ownership so no payload copy happens anywhere on the write path.
    /// Deferred contexts validate here (same in-task error points as a
    /// direct write) but stage the handle for the scheduler to commit.
    pub fn write_tile(
        &mut self,
        matrix: &str,
        ti: usize,
        tj: usize,
        tile: impl Into<Arc<Tile>>,
    ) -> Result<()> {
        let tile: Arc<Tile> = tile.into();
        match &mut self.writes {
            WriteMode::Direct => {
                let io = self.store.write_tile_arc(
                    matrix,
                    ti,
                    tj,
                    Arc::clone(&tile),
                    Some(self.node),
                )?;
                self.receipt.write = self.receipt.write.add(io);
            }
            WriteMode::Deferred(staged) => {
                self.store.validate_tile(matrix, ti, tj, &tile)?;
                staged.push(StagedWrite {
                    matrix: matrix.to_string(),
                    ti,
                    tj,
                    tile: Arc::clone(&tile),
                    stored_bytes: tile.stored_bytes(),
                });
            }
        }
        self.receipt.io_ops += 1;
        self.receipt.mem_mb += tile.stored_bytes() as f64 / 1e6;
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::Write {
                matrix: matrix.to_string(),
                ti,
                tj,
                tile,
            });
        }
        Ok(())
    }

    /// Charges kernel work (the operators call this after each kernel).
    pub fn charge(&mut self, work: Work) {
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::Charge(work));
        }
        self.receipt.work = self.receipt.work.add(work);
    }

    /// Charges additional resident memory in MB (accumulators etc.).
    pub fn charge_mem_mb(&mut self, mb: f64) {
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::ChargeMem(mb));
        }
        self.receipt.mem_mb += mb;
    }

    /// Charges raw read I/O not mediated by the tile store (e.g. a
    /// baseline engine's shuffle fetch).
    pub fn charge_read_io(&mut self, io: IoReceipt) {
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::ChargeReadIo(io));
        }
        self.receipt.read = self.receipt.read.add(io);
    }

    /// Charges raw write I/O not mediated by the tile store (e.g. map
    /// output spills).
    pub fn charge_write_io(&mut self, io: IoReceipt) {
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::ChargeWriteIo(io));
        }
        self.receipt.write = self.receipt.write.add(io);
    }

    /// Charges a fixed framework delay in seconds.
    pub fn charge_seconds(&mut self, secs: f64) {
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::ChargeSeconds(secs));
        }
        self.receipt.fixed_s += secs;
    }

    /// Charges `n` extra DFS file operations (for engines doing raw I/O
    /// outside the tile helpers).
    pub fn charge_io_ops(&mut self, n: u64) {
        if let Some(ops) = &mut self.ops {
            ops.push(TaskOp::ChargeIoOps(n));
        }
        self.receipt.io_ops += n;
    }

    /// The accumulated receipt.
    pub fn receipt(&self) -> TaskReceipt {
        self.receipt
    }

    /// Access to the tile store for operations not covered by the helpers
    /// (e.g. registering an output matrix from the driver).
    pub fn store(&self) -> &TileStore {
        &self.store
    }
}

/// Task logic: a function of the context. Must be `Fn` (not `FnOnce`) so
/// failed attempts can be retried, and `Send + Sync` so jobs can be
/// executed from worker threads.
pub type TaskFn = Arc<dyn Fn(&mut TaskCtx) -> Result<()> + Send + Sync>;

/// One task of a map-only job.
#[derive(Clone)]
pub struct Task {
    /// Logic to run.
    pub run: TaskFn,
    /// Matrix/tile whose locality should guide placement, if any:
    /// `(matrix, ti, tj)` of the dominant input.
    pub locality_hint: Option<(String, usize, usize)>,
    /// Input tiles the task will read, in read order, when the task
    /// builder knows them (e.g. the operand band of a GEMM task). The
    /// spill-aware scheduler prefetches from this set; when empty, the
    /// locality hint alone stands in for it. Purely advisory — never
    /// consulted on any result-bearing path.
    pub read_set: Vec<(String, usize, usize)>,
}

impl Task {
    /// Creates a task from a closure.
    pub fn new(f: impl Fn(&mut TaskCtx) -> Result<()> + Send + Sync + 'static) -> Self {
        Task {
            run: Arc::new(f),
            locality_hint: None,
            read_set: Vec::new(),
        }
    }

    /// Attaches a locality hint.
    pub fn with_locality(mut self, matrix: &str, ti: usize, tj: usize) -> Self {
        self.locality_hint = Some((matrix.to_string(), ti, tj));
        self
    }

    /// Declares the input tiles the task will read, in read order, so
    /// the spill-aware scheduler can prefetch exactly what is about to
    /// be demanded and nothing else.
    pub fn with_read_set(mut self, tiles: Vec<(String, usize, usize)>) -> Self {
        self.read_set = tiles;
        self
    }
}

/// A map-only job: independent tasks plus bookkeeping the scheduler and
/// reports use.
#[derive(Clone)]
pub struct Job {
    /// Human-readable name, e.g. `"mul#2"`.
    pub name: String,
    /// Physical operator label for calibration, e.g. `"mul"`, `"add"`.
    pub op_label: String,
    /// The tasks.
    pub tasks: Vec<Task>,
}

impl Job {
    /// Creates a job.
    pub fn new(name: impl Into<String>, op_label: impl Into<String>, tasks: Vec<Task>) -> Self {
        Job {
            name: name.into(),
            op_label: op_label.into(),
            tasks,
        }
    }
}

/// A DAG of jobs: `deps[j]` lists jobs that must finish before job `j`
/// starts (tiles it reads are written by them).
#[derive(Clone, Default)]
pub struct JobDag {
    /// The jobs, indexed by position.
    pub jobs: Vec<Job>,
    /// Dependency lists, parallel to `jobs`.
    pub deps: Vec<Vec<usize>>,
}

impl JobDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job with dependencies, returning its index.
    pub fn push(&mut self, job: Job, deps: Vec<usize>) -> usize {
        self.jobs.push(job);
        self.deps.push(deps);
        self.jobs.len() - 1
    }

    /// Validates the DAG: dependencies in range and acyclic (indices must
    /// point backwards, which `push` guarantees for well-formed builders).
    pub fn validate(&self) -> Result<()> {
        for (j, deps) in self.deps.iter().enumerate() {
            for &d in deps {
                if d >= self.jobs.len() {
                    return Err(ClusterError::InvalidDag(format!(
                        "job {j} depends on out-of-range job {d}"
                    )));
                }
                if d >= j {
                    return Err(ClusterError::InvalidDag(format!(
                        "job {j} depends on job {d}, which does not precede it"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total task count across jobs.
    pub fn total_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulon_dfs::{Dfs, DfsConfig};
    use cumulon_matrix::MatrixMeta;

    fn ctx(mode: ExecMode) -> TaskCtx {
        let store = TileStore::new(Dfs::new(
            2,
            DfsConfig {
                replication: 2,
                ..Default::default()
            },
        ));
        store.register("A", MatrixMeta::new(4, 4, 4)).unwrap();
        store
            .write_tile("A", 0, 0, &Tile::zeros(4, 4), Some(NodeId(0)))
            .unwrap();
        store.register("B", MatrixMeta::new(4, 4, 4)).unwrap();
        TaskCtx::new(store, NodeId(0), mode)
    }

    #[test]
    fn ctx_accounts_reads_and_writes() {
        let mut c = ctx(ExecMode::Real);
        let t = c.read_tile("A", 0, 0).unwrap();
        c.write_tile("B", 0, 0, t).unwrap();
        let r = c.receipt();
        assert!(r.read.bytes > 0);
        assert_eq!(
            r.read.local_bytes, r.read.bytes,
            "writer-local replica should be read locally"
        );
        // Replication 2: one local + one remote copy.
        assert!(r.write.remote_bytes > 0);
        assert!(r.mem_mb > 0.0);
    }

    #[test]
    fn ctx_charges_work() {
        let mut c = ctx(ExecMode::Real);
        c.charge(Work {
            flops: 100.0,
            bytes_in: 0.0,
            bytes_out: 0.0,
        });
        c.charge(Work {
            flops: 50.0,
            bytes_in: 0.0,
            bytes_out: 0.0,
        });
        c.charge_mem_mb(12.5);
        assert_eq!(c.receipt().work.flops, 150.0);
        assert!(c.receipt().mem_mb >= 12.5);
    }

    #[test]
    fn receipt_add_takes_max_memory() {
        let a = TaskReceipt {
            mem_mb: 10.0,
            ..Default::default()
        };
        let b = TaskReceipt {
            mem_mb: 4.0,
            ..Default::default()
        };
        assert_eq!(a.add(b).mem_mb, 10.0);
    }

    #[test]
    fn dag_validation() {
        let mut dag = JobDag::new();
        let j0 = dag.push(Job::new("a", "gen", vec![]), vec![]);
        let j1 = dag.push(Job::new("b", "mul", vec![]), vec![j0]);
        assert_eq!((j0, j1), (0, 1));
        assert!(dag.validate().is_ok());

        let mut bad = JobDag::new();
        bad.push(Job::new("a", "x", vec![]), vec![5]);
        assert!(bad.validate().is_err());

        let mut cyclic = JobDag {
            jobs: vec![Job::new("a", "x", vec![])],
            deps: vec![vec![0]],
        };
        assert!(cyclic.validate().is_err());
        cyclic.deps[0] = vec![];
        assert!(cyclic.validate().is_ok());
    }

    #[test]
    fn task_retryable() {
        let task = Task::new(|_ctx| Ok(()));
        let mut c = ctx(ExecMode::Real);
        (task.run)(&mut c).unwrap();
        (task.run)(&mut c).unwrap(); // Fn, not FnOnce: retry works
    }

    #[test]
    fn locality_hint_builder() {
        let t = Task::new(|_| Ok(())).with_locality("A", 1, 2);
        assert_eq!(t.locality_hint, Some(("A".to_string(), 1, 2)));
    }

    #[test]
    fn recording_ctx_logs_ops_in_program_order() {
        let store = TileStore::new(Dfs::new(
            2,
            DfsConfig {
                replication: 2,
                ..Default::default()
            },
        ));
        store.register("A", MatrixMeta::new(4, 4, 4)).unwrap();
        store
            .write_tile("A", 0, 0, &Tile::zeros(4, 4), Some(NodeId(0)))
            .unwrap();
        store.register("B", MatrixMeta::new(4, 4, 4)).unwrap();
        let mut c = TaskCtx::new_recording(store, ExecMode::Real);
        let t = c.read_tile("A", 0, 0).unwrap();
        c.charge(Work {
            flops: 7.0,
            bytes_in: 0.0,
            bytes_out: 0.0,
        });
        c.write_tile("B", 0, 0, Arc::clone(&t)).unwrap();
        // Read-your-own-writes inside a recording is logged too, and the
        // handle it returns is the staged one.
        let back = c.read_tile("B", 0, 0).unwrap();
        assert!(Arc::ptr_eq(&back, &t));
        let ops = c.into_ops();
        assert_eq!(ops.len(), 4);
        assert!(matches!(&ops[0], TaskOp::Read { matrix, tile, .. }
            if matrix == "A" && Arc::ptr_eq(tile, &t)));
        assert!(matches!(&ops[1], TaskOp::Charge(w) if w.flops == 7.0));
        assert!(matches!(&ops[2], TaskOp::Write { matrix, .. } if matrix == "B"));
        assert!(matches!(&ops[3], TaskOp::Read { matrix, .. } if matrix == "B"));
    }

    #[test]
    fn staged_writes_share_the_handle() {
        let store = TileStore::new(Dfs::new(
            2,
            DfsConfig {
                replication: 2,
                ..Default::default()
            },
        ));
        store.register("B", MatrixMeta::new(4, 4, 4)).unwrap();
        let mut c = TaskCtx::new_deferred(store, NodeId(0), ExecMode::Real);
        let t = Arc::new(Tile::zeros(4, 4));
        c.write_tile("B", 0, 0, Arc::clone(&t)).unwrap();
        let (_, staged) = c.into_parts();
        assert_eq!(staged.len(), 1);
        assert!(Arc::ptr_eq(&staged[0].tile, &t), "staging must not copy");
    }

    #[test]
    fn simulated_mode_reads_phantoms_for_generated() {
        let store = TileStore::new(Dfs::new(1, DfsConfig::default()));
        store
            .register_generated(
                "G",
                MatrixMeta::new(8, 8, 8),
                cumulon_matrix::gen::Generator::DenseGaussian { seed: 1 },
            )
            .unwrap();
        let mut c = TaskCtx::new(store, NodeId(0), ExecMode::Simulated);
        let t = c.read_tile("G", 0, 0).unwrap();
        assert!(t.is_phantom());
    }
}
