//! Hour-quantized billing, the 2013 EC2 pricing model the paper optimizes
//! under. Partial hours bill as full hours, which is what produces the
//! step-shaped cost/deadline curves in the deployment experiments.

use serde::{Deserialize, Serialize};

/// Billing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BillingPolicy {
    /// Round makespan up to whole hours (EC2 2013 on-demand).
    HourlyCeil,
    /// Bill exact seconds (useful as an ablation: removes the steps).
    PerSecond,
}

/// Dollar cost of running `nodes` instances at `price_per_hour` for
/// `makespan_s` seconds under the given policy.
///
/// Defined as `nodes × price_per_hour × billed_hours(policy, makespan_s)`,
/// by delegation — the billing identity `cumulon check` enforces. Keeping
/// a second copy of the hour-ceiling logic here let the two drift when a
/// policy changed.
pub fn cluster_cost(
    policy: BillingPolicy,
    nodes: u32,
    price_per_hour: f64,
    makespan_s: f64,
) -> f64 {
    debug_assert!(makespan_s >= 0.0);
    nodes as f64 * price_per_hour * billed_hours(policy, makespan_s)
}

/// Billed hours under a policy (exposed for report printing).
pub fn billed_hours(policy: BillingPolicy, makespan_s: f64) -> f64 {
    match policy {
        BillingPolicy::HourlyCeil => {
            if makespan_s == 0.0 {
                0.0
            } else {
                (makespan_s / 3600.0).ceil()
            }
        }
        BillingPolicy::PerSecond => makespan_s / 3600.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_rounds_up() {
        assert_eq!(cluster_cost(BillingPolicy::HourlyCeil, 10, 0.5, 1.0), 5.0);
        assert_eq!(
            cluster_cost(BillingPolicy::HourlyCeil, 10, 0.5, 3600.0),
            5.0
        );
        assert_eq!(
            cluster_cost(BillingPolicy::HourlyCeil, 10, 0.5, 3601.0),
            10.0
        );
    }

    #[test]
    fn zero_time_costs_nothing() {
        assert_eq!(cluster_cost(BillingPolicy::HourlyCeil, 10, 0.5, 0.0), 0.0);
        assert_eq!(cluster_cost(BillingPolicy::PerSecond, 10, 0.5, 0.0), 0.0);
    }

    #[test]
    fn per_second_is_linear() {
        let c1 = cluster_cost(BillingPolicy::PerSecond, 4, 1.0, 1800.0);
        assert_eq!(c1, 2.0);
        let c2 = cluster_cost(BillingPolicy::PerSecond, 4, 1.0, 3600.0);
        assert_eq!(c2, 4.0);
    }

    #[test]
    fn hourly_step_structure() {
        // Within the same billed hour, more time is free.
        let a = cluster_cost(BillingPolicy::HourlyCeil, 2, 1.0, 1000.0);
        let b = cluster_cost(BillingPolicy::HourlyCeil, 2, 1.0, 3599.0);
        assert_eq!(a, b);
    }

    #[test]
    fn billed_hours_matches_cost() {
        assert_eq!(billed_hours(BillingPolicy::HourlyCeil, 5000.0), 2.0);
        assert!((billed_hours(BillingPolicy::PerSecond, 5400.0) - 1.5).abs() < 1e-12);
        assert_eq!(billed_hours(BillingPolicy::HourlyCeil, 0.0), 0.0);
    }

    /// The identity `cumulon check` pins: cost must equal
    /// `billed_hours × nodes × price` *bitwise*, for every policy, across
    /// makespans covering the hour-boundary edge cases. This fails if
    /// `cluster_cost` ever grows its own rounding logic again.
    #[test]
    fn cost_is_exactly_nodes_times_price_times_billed_hours() {
        for policy in [BillingPolicy::HourlyCeil, BillingPolicy::PerSecond] {
            for &makespan_s in &[0.0, 1.0, 1799.5, 3599.99, 3600.0, 3600.01, 5400.0, 86_400.0] {
                for &(nodes, price) in &[(1u32, 0.34), (7, 0.68), (64, 1.16)] {
                    let cost = cluster_cost(policy, nodes, price, makespan_s);
                    let identity = nodes as f64 * price * billed_hours(policy, makespan_s);
                    assert_eq!(
                        cost.to_bits(),
                        identity.to_bits(),
                        "{policy:?} nodes={nodes} price={price} makespan={makespan_s}"
                    );
                }
            }
        }
    }
}
