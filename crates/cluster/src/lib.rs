//! # cumulon-cluster
//!
//! The simulated cloud substrate Cumulon-RS deploys onto: a catalog of
//! EC2-2013-like instance types, a calibratable hardware timing model, a
//! discrete-event simulated cluster that executes *map-only* jobs (the
//! paper's Hadoop-without-MapReduce execution vehicle), hourly billing, and
//! failure injection.
//!
//! ## Simulated time, real math
//!
//! Tasks run real tile computations (via `cumulon-matrix`) against the
//! simulated DFS (`cumulon-dfs`), but elapsed time never comes from the
//! wall clock: each task accumulates a receipt of flops and bytes moved,
//! and the [`hw::HardwareModel`] converts that receipt into simulated
//! seconds given the instance type and slot contention. A seeded lognormal
//! multiplier models stragglers. The result is a deterministic,
//! laptop-scale stand-in for the paper's EC2/Hadoop testbed that preserves
//! every quantity the deployment optimizer reasons about: waves of tasks
//! over `nodes × slots`, CPU vs I/O balance, replication write costs,
//! memory-pressure penalties, startup overheads, and hour-quantized price.
//!
//! ## Layout
//!
//! * [`instances`] — the instance-type catalog (specs and $/hour);
//! * [`hw`] — receipt → seconds conversion, contention and noise;
//! * [`job`] — map-only jobs, tasks, task contexts and receipts;
//! * [`des`] — the discrete-event core (time type + event queue);
//! * [`cluster`] — cluster construction: DFS + tile store + spec;
//! * [`scheduler`] — wave scheduling of job DAGs with locality preference,
//!   task retry and node-failure handling;
//! * [`billing`] — hour-quantized cost accounting;
//! * [`metrics`] — run reports consumed by the optimizer's calibrator and
//!   the experiment harness.

pub mod billing;
pub mod cluster;
pub mod des;
pub mod error;
pub mod hw;
pub mod instances;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod spot;

pub use cluster::{Cluster, ClusterSpec};
pub use error::{ClusterError, Result};
pub use hw::{HardwareModel, NoiseModel};
pub use instances::{catalog, InstanceType};
pub use job::{ExecMode, Job, JobDag, Task, TaskCtx, TaskReceipt};
pub use metrics::{FaultStats, JobStats, RunReport};
pub use scheduler::{
    default_threads, set_default_threads, shared_spec_pool, FailurePlan, Revocation, RunFailure,
    Scheduler, SchedulerConfig, SpecPool,
};
pub use spot::SpotMarket;
// Re-exported so scheduler callers can drive tracing without naming the
// trace crate explicitly.
pub use cumulon_trace::{Trace, TraceLog};
