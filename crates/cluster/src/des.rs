//! Discrete-event simulation core: ordered simulated time and an event
//! queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds. Wraps `f64` with a total order (times are
/// never NaN by construction).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Advances by `secs`.
    pub fn after(self, secs: f64) -> SimTime {
        debug_assert!(secs >= 0.0, "durations must be non-negative");
        SimTime(self.0 + secs)
    }

    /// Seconds since time zero.
    pub fn secs(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

struct QueueEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QueueEntry<E> {}
impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, breaking
        // ties by insertion order for determinism.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// An event queue ordered by simulated time (FIFO among equal times).
pub struct EventQueue<E> {
    heap: BinaryHeap<QueueEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` precedes the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(QueueEntry {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Schedules an event `secs` from now.
    pub fn schedule_in(&mut self, secs: f64, event: E) {
        self.schedule(self.now.after(secs), event);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(3.0), "c");
        q.schedule(SimTime(1.0), "a");
        q.schedule(SimTime(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(3.0));
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1.0), 1);
        q.schedule(SimTime(1.0), 2);
        q.schedule(SimTime(1.0), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5.0), "first");
        q.pop();
        q.schedule_in(2.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(7.5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5.0), ());
        q.pop();
        q.schedule(SimTime(1.0), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn simtime_ordering() {
        assert!(SimTime(1.0) < SimTime(2.0));
        assert_eq!(SimTime(1.0).after(0.5), SimTime(1.5));
        assert_eq!(SimTime(2.0).secs(), 2.0);
    }
}
